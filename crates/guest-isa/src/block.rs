//! Basic-block decoding and the decoded-block cache.
//!
//! The block execution tier pre-decodes guest text into straight-line
//! basic blocks: a run of instructions starting at an entry PC and cut at
//! the first instruction that can redirect control flow (branch, jump,
//! syscall, halt — [`Inst::is_control`]), at the end of the text segment,
//! or at [`MAX_BLOCK_INSTS`]. Blocks are cached by entry PC (the same
//! keying QEMU uses for translation blocks), so hot loop bodies decode
//! once and then execute from the cache.
//!
//! Correctness is the cache's problem, not the executor's:
//!
//! * **Self-modification** — every [`Program::patch`] bumps the program's
//!   text version; [`BlockCache::lookup`] discards the whole cache when
//!   its recorded version is stale, and [`BlockCache::invalidate_range`]
//!   surgically drops blocks overlapping a written address range.
//! * **Capacity** — eviction is deterministic FIFO (insertion order), so
//!   a capacity-limited cache recompiles blocks but can never change
//!   execution results or ordering.

use crate::inst::Inst;
use crate::program::{Program, INST_BYTES};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Longest block the decoder will form, in instructions. Bounds the work
/// a single cache miss performs; real blocks almost always cut at a
/// control instruction well before this.
pub const MAX_BLOCK_INSTS: usize = 64;

/// A decoded straight-line run of instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub entry: u64,
    /// The instructions, in fetch order. Only the last one may be a
    /// control instruction.
    pub insts: Vec<Inst>,
}

impl BasicBlock {
    /// PC one past the last instruction.
    pub fn end_pc(&self) -> u64 {
        self.entry + self.insts.len() as u64 * INST_BYTES
    }

    /// The instruction at `pc`, if `pc` falls inside this block.
    pub fn inst_at(&self, pc: u64) -> Option<Inst> {
        if pc < self.entry || pc >= self.end_pc() || (pc - self.entry) % INST_BYTES != 0 {
            return None;
        }
        Some(self.insts[((pc - self.entry) / INST_BYTES) as usize])
    }
}

/// Decodes the basic block entered at `entry`, or `None` if `entry` is
/// not a valid text address. Cuts after the first control instruction,
/// at the end of text, or after `max_insts` instructions.
pub fn decode_block(prog: &Program, entry: u64, max_insts: usize) -> Option<BasicBlock> {
    let mut insts = Vec::new();
    let mut pc = entry;
    while insts.len() < max_insts {
        let Some(inst) = prog.fetch(pc) else { break };
        insts.push(inst);
        if inst.is_control() {
            break;
        }
        pc += INST_BYTES;
    }
    if insts.is_empty() {
        return None;
    }
    Some(BasicBlock { entry, insts })
}

/// Counters for one [`BlockCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Blocks decoded ("compiled") on a miss.
    pub compiled: u64,
    /// Blocks dropped to stay within capacity.
    pub evicted: u64,
    /// Blocks dropped by self-modification (version change or an
    /// overlapping write).
    pub invalidated: u64,
}

/// A capacity-bounded cache of decoded blocks, keyed by entry PC.
#[derive(Debug)]
pub struct BlockCache {
    blocks: HashMap<u64, Rc<BasicBlock>>,
    /// Insertion order, for deterministic FIFO eviction.
    order: VecDeque<u64>,
    capacity: usize,
    /// Text version the cached blocks were decoded from.
    version: u64,
    /// Running counters.
    pub stats: BlockCacheStats,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "block cache needs room for at least 1 block");
        BlockCache {
            blocks: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            version: 0,
            stats: BlockCacheStats::default(),
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the block entered at `entry`, decoding and caching it on a
    /// miss. `None` if `entry` is not a valid text address.
    ///
    /// A lookup against a program whose [`Program::version`] changed
    /// since the last lookup first discards every cached block — the
    /// decoded copies may no longer match the text.
    pub fn lookup(&mut self, prog: &Program, entry: u64) -> Option<Rc<BasicBlock>> {
        if self.version != prog.version() {
            self.stats.invalidated += self.blocks.len() as u64;
            self.blocks.clear();
            self.order.clear();
            self.version = prog.version();
        }
        if let Some(b) = self.blocks.get(&entry) {
            self.stats.hits += 1;
            return Some(Rc::clone(b));
        }
        let block = Rc::new(decode_block(prog, entry, MAX_BLOCK_INSTS)?);
        self.stats.compiled += 1;
        while self.blocks.len() >= self.capacity {
            // FIFO: evict the oldest surviving insertion.
            match self.order.pop_front() {
                Some(old) => {
                    if self.blocks.remove(&old).is_some() {
                        self.stats.evicted += 1;
                    }
                }
                None => break,
            }
        }
        self.blocks.insert(entry, Rc::clone(&block));
        self.order.push_back(entry);
        Some(block)
    }

    /// Drops every block overlapping the byte range `[lo, hi)` — called
    /// when guest code writes into the text segment.
    pub fn invalidate_range(&mut self, lo: u64, hi: u64) {
        let stale: Vec<u64> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.entry < hi && b.end_pc() > lo)
            .map(|(&e, _)| e)
            .collect();
        for e in stale {
            self.blocks.remove(&e);
            self.stats.invalidated += 1;
        }
        self.order.retain(|e| self.blocks.contains_key(e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::inst::Reg;
    use crate::program::TEXT_BASE;

    /// li; addi; bne (loop); li; jal; ecall; halt — covers every cut kind.
    fn cut_rich_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 3) // 0x00
            .label("loop")
            .addi(Reg::T0, Reg::T0, -1) // 0x04
            .bne(Reg::T0, Reg::ZERO, "loop") // 0x08  <- branch cut
            .li(Reg::A0, 1) // 0x0c
            .call("fn") // 0x10  <- call cut
            .ecall() // 0x14  <- syscall cut
            .halt() // 0x18  <- halt cut
            .label("fn")
            .ret(); // 0x1c
        b.assemble().unwrap()
    }

    #[test]
    fn blocks_cut_at_branch_call_syscall_and_halt() {
        let p = cut_rich_program();
        // Entry block: li, addi, bne — ends at the conditional branch.
        let b = decode_block(&p, TEXT_BASE, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(b.insts.len(), 3);
        assert!(b.insts.last().unwrap().is_control());
        assert_eq!(b.end_pc(), TEXT_BASE + 12);
        // Fall-through block: li, jal — ends at the call.
        let b = decode_block(&p, TEXT_BASE + 12, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(b.insts.len(), 2);
        // Syscall alone.
        let b = decode_block(&p, TEXT_BASE + 20, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(b.insts.len(), 1);
        assert_eq!(b.insts[0], Inst::Ecall);
        // Halt alone.
        let b = decode_block(&p, TEXT_BASE + 24, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(b.insts, vec![Inst::Halt]);
    }

    #[test]
    fn blocks_cut_at_text_end_and_max_len() {
        let mut b = ProgramBuilder::new();
        for _ in 0..(MAX_BLOCK_INSTS + 10) {
            b.nop();
        }
        let p = b.assemble().unwrap();
        let blk = decode_block(&p, TEXT_BASE, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(blk.insts.len(), MAX_BLOCK_INSTS, "length-capped");
        let tail_entry = TEXT_BASE + (p.len() as u64 - 2) * INST_BYTES;
        let tail = decode_block(&p, tail_entry, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(tail.insts.len(), 2, "cut by end of text");
        assert_eq!(decode_block(&p, p.text_end(), MAX_BLOCK_INSTS), None);
        assert_eq!(decode_block(&p, TEXT_BASE + 1, MAX_BLOCK_INSTS), None);
    }

    #[test]
    fn inst_at_indexes_into_the_block() {
        let p = cut_rich_program();
        let b = decode_block(&p, TEXT_BASE, MAX_BLOCK_INSTS).unwrap();
        assert_eq!(b.inst_at(TEXT_BASE), Some(b.insts[0]));
        assert_eq!(b.inst_at(TEXT_BASE + 8), Some(b.insts[2]));
        assert_eq!(b.inst_at(TEXT_BASE + 12), None, "past the cut");
        assert_eq!(b.inst_at(TEXT_BASE + 2), None, "misaligned");
    }

    #[test]
    fn cache_hits_after_compile() {
        let p = cut_rich_program();
        let mut c = BlockCache::new(16);
        let a = c.lookup(&p, TEXT_BASE).unwrap();
        let b = c.lookup(&p, TEXT_BASE).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(c.stats.compiled, 1);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.lookup(&p, 0), None, "bogus entry is not cached");
    }

    #[test]
    fn version_change_flushes_the_cache() {
        let mut p = cut_rich_program();
        let mut c = BlockCache::new(16);
        c.lookup(&p, TEXT_BASE).unwrap();
        assert!(p.patch(TEXT_BASE, Inst::Nop));
        let b = c.lookup(&p, TEXT_BASE).unwrap();
        assert_eq!(b.insts[0], Inst::Nop, "recompiled from patched text");
        assert_eq!(c.stats.invalidated, 1);
        assert_eq!(c.stats.compiled, 2);
    }

    #[test]
    fn range_invalidation_drops_only_overlapping_blocks() {
        let p = cut_rich_program();
        let mut c = BlockCache::new(16);
        c.lookup(&p, TEXT_BASE).unwrap(); // [0x00, 0x0c)
        c.lookup(&p, TEXT_BASE + 12).unwrap(); // [0x0c, 0x14)
        assert_eq!(c.len(), 2);
        // A one-byte write inside the first block.
        c.invalidate_range(TEXT_BASE + 4, TEXT_BASE + 5);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats.invalidated, 1);
        // The survivor still hits.
        c.lookup(&p, TEXT_BASE + 12).unwrap();
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn capacity_eviction_is_fifo_and_lossless() {
        let mut b = ProgramBuilder::new();
        for _ in 0..8 {
            b.nop().halt(); // 8 two-instruction blocks
        }
        let p = b.assemble().unwrap();
        let mut c = BlockCache::new(2);
        for i in 0..4 {
            c.lookup(&p, TEXT_BASE + i * 8).unwrap();
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats.evicted, 2);
        // Evicted entries recompile to identical blocks.
        let again = c.lookup(&p, TEXT_BASE).unwrap();
        assert_eq!(
            *again,
            decode_block(&p, TEXT_BASE, MAX_BLOCK_INSTS).unwrap()
        );
        assert_eq!(c.stats.compiled, 5);
    }
}
