//! Guest instruction-set architecture for the `gem5sim` simulator.
//!
//! The paper's simulated targets run ARM binaries (PARSEC / SPLASH-2x,
//! a Linux boot image, and a small C++ program). We substitute a compact
//! RISC-style 64-bit ISA, rich enough to express the same workload kernels:
//! 31 integer registers + zero register, 32 floating-point registers,
//! loads/stores of 1/2/4/8 bytes, conditional branches, jumps with link,
//! and an `ecall` for syscalls (SE mode) / firmware services (FS mode).
//!
//! The crate provides:
//! * [`Inst`] — the instruction set, with static classification
//!   ([`Inst::class`]) used by the timing CPU models;
//! * [`asm::ProgramBuilder`] — a label-based assembler;
//! * [`Program`] — an assembled text segment;
//! * [`block`] — basic-block decoding and the decoded-block cache backing
//!   the simulator's block execution tier;
//! * [`exec`] — the architectural executor shared by all CPU models, which
//!   guarantees every model computes identical architectural results.
//!
//! # Example
//!
//! ```
//! use gem5sim_isa::{asm::ProgramBuilder, exec::{ArchState, StepAction}, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::A0, 2).li(Reg::A1, 40).add(Reg::A0, Reg::A0, Reg::A1).halt();
//! let prog = b.assemble().unwrap();
//!
//! let mut st = ArchState::new(prog.entry_pc());
//! let mut mem = vec![0u8; 0];
//! loop {
//!     let inst = prog.fetch(st.pc).unwrap();
//!     match gem5sim_isa::exec::step(&mut st, inst, &mut mem) {
//!         StepAction::Halt => break,
//!         _ => {}
//!     }
//! }
//! assert_eq!(st.read(Reg::A0), 42);
//! ```

pub mod asm;
pub mod block;
pub mod exec;
pub mod inst;
pub mod program;

pub use block::{decode_block, BasicBlock, BlockCache, BlockCacheStats, MAX_BLOCK_INSTS};
pub use inst::{AluOp, BranchCond, FCmpOp, FReg, FpuOp, Inst, InstClass, MemSize, Reg};
pub use program::{Program, INST_BYTES, TEXT_BASE};

/// Guest-ABI address of the per-hart result-checksum slots: hart `i`
/// deposits its 64-bit checksum at `GUEST_CHECKSUM_BASE + 8 * i` before
/// halting. The simulator reads the slots back into
/// `SimResult::guest_checksums` after every run; workloads that emit no
/// checksum simply leave their slot zero. The region sits just below the
/// workload data segment (`0x0010_0000`) and below the FS-mode jiffies
/// slot at `0x0010_0000 - 64`, so up to 24 harts fit without overlap.
pub const GUEST_CHECKSUM_BASE: u64 = 0x000F_FF00;
