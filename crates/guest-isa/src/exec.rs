//! The architectural executor.
//!
//! All four CPU models in `gem5sim` (Atomic, Timing, Minor, O3) share this
//! single definition of instruction semantics, so they are guaranteed to
//! compute identical architectural results — only *timing* differs, exactly
//! as in gem5 where the ISA definition is shared across CPU models.

use crate::inst::{AluOp, BranchCond, FCmpOp, FReg, FpuOp, Inst, MemSize, Reg};

/// Architectural register state of one hart.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    regs: [u64; 32],
    fregs: [f64; 32],
}

impl ArchState {
    /// Fresh state with all registers zero and `pc = entry`.
    pub fn new(entry: u64) -> Self {
        ArchState {
            pc: entry,
            regs: [0; 32],
            fregs: [0.0; 32],
        }
    }

    /// Reads an integer register (the zero register always reads 0).
    pub fn read(&self, r: Reg) -> u64 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an integer register (writes to the zero register are ignored).
    pub fn write(&mut self, r: Reg, v: u64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an FP register.
    pub fn fread(&self, r: FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Writes an FP register.
    pub fn fwrite(&mut self, r: FReg, v: f64) {
        self.fregs[r.index()] = v;
    }
}

/// Functional memory interface used by [`step`].
///
/// Reads return the raw little-endian value zero-extended to 64 bits.
pub trait GuestMem {
    /// Reads `size` bytes at `addr`.
    fn read(&mut self, addr: u64, size: MemSize) -> u64;
    /// Writes the low `size` bytes of `val` at `addr`.
    fn write(&mut self, addr: u64, size: MemSize, val: u64);
}

/// Flat test memory: addresses index the vector directly.
impl GuestMem for Vec<u8> {
    fn read(&mut self, addr: u64, size: MemSize) -> u64 {
        let mut v = 0u64;
        for i in 0..size.bytes() {
            v |= (self[(addr + i) as usize] as u64) << (8 * i);
        }
        v
    }
    fn write(&mut self, addr: u64, size: MemSize, val: u64) {
        for i in 0..size.bytes() {
            self[(addr + i) as usize] = (val >> (8 * i)) as u8;
        }
    }
}

/// Where a load's result goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadDest {
    /// Integer register.
    Int(Reg),
    /// FP register (raw bits reinterpreted as `f64`).
    Fp(FReg),
}

/// What executing one instruction did (or, for deferred memory ops, what
/// remains to be done).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepAction {
    /// Sequential instruction; `pc` has been advanced.
    Next,
    /// Conditional branch; `pc` has been updated per `taken`.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// The branch target (regardless of `taken`).
        target: u64,
    },
    /// Unconditional jump; `pc` has been updated.
    Jump {
        /// The jump target.
        target: u64,
    },
    /// A load. With [`exec_no_mem`] the access has *not* been performed;
    /// complete it with [`apply_load`]. With [`step`] it has.
    Load {
        /// Effective address.
        addr: u64,
        /// Access width.
        size: MemSize,
        /// Sign extension.
        signed: bool,
        /// Destination register.
        dest: LoadDest,
    },
    /// A store. With [`exec_no_mem`] the access has *not* been performed.
    Store {
        /// Effective address.
        addr: u64,
        /// Access width.
        size: MemSize,
        /// Raw data to write.
        data: u64,
    },
    /// An `ecall`; `pc` has been advanced. The caller services the call
    /// using the argument registers.
    Syscall,
    /// An `iret`; the caller (which owns the saved interrupt PC) must
    /// redirect `pc`.
    Iret,
    /// A `halt`; `pc` is left on the halt instruction.
    Halt,
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX // RISC-V: division by zero yields all ones
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
    }
}

fn fpu(op: FpuOp, a: f64, b: f64) -> f64 {
    match op {
        FpuOp::Add => a + b,
        FpuOp::Sub => a - b,
        FpuOp::Mul => a * b,
        FpuOp::Div => a / b,
        FpuOp::Sqrt => a.sqrt(),
        FpuOp::Min => a.min(b),
        FpuOp::Max => a.max(b),
    }
}

fn branch_taken(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

/// Sign-/zero-extends a raw loaded value.
pub fn extend_loaded(raw: u64, size: MemSize, signed: bool) -> u64 {
    let bits = size.bytes() * 8;
    if bits == 64 {
        return raw;
    }
    let masked = raw & ((1u64 << bits) - 1);
    if signed {
        let shift = 64 - bits;
        (((masked << shift) as i64) >> shift) as u64
    } else {
        masked
    }
}

/// Completes a deferred load by writing the (extended) value to its
/// destination register.
pub fn apply_load(st: &mut ArchState, dest: LoadDest, raw: u64, size: MemSize, signed: bool) {
    match dest {
        LoadDest::Int(r) => st.write(r, extend_loaded(raw, size, signed)),
        LoadDest::Fp(f) => st.fwrite(f, f64::from_bits(raw)),
    }
}

/// Executes one instruction *without* performing memory accesses.
///
/// Register writes (including link registers) and `pc` updates are
/// performed; loads and stores are returned for the caller's memory system
/// to perform (completing loads via [`apply_load`]).
pub fn exec_no_mem(st: &mut ArchState, inst: Inst) -> StepAction {
    let next = st.pc + 4;
    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let v = alu(op, st.read(rs1), st.read(rs2));
            st.write(rd, v);
            st.pc = next;
            StepAction::Next
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let v = alu(op, st.read(rs1), imm as u64);
            st.write(rd, v);
            st.pc = next;
            StepAction::Next
        }
        Inst::Li { rd, imm } => {
            st.write(rd, imm as u64);
            st.pc = next;
            StepAction::Next
        }
        Inst::Fpu { op, fd, fs1, fs2 } => {
            let v = fpu(op, st.fread(fs1), st.fread(fs2));
            st.fwrite(fd, v);
            st.pc = next;
            StepAction::Next
        }
        Inst::FCvtIF { fd, rs } => {
            st.fwrite(fd, st.read(rs) as i64 as f64);
            st.pc = next;
            StepAction::Next
        }
        Inst::FCvtFI { rd, fs } => {
            st.write(rd, st.fread(fs) as i64 as u64);
            st.pc = next;
            StepAction::Next
        }
        Inst::FCmp { op, rd, fs1, fs2 } => {
            let (a, b) = (st.fread(fs1), st.fread(fs2));
            let v = match op {
                FCmpOp::Eq => a == b,
                FCmpOp::Lt => a < b,
                FCmpOp::Le => a <= b,
            };
            st.write(rd, v as u64);
            st.pc = next;
            StepAction::Next
        }
        Inst::Load {
            size,
            signed,
            rd,
            base,
            off,
        } => {
            let addr = st.read(base).wrapping_add(off as u64);
            st.pc = next;
            StepAction::Load {
                addr,
                size,
                signed,
                dest: LoadDest::Int(rd),
            }
        }
        Inst::FLoad { fd, base, off } => {
            let addr = st.read(base).wrapping_add(off as u64);
            st.pc = next;
            StepAction::Load {
                addr,
                size: MemSize::D,
                signed: false,
                dest: LoadDest::Fp(fd),
            }
        }
        Inst::Store {
            size,
            rs,
            base,
            off,
        } => {
            let addr = st.read(base).wrapping_add(off as u64);
            let data = st.read(rs);
            st.pc = next;
            StepAction::Store { addr, size, data }
        }
        Inst::FStore { fs, base, off } => {
            let addr = st.read(base).wrapping_add(off as u64);
            let data = st.fread(fs).to_bits();
            st.pc = next;
            StepAction::Store {
                addr,
                size: MemSize::D,
                data,
            }
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let taken = branch_taken(cond, st.read(rs1), st.read(rs2));
            st.pc = if taken { target } else { next };
            StepAction::Branch { taken, target }
        }
        Inst::Jal { rd, target } => {
            st.write(rd, next);
            st.pc = target;
            StepAction::Jump { target }
        }
        Inst::Jalr { rd, base, off } => {
            // Read base *before* writing the link register (rd may equal
            // base).
            let target = st.read(base).wrapping_add(off as u64) & !1;
            st.write(rd, next);
            st.pc = target;
            StepAction::Jump { target }
        }
        Inst::Ecall => {
            st.pc = next;
            StepAction::Syscall
        }
        Inst::Iret => StepAction::Iret,
        Inst::Nop => {
            st.pc = next;
            StepAction::Next
        }
        Inst::Halt => StepAction::Halt,
    }
}

/// Executes one instruction, performing memory accesses against `mem`.
///
/// This is the atomic-mode fast path; it returns the same [`StepAction`]
/// as [`exec_no_mem`] (with loads already applied) so callers can still
/// observe addresses and branch outcomes for statistics.
pub fn step<M: GuestMem + ?Sized>(st: &mut ArchState, inst: Inst, mem: &mut M) -> StepAction {
    let action = exec_no_mem(st, inst);
    match action {
        StepAction::Load {
            addr,
            size,
            signed,
            dest,
        } => {
            let raw = mem.read(addr, size);
            apply_load(st, dest, raw, size, signed);
        }
        StepAction::Store { addr, size, data } => {
            mem.write(addr, size, data);
        }
        _ => {}
    }
    action
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::program::Program;

    fn run(prog: &Program, mem: &mut Vec<u8>, max_steps: u64) -> ArchState {
        let mut st = ArchState::new(prog.entry_pc());
        st.write(Reg::SP, mem.len() as u64);
        for _ in 0..max_steps {
            let inst = prog.fetch(st.pc).expect("pc out of text");
            match step(&mut st, inst, mem) {
                StepAction::Halt => return st,
                _ => {}
            }
        }
        panic!("program did not halt in {max_steps} steps");
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut st = ArchState::new(0);
        st.write(Reg::ZERO, 99);
        assert_eq!(st.read(Reg::ZERO), 0);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 3, 5), (-2i64) as u64);
        assert_eq!(alu(AluOp::Div, 7, 2), 3);
        assert_eq!(alu(AluOp::Div, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(alu(AluOp::Div, 1, 0), u64::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(alu(AluOp::Srl, (-8i64) as u64, 1), ((-8i64) as u64) >> 1);
        assert_eq!(alu(AluOp::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i64) as u64, 0), 0);
    }

    #[test]
    fn extend_loaded_sign_and_zero() {
        assert_eq!(extend_loaded(0xFF, MemSize::B, true), u64::MAX);
        assert_eq!(extend_loaded(0xFF, MemSize::B, false), 0xFF);
        assert_eq!(
            extend_loaded(0x8000, MemSize::H, true),
            0xFFFF_FFFF_FFFF_8000
        );
        assert_eq!(extend_loaded(0xDEAD_BEEF, MemSize::W, false), 0xDEAD_BEEF);
        assert_eq!(extend_loaded(0x1234, MemSize::D, true), 0x1234);
    }

    #[test]
    fn loop_sums_correctly() {
        let mut b = ProgramBuilder::new();
        // sum = 1 + 2 + ... + 10
        b.li(Reg::A0, 0)
            .li(Reg::T0, 1)
            .li(Reg::T1, 11)
            .label("loop")
            .add(Reg::A0, Reg::A0, Reg::T0)
            .addi(Reg::T0, Reg::T0, 1)
            .bne(Reg::T0, Reg::T1, "loop")
            .halt();
        let p = b.assemble().unwrap();
        let mut mem = vec![0u8; 64];
        let st = run(&p, &mut mem, 1000);
        assert_eq!(st.read(Reg::A0), 55);
    }

    #[test]
    fn memory_roundtrip_all_sizes() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 16)
            .li(Reg::A0, -2) // 0xFFFF...FE
            .sb(Reg::A0, Reg::T0, 0)
            .lbu(Reg::A1, Reg::T0, 0)
            .load(MemSize::B, true, Reg::A2, Reg::T0, 0)
            .sd(Reg::A0, Reg::T0, 8)
            .ld(Reg::A3, Reg::T0, 8)
            .halt();
        let p = b.assemble().unwrap();
        let mut mem = vec![0u8; 64];
        let st = run(&p, &mut mem, 100);
        assert_eq!(st.read(Reg::A1), 0xFE);
        assert_eq!(st.read(Reg::A2), (-2i64) as u64);
        assert_eq!(st.read(Reg::A3), (-2i64) as u64);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::A0, 5)
            .call("double")
            .halt()
            .label("double")
            .add(Reg::A0, Reg::A0, Reg::A0)
            .ret();
        let p = b.assemble().unwrap();
        let mut mem = vec![0u8; 64];
        let st = run(&p, &mut mem, 100);
        assert_eq!(st.read(Reg::A0), 10);
    }

    #[test]
    fn jalr_with_rd_equal_base() {
        // jalr t0, 0(t0) must use the *old* t0 as the target.
        let mut b = ProgramBuilder::new();
        b.li_label(Reg::T0, "target")
            .jalr(Reg::T0, Reg::T0, 0)
            .halt()
            .label("target")
            .li(Reg::A0, 7)
            .halt();
        let p = b.assemble().unwrap();
        let mut mem = vec![0u8; 16];
        let st = run(&p, &mut mem, 100);
        assert_eq!(st.read(Reg::A0), 7);
        // link register holds the return address (pc of halt after jalr)
        assert_eq!(st.read(Reg::T0), p.symbol("target").unwrap() - 4);
    }

    #[test]
    fn fp_pipeline() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 9)
            .fcvt_if(FReg(0), Reg::T0)
            .fsqrt(FReg(1), FReg(0))
            .fcvt_fi(Reg::A0, FReg(1))
            .li(Reg::T1, 16)
            .fsd(FReg(1), Reg::T1, 0)
            .fld(FReg(2), Reg::T1, 0)
            .flt(Reg::A1, FReg(2), FReg(0)) // 3.0 < 9.0 -> 1
            .halt();
        let p = b.assemble().unwrap();
        let mut mem = vec![0u8; 64];
        let st = run(&p, &mut mem, 100);
        assert_eq!(st.read(Reg::A0), 3);
        assert_eq!(st.read(Reg::A1), 1);
        assert_eq!(st.fread(FReg(2)), 3.0);
    }

    #[test]
    fn branch_action_reports_outcome_and_target() {
        let mut b = ProgramBuilder::new();
        b.label("top").beq(Reg::ZERO, Reg::ZERO, "top");
        let p = b.assemble().unwrap();
        let mut st = ArchState::new(p.entry_pc());
        let inst = p.fetch(st.pc).unwrap();
        let a = exec_no_mem(&mut st, inst);
        assert_eq!(
            a,
            StepAction::Branch {
                taken: true,
                target: p.entry_pc()
            }
        );
        assert_eq!(st.pc, p.entry_pc());
    }

    #[test]
    fn syscall_advances_pc() {
        let mut st = ArchState::new(0x1000);
        let a = exec_no_mem(&mut st, Inst::Ecall);
        assert_eq!(a, StepAction::Syscall);
        assert_eq!(st.pc, 0x1004);
    }

    #[test]
    fn deferred_load_matches_atomic_step() {
        let mut mem: Vec<u8> = vec![0; 64];
        mem[8] = 0x2A;
        let inst = Inst::Load {
            size: MemSize::D,
            signed: true,
            rd: Reg::A0,
            base: Reg::ZERO,
            off: 8,
        };
        let mut st_a = ArchState::new(0);
        step(&mut st_a, inst, &mut mem);

        let mut st_b = ArchState::new(0);
        match exec_no_mem(&mut st_b, inst) {
            StepAction::Load {
                addr,
                size,
                signed,
                dest,
            } => {
                let raw = mem.read(addr, size);
                apply_load(&mut st_b, dest, raw, size, signed);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st_a, st_b);
        assert_eq!(st_a.read(Reg::A0), 0x2A);
    }
}
