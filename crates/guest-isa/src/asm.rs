//! A label-based assembler for the guest ISA.
//!
//! [`ProgramBuilder`] is a non-consuming builder: instruction-emitting
//! methods return `&mut Self` for chaining, and [`assemble`]
//! (which resolves forward label references) borrows the builder.
//!
//! [`assemble`]: ProgramBuilder::assemble

use crate::inst::{AluOp, BranchCond, FCmpOp, FReg, FpuOp, Inst, MemSize, Reg};
use crate::program::{Program, INST_BYTES, TEXT_BASE};
use std::collections::BTreeMap;
use std::fmt;

/// Error produced by [`ProgramBuilder::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AssembleError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AssembleError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AssembleError {}

#[derive(Debug, Clone)]
enum Pending {
    Ready(Inst),
    BranchTo {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    JalTo {
        rd: Reg,
        label: String,
    },
    /// `li rd, <label pc>`: materialize a code address (for indirect jumps
    /// through tables, modelling virtual dispatch in guest code).
    LiLabel {
        rd: Reg,
        label: String,
    },
}

/// Builds a [`Program`] one instruction at a time.
///
/// # Example
///
/// ```
/// use gem5sim_isa::{asm::ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::A0, 0)
///     .li(Reg::T0, 10)
///     .label("loop")
///     .addi(Reg::A0, Reg::A0, 1)
///     .addi(Reg::T0, Reg::T0, -1)
///     .bne(Reg::T0, Reg::ZERO, "loop")
///     .halt();
/// let prog = b.assemble()?;
/// assert_eq!(prog.len(), 6);
/// # Ok::<(), gem5sim_isa::asm::AssembleError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Pending>,
    labels: BTreeMap<String, u64>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    fn next_pc(&self) -> u64 {
        TEXT_BASE + self.insts.len() as u64 * INST_BYTES
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let pc = self.next_pc();
        if self.labels.insert(name.clone(), pc).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
        self
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        self.insts.push(Pending::Ready(i));
        self
    }

    // ---- integer ALU ----

    /// `rd = rs1 op rs2`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 op imm`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// `rd = rs1 / rs2` (signed; division by zero yields -1, like RISC-V).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Div, rd, rs1, rs2)
    }

    /// `rd = rs1 % rs2`.
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Rem, rd, rs1, rs2)
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, rs2)
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Xor, rd, rs1, imm)
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Sll, rd, rs1, imm)
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Srl, rd, rs1, imm)
    }

    /// `rd = (rs1 < imm) as i64` (signed).
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Slt, rd, rs1, imm)
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::Li { rd, imm })
    }

    /// `rd = <pc of label>` — materializes a code address for indirect
    /// jumps (resolved at assembly).
    pub fn li_label(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.insts.push(Pending::LiLabel {
            rd,
            label: label.into(),
        });
        self
    }

    /// `rd = rs1` (pseudo `mv`).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    // ---- floating point ----

    /// `fd = fs1 op fs2`.
    pub fn fpu(&mut self, op: FpuOp, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.inst(Inst::Fpu { op, fd, fs1, fs2 })
    }

    /// `fd = fs1 + fs2`.
    pub fn fadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.fpu(FpuOp::Add, fd, fs1, fs2)
    }

    /// `fd = fs1 - fs2`.
    pub fn fsub(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.fpu(FpuOp::Sub, fd, fs1, fs2)
    }

    /// `fd = fs1 * fs2`.
    pub fn fmul(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.fpu(FpuOp::Mul, fd, fs1, fs2)
    }

    /// `fd = fs1 / fs2`.
    pub fn fdiv(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.fpu(FpuOp::Div, fd, fs1, fs2)
    }

    /// `fd = sqrt(fs1)`.
    pub fn fsqrt(&mut self, fd: FReg, fs1: FReg) -> &mut Self {
        self.fpu(FpuOp::Sqrt, fd, fs1, fs1)
    }

    /// `fd = (double) rs`.
    pub fn fcvt_if(&mut self, fd: FReg, rs: Reg) -> &mut Self {
        self.inst(Inst::FCvtIF { fd, rs })
    }

    /// `rd = (i64) fs` (truncating).
    pub fn fcvt_fi(&mut self, rd: Reg, fs: FReg) -> &mut Self {
        self.inst(Inst::FCvtFI { rd, fs })
    }

    /// `rd = (fs1 < fs2) as i64`.
    pub fn flt(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.inst(Inst::FCmp {
            op: FCmpOp::Lt,
            rd,
            fs1,
            fs2,
        })
    }

    // ---- memory ----

    /// Load of width `size` (sign-extended when `signed`).
    pub fn load(&mut self, size: MemSize, signed: bool, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.inst(Inst::Load {
            size,
            signed,
            rd,
            base,
            off,
        })
    }

    /// `rd = *(i64*)(base + off)`.
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.load(MemSize::D, true, rd, base, off)
    }

    /// `rd = *(i32*)(base + off)` (sign-extended).
    pub fn lw(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.load(MemSize::W, true, rd, base, off)
    }

    /// `rd = *(u8*)(base + off)` (zero-extended).
    pub fn lbu(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.load(MemSize::B, false, rd, base, off)
    }

    /// Store of width `size`.
    pub fn store(&mut self, size: MemSize, rs: Reg, base: Reg, off: i64) -> &mut Self {
        self.inst(Inst::Store {
            size,
            rs,
            base,
            off,
        })
    }

    /// `*(i64*)(base + off) = rs`.
    pub fn sd(&mut self, rs: Reg, base: Reg, off: i64) -> &mut Self {
        self.store(MemSize::D, rs, base, off)
    }

    /// `*(i32*)(base + off) = rs`.
    pub fn sw(&mut self, rs: Reg, base: Reg, off: i64) -> &mut Self {
        self.store(MemSize::W, rs, base, off)
    }

    /// `*(u8*)(base + off) = rs`.
    pub fn sb(&mut self, rs: Reg, base: Reg, off: i64) -> &mut Self {
        self.store(MemSize::B, rs, base, off)
    }

    /// `fd = *(f64*)(base + off)`.
    pub fn fld(&mut self, fd: FReg, base: Reg, off: i64) -> &mut Self {
        self.inst(Inst::FLoad { fd, base, off })
    }

    /// `*(f64*)(base + off) = fs`.
    pub fn fsd(&mut self, fs: FReg, base: Reg, off: i64) -> &mut Self {
        self.inst(Inst::FStore { fs, base, off })
    }

    // ---- control flow ----

    /// Conditional branch to `label`.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.insts.push(Pending::BranchTo {
            cond,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Branch if less-than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Branch if greater-or-equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Branch if less-than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// Unconditional jump to `label` (no link).
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.insts.push(Pending::JalTo {
            rd: Reg::ZERO,
            label: label.into(),
        });
        self
    }

    /// Call `label` (link in `ra`).
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.insts.push(Pending::JalTo {
            rd: Reg::RA,
            label: label.into(),
        });
        self
    }

    /// Return (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            off: 0,
        })
    }

    /// Indirect jump with link.
    pub fn jalr(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.inst(Inst::Jalr { rd, base, off })
    }

    /// Environment call.
    pub fn ecall(&mut self) -> &mut Self {
        self.inst(Inst::Ecall)
    }

    /// Return from interrupt.
    pub fn iret(&mut self) -> &mut Self {
        self.inst(Inst::Iret)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }

    /// Stop the hart.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::Halt)
    }

    /// Resolves labels and produces a [`Program`] with entry at the first
    /// instruction.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError`] for undefined or duplicate labels, or an
    /// empty program.
    pub fn assemble(&self) -> Result<Program, AssembleError> {
        if let Some(dup) = &self.duplicate {
            return Err(AssembleError::DuplicateLabel(dup.clone()));
        }
        if self.insts.is_empty() {
            return Err(AssembleError::Empty);
        }
        let lookup = |label: &str| {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AssembleError::UndefinedLabel(label.to_string()))
        };
        let mut text = Vec::with_capacity(self.insts.len());
        for p in &self.insts {
            let inst = match p {
                Pending::Ready(i) => *i,
                Pending::BranchTo {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => Inst::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: lookup(label)?,
                },
                Pending::JalTo { rd, label } => Inst::Jal {
                    rd: *rd,
                    target: lookup(label)?,
                },
                Pending::LiLabel { rd, label } => Inst::Li {
                    rd: *rd,
                    imm: lookup(label)? as i64,
                },
            };
            text.push(inst);
        }
        Ok(Program::new(text, self.labels.clone(), TEXT_BASE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        b.label("start")
            .beq(Reg::A0, Reg::ZERO, "end") // forward
            .addi(Reg::A0, Reg::A0, -1)
            .j("start") // backward
            .label("end")
            .halt();
        let p = b.assemble().unwrap();
        assert_eq!(p.symbol("start"), Some(TEXT_BASE));
        assert_eq!(p.symbol("end"), Some(TEXT_BASE + 12));
        match p.fetch(TEXT_BASE).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(target, TEXT_BASE + 12),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(TEXT_BASE + 8).unwrap() {
            Inst::Jal { target, .. } => assert_eq!(target, TEXT_BASE),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn li_label_materializes_pc() {
        let mut b = ProgramBuilder::new();
        b.li_label(Reg::T0, "fn")
            .jalr(Reg::RA, Reg::T0, 0)
            .halt()
            .label("fn")
            .ret();
        let p = b.assemble().unwrap();
        match p.fetch(TEXT_BASE).unwrap() {
            Inst::Li { imm, .. } => assert_eq!(imm as u64, TEXT_BASE + 12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere");
        assert_eq!(
            b.assemble(),
            Err(AssembleError::UndefinedLabel("nowhere".to_string()))
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x").nop().label("x").halt();
        assert_eq!(
            b.assemble(),
            Err(AssembleError::DuplicateLabel("x".to_string()))
        );
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(ProgramBuilder::new().assemble(), Err(AssembleError::Empty));
    }

    #[test]
    fn builder_len_tracks_instructions_not_labels() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        b.label("a").nop().label("b").nop();
        assert_eq!(b.len(), 2);
    }
}
