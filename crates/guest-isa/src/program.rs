//! Assembled guest programs.

use crate::inst::Inst;
use std::collections::BTreeMap;

/// Base virtual address of the text segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Byte size of one (fixed-width) instruction.
pub const INST_BYTES: u64 = 4;

/// An assembled program: a fixed-width text segment plus symbol table.
///
/// PCs are byte addresses; instruction `i` lives at
/// `TEXT_BASE + 4 * i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    text: Vec<Inst>,
    symbols: BTreeMap<String, u64>,
    entry: u64,
    /// Bumped on every [`patch`](Self::patch); lets decoded-code caches
    /// (the block tier's [`crate::block::BlockCache`]) detect that their
    /// copies of the text are stale.
    version: u64,
}

impl Program {
    pub(crate) fn new(text: Vec<Inst>, symbols: BTreeMap<String, u64>, entry: u64) -> Self {
        Program {
            text,
            symbols,
            entry,
            version: 0,
        }
    }

    /// Entry-point PC.
    pub fn entry_pc(&self) -> u64 {
        self.entry
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Last valid PC + 4 (end of text).
    pub fn text_end(&self) -> u64 {
        TEXT_BASE + self.text.len() as u64 * INST_BYTES
    }

    /// Fetches the instruction at `pc`, or `None` if `pc` is outside the
    /// text segment or misaligned.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        if pc < TEXT_BASE || (pc - TEXT_BASE) % INST_BYTES != 0 {
            return None;
        }
        self.text
            .get(((pc - TEXT_BASE) / INST_BYTES) as usize)
            .copied()
    }

    /// Looks up a label's PC.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Text-segment version, bumped by every [`patch`](Self::patch).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Overwrites the instruction at `pc` (self-modifying code).
    ///
    /// Returns `false` (and changes nothing) if `pc` is outside the text
    /// segment or misaligned. Each successful patch bumps
    /// [`version`](Self::version) so decoded-code caches can invalidate.
    pub fn patch(&mut self, pc: u64, inst: Inst) -> bool {
        if pc < TEXT_BASE || (pc - TEXT_BASE) % INST_BYTES != 0 {
            return false;
        }
        match self.text.get_mut(((pc - TEXT_BASE) / INST_BYTES) as usize) {
            Some(slot) => {
                *slot = inst;
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Iterates over `(pc, inst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Inst)> + '_ {
        self.text
            .iter()
            .enumerate()
            .map(|(i, &inst)| (TEXT_BASE + i as u64 * INST_BYTES, inst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Reg};

    fn two_inst_program() -> Program {
        let mut syms = BTreeMap::new();
        syms.insert("start".to_string(), TEXT_BASE);
        Program::new(
            vec![
                Inst::Li {
                    rd: Reg::A0,
                    imm: 1,
                },
                Inst::Halt,
            ],
            syms,
            TEXT_BASE,
        )
    }

    #[test]
    fn fetch_in_bounds() {
        let p = two_inst_program();
        assert_eq!(
            p.fetch(TEXT_BASE),
            Some(Inst::Li {
                rd: Reg::A0,
                imm: 1
            })
        );
        assert_eq!(p.fetch(TEXT_BASE + 4), Some(Inst::Halt));
        assert_eq!(p.fetch(TEXT_BASE + 8), None);
        assert_eq!(p.fetch(TEXT_BASE - 4), None);
        assert_eq!(p.fetch(TEXT_BASE + 2), None, "misaligned fetch");
    }

    #[test]
    fn symbols_and_extent() {
        let p = two_inst_program();
        assert_eq!(p.symbol("start"), Some(TEXT_BASE));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.text_end(), TEXT_BASE + 8);
    }

    #[test]
    fn patch_rewrites_text_and_bumps_version() {
        let mut p = two_inst_program();
        assert_eq!(p.version(), 0);
        assert!(p.patch(TEXT_BASE, Inst::Nop));
        assert_eq!(p.fetch(TEXT_BASE), Some(Inst::Nop));
        assert_eq!(p.version(), 1);
        // Out-of-range and misaligned patches are rejected untouched.
        assert!(!p.patch(TEXT_BASE + 8, Inst::Nop));
        assert!(!p.patch(TEXT_BASE + 2, Inst::Nop));
        assert!(!p.patch(TEXT_BASE - 4, Inst::Nop));
        assert_eq!(p.version(), 1);
    }

    #[test]
    fn iter_yields_sequential_pcs() {
        let p = two_inst_program();
        let pcs: Vec<u64> = p.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![TEXT_BASE, TEXT_BASE + 4]);
    }
}
