//! Instruction definitions and static classification.

use std::fmt;

/// An integer register. `Reg(0)` is the hard-wired zero register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporaries.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved register 1.
    pub const S1: Reg = Reg(9);
    /// Argument / return value 0.
    pub const A0: Reg = Reg(10);
    /// Argument 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Syscall number register (RISC-V convention).
    pub const A7: Reg = Reg(17);
    /// Saved register 2.
    pub const S2: Reg = Reg(18);
    /// Saved register 3.
    pub const S3: Reg = Reg(19);
    /// Saved register 4.
    pub const S4: Reg = Reg(20);
    /// Saved register 5.
    pub const S5: Reg = Reg(21);
    /// Saved register 6.
    pub const S6: Reg = Reg(22);
    /// Saved register 7.
    pub const S7: Reg = Reg(23);
    /// Saved register 8.
    pub const S8: Reg = Reg(24);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6.
    pub const T6: Reg = Reg(31);

    /// Register index (0–31).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point register (f0–f31), holding an `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl FReg {
    /// Register index (0–31).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
}

/// Floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpuOp {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
    Min,
    Max,
}

/// FP comparison predicates (result written to an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FCmpOp {
    Eq,
    Lt,
    Le,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B => 1,
            MemSize::H => 2,
            MemSize::W => 4,
            MemSize::D => 8,
        }
    }
}

/// Conditional branch predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// A guest instruction.
///
/// Branch and jump targets are absolute guest PCs (resolved by the
/// assembler from labels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Load immediate (pseudo `li`).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Register-register FP operation (`fs2` ignored for `Sqrt`).
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Convert integer to double.
    FCvtIF {
        /// FP destination.
        fd: FReg,
        /// Integer source.
        rs: Reg,
    },
    /// Convert double to integer (truncating).
    FCvtFI {
        /// Integer destination.
        rd: Reg,
        /// FP source.
        fs: FReg,
    },
    /// FP comparison into an integer register (1 if true else 0).
    FCmp {
        /// Predicate.
        op: FCmpOp,
        /// Integer destination.
        rd: Reg,
        /// First FP source.
        fs1: FReg,
        /// Second FP source.
        fs2: FReg,
    },
    /// Integer load.
    Load {
        /// Access width.
        size: MemSize,
        /// Sign-extend narrower loads when true.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Integer store.
    Store {
        /// Access width.
        size: MemSize,
        /// Value source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// FP load (8 bytes).
    FLoad {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// FP store (8 bytes).
    FStore {
        /// Value source.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Conditional branch to an absolute PC.
    Branch {
        /// Predicate.
        cond: BranchCond,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Absolute target PC.
        target: u64,
    },
    /// Jump and link to an absolute PC.
    Jal {
        /// Link register (often `Reg::RA`, or `Reg::ZERO` for plain jumps).
        rd: Reg,
        /// Absolute target PC.
        target: u64,
    },
    /// Indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Target base register.
        base: Reg,
        /// Byte offset added to the base.
        off: i64,
    },
    /// Environment call (syscall in SE mode, firmware service in FS mode).
    Ecall,
    /// Return from interrupt (FS mode): restores the PC saved at
    /// interrupt entry. Does not touch general registers.
    Iret,
    /// No operation.
    Nop,
    /// Stop the hart (pseudo-instruction standing in for gem5's
    /// `m5_exit` magic instruction).
    Halt,
}

/// Static instruction class, used by the timing CPU models for functional
/// unit selection and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum InstClass {
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    Syscall,
    Nop,
}

impl Inst {
    /// Static classification of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => InstClass::IntMul,
                AluOp::Div | AluOp::Rem => InstClass::IntDiv,
                _ => InstClass::IntAlu,
            },
            Inst::Li { .. } => InstClass::IntAlu,
            Inst::Fpu { op, .. } => match op {
                FpuOp::Mul => InstClass::FpMul,
                FpuOp::Div | FpuOp::Sqrt => InstClass::FpDiv,
                _ => InstClass::FpAlu,
            },
            Inst::FCvtIF { .. } | Inst::FCvtFI { .. } | Inst::FCmp { .. } => InstClass::FpAlu,
            Inst::Load { .. } | Inst::FLoad { .. } => InstClass::Load,
            Inst::Store { .. } | Inst::FStore { .. } => InstClass::Store,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Jal { .. } | Inst::Jalr { .. } => InstClass::Jump,
            Inst::Ecall => InstClass::Syscall,
            Inst::Iret => InstClass::Jump,
            Inst::Nop | Inst::Halt => InstClass::Nop,
        }
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self.class(),
            InstClass::Branch | InstClass::Jump | InstClass::Syscall
        ) || matches!(self, Inst::Halt)
    }

    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(self.class(), InstClass::Load | InstClass::Store)
    }

    /// Destination integer register, if any (excluding the zero register).
    pub fn int_dest(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::FCvtFI { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. } => rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// Integer source registers (up to two).
    pub fn int_srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::AluImm { rs1, .. } => [Some(rs1), None],
            Inst::FCvtIF { rs, .. } => [Some(rs), None],
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => [Some(base), None],
            Inst::Store { rs, base, .. } => [Some(rs), Some(base)],
            Inst::FStore { base, .. } => [Some(base), None],
            Inst::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Jalr { base, .. } => [Some(base), None],
            _ => [None, None],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Fpu { op, fd, fs1, fs2 } => write!(f, "f{op:?} {fd}, {fs1}, {fs2}"),
            Inst::FCvtIF { fd, rs } => write!(f, "fcvt.d.l {fd}, {rs}"),
            Inst::FCvtFI { rd, fs } => write!(f, "fcvt.l.d {rd}, {fs}"),
            Inst::FCmp { op, rd, fs1, fs2 } => write!(f, "f{op:?} {rd}, {fs1}, {fs2}"),
            Inst::Load {
                size,
                signed,
                rd,
                base,
                off,
            } => write!(
                f,
                "l{}{} {rd}, {off}({base})",
                format!("{size:?}").to_lowercase(),
                if *signed { "" } else { "u" }
            ),
            Inst::Store {
                size,
                rs,
                base,
                off,
            } => write!(
                f,
                "s{} {rs}, {off}({base})",
                format!("{size:?}").to_lowercase()
            ),
            Inst::FLoad { fd, base, off } => write!(f, "fld {fd}, {off}({base})"),
            Inst::FStore { fs, base, off } => write!(f, "fsd {fs}, {off}({base})"),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(
                f,
                "b{} {rs1}, {rs2}, {target:#x}",
                format!("{cond:?}").to_lowercase()
            ),
            Inst::Jal { rd, target } => write!(f, "jal {rd}, {target:#x}"),
            Inst::Jalr { rd, base, off } => write!(f, "jalr {rd}, {off}({base})"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Iret => write!(f, "iret"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_semantics() {
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(mul.class(), InstClass::IntMul);
        let div = Inst::AluImm {
            op: AluOp::Rem,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 3,
        };
        assert_eq!(div.class(), InstClass::IntDiv);
        let fsqrt = Inst::Fpu {
            op: FpuOp::Sqrt,
            fd: FReg(0),
            fs1: FReg(1),
            fs2: FReg(0),
        };
        assert_eq!(fsqrt.class(), InstClass::FpDiv);
        assert!(Inst::Ecall.is_control());
        assert!(Inst::Halt.is_control());
        assert!(!Inst::Nop.is_control());
        assert!(Inst::FLoad {
            fd: FReg(0),
            base: Reg::SP,
            off: 0
        }
        .is_mem());
    }

    #[test]
    fn zero_register_is_never_a_dest() {
        let i = Inst::Li {
            rd: Reg::ZERO,
            imm: 5,
        };
        assert_eq!(i.int_dest(), None);
        let i = Inst::Li {
            rd: Reg::A0,
            imm: 5,
        };
        assert_eq!(i.int_dest(), Some(Reg::A0));
    }

    #[test]
    fn sources_reported() {
        let st = Inst::Store {
            size: MemSize::D,
            rs: Reg::A0,
            base: Reg::SP,
            off: 8,
        };
        assert_eq!(st.int_srcs(), [Some(Reg::A0), Some(Reg::SP)]);
    }

    #[test]
    fn display_is_nonempty_for_all_shapes() {
        let insts = [
            Inst::Nop,
            Inst::Halt,
            Inst::Ecall,
            Inst::Li {
                rd: Reg::A0,
                imm: 1,
            },
            Inst::Jal {
                rd: Reg::RA,
                target: 0x1000,
            },
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::B.bytes(), 1);
        assert_eq!(MemSize::H.bytes(), 2);
        assert_eq!(MemSize::W.bytes(), 4);
        assert_eq!(MemSize::D.bytes(), 8);
    }
}
