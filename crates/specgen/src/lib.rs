//! SPEC CPU2017-like reference host workloads.
//!
//! The paper contrasts gem5's Top-Down profile with three SPEC CPU2017
//! benchmarks run on bare metal (Sec. III): `525.x264_r` (the suite's
//! highest IPC), `531.deepsjeng_r` (largest L3 miss rate), and
//! `505.mcf_r` (lowest IPC; heavily back-end bound). These generators
//! synthesize host instruction streams with exactly those published
//! characters, reusing the `hosttrace` binary model for code addresses
//! (hot SPEC loops occupy a tiny, well-clustered code footprint — which
//! is the point of the contrast).

use hosttrace::record::{DataRef, ExecRecord, TraceSink};
use hosttrace::registry::{FunctionId, Registry};
use hosttrace::{mix2, mix64};

/// The three SPEC reference benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecBenchmark {
    /// `525.x264_r`: video encoding — tight vectorized loops, high IPC,
    /// high µop-cache coverage, streaming data.
    X264,
    /// `531.deepsjeng_r`: chess search — large hash tables, highest L3
    /// miss rate in the suite.
    Deepsjeng,
    /// `505.mcf_r`: network simplex — pointer chasing over hundreds of
    /// MB, data-dependent branches, lowest IPC.
    Mcf,
}

impl SpecBenchmark {
    /// All three, in the paper's order.
    pub const ALL: [SpecBenchmark; 3] = [
        SpecBenchmark::X264,
        SpecBenchmark::Deepsjeng,
        SpecBenchmark::Mcf,
    ];

    /// The SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::X264 => "525.x264_r",
            SpecBenchmark::Deepsjeng => "531.deepsjeng_r",
            SpecBenchmark::Mcf => "505.mcf_r",
        }
    }

    /// Picks `n` functions of the binary model for this benchmark's hot
    /// code, filtered by branch bias where the benchmark demands it.
    fn hot_functions(self, reg: &Registry, n: usize) -> Vec<FunctionId> {
        let want_biased = matches!(self, SpecBenchmark::X264 | SpecBenchmark::Deepsjeng);
        let mut out = Vec::with_capacity(n);
        let len = reg.len() as u32;
        let mut cursor = mix64(self as u64 + 11) as u32;
        while out.len() < n {
            cursor = cursor.wrapping_add(0x9E37_79B9);
            let fid = FunctionId(cursor % len);
            let meta = reg.meta(fid);
            let biased = meta.taken_rate >= 90;
            if biased == want_biased {
                out.push(fid);
            }
        }
        out
    }

    /// Generates `records` exec records (plus data traffic) into `sink`.
    pub fn generate(self, reg: &Registry, sink: &mut impl TraceSink, records: u64) {
        match self {
            SpecBenchmark::X264 => self.gen_x264(reg, sink, records),
            SpecBenchmark::Deepsjeng => self.gen_deepsjeng(reg, sink, records),
            SpecBenchmark::Mcf => self.gen_mcf(reg, sink, records),
        }
    }

    fn gen_x264(self, reg: &Registry, sink: &mut impl TraceSink, records: u64) {
        // ~24 hot functions in tight rotation; big basic blocks; direct
        // calls only; streaming frame-buffer traffic.
        let hot = self.hot_functions(reg, 10);
        let frame = 0x30_0000_0000u64;
        for i in 0..records {
            let f = hot[(mix64(i) % 3 + i % 4) as usize % hot.len()];
            sink.exec(ExecRecord {
                func: f,
                uops: 44,
                cond_branches: 3,
                indirect_branches: 0,
                loads: 8,
                stores: 3,
                variant: (i / hot.len() as u64) as u32,
            });
            // Streaming: sequential 2 MB frame, wrapping.
            sink.data(DataRef {
                addr: frame + (i * 256) % (2 * 1024 * 1024),
                bytes: 128,
                write: i % 4 == 0,
            });
        }
    }

    fn gen_deepsjeng(self, reg: &Registry, sink: &mut impl TraceSink, records: u64) {
        // Moderate code footprint; random probes into a 256 MB
        // transposition table: the suite's worst L3 behaviour.
        let hot = self.hot_functions(reg, 80);
        let table = 0x40_0000_0000u64;
        for i in 0..records {
            let f = hot[(mix64(i ^ 0xDEE9) % hot.len() as u64) as usize];
            sink.exec(ExecRecord {
                func: f,
                uops: 26,
                cond_branches: 4,
                indirect_branches: 0,
                loads: 5,
                stores: 2,
                variant: (i / 64) as u32,
            });
            // Most work is in registers/L1; every few nodes the search
            // probes the transposition table (random over 256 MB — the
            // L3-miss champion of the suite).
            if i % 12 == 0 {
                sink.data(DataRef {
                    addr: table + (mix2(i, 1) % (256 * 1024 * 1024)) / 16 * 16,
                    bytes: 16,
                    write: i % 36 == 0,
                });
            } else {
                sink.data(DataRef {
                    addr: table + (mix2(i, 2) % (128 * 1024)) / 16 * 16,
                    bytes: 16,
                    write: false,
                });
            }
        }
    }

    fn gen_mcf(self, reg: &Registry, sink: &mut impl TraceSink, records: u64) {
        // Small code, low-bias (data-dependent) branches, dependent
        // pointer chasing over ~512 MB of arcs/nodes.
        let hot = self.hot_functions(reg, 40);
        let arena = 0x50_0000_0000u64;
        for i in 0..records {
            let f = hot[(mix64(i ^ 0x3CF) % hot.len() as u64) as usize];
            sink.exec(ExecRecord {
                func: f,
                uops: 12,
                cond_branches: 4,
                indirect_branches: 0,
                loads: 4,
                stores: 1,
                variant: i as u32, // fresh outcomes: hard to predict
            });
            // Dependent pointer chase: frequent far misses over the
            // 512 MB arc arena, interleaved with near-node touches.
            if i % 8 == 0 {
                sink.data(DataRef {
                    addr: arena + (mix2(i, 0xAB) % (512 * 1024 * 1024)) / 8 * 8,
                    bytes: 8,
                    write: false,
                });
            } else {
                sink.data(DataRef {
                    addr: arena + (mix2(i, 0xCD) % (256 * 1024)) / 8 * 8,
                    bytes: 8,
                    write: i % 7 == 0,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem5sim::CompClass;
    use hostmodel::HostEngine;
    use hosttrace::record::CountingSink;
    use hosttrace::{BinaryVariant, PageBacking};
    use platforms_test_helpers::xeonish;
    use std::sync::Arc;

    /// Minimal Xeon-like config without depending on the platforms crate
    /// (avoids a dependency cycle in tests).
    mod platforms_test_helpers {
        use hostmodel::{CacheGeom, HostConfig};
        pub fn xeonish() -> HostConfig {
            HostConfig {
                name: "xeonish".into(),
                width: 4,
                mite_width: 2.6,
                dsb_width: 6.0,
                dsb_uops: 1536,
                freq_ghz: 3.1,
                line: 64,
                page: 4096,
                l1i: CacheGeom::kib(32, 8),
                l1d: CacheGeom::kib(32, 8),
                l2: CacheGeom::mib(1, 16),
                llc: CacheGeom::mib(32, 16),
                l2_lat: 14,
                llc_lat: 44,
                dram_lat: 298,
                itlb_entries: 128,
                dtlb_entries: 64,
                stlb_entries: 1536,
                stlb_lat: 9,
                walk_lat: 36,
                bp_bits: 13,
                btb_entries: 4096,
                mispredict_penalty: 17,
                resteer_cycles: 9,
                loop_reach: 48,
                bytes_per_uop: 3.6,
                uops_per_inst: 1.12,
                mlp: 3.0,
                fetch_mlp: 2.0,
                prefetch_factor: 0.08,
            }
        }
    }

    fn run(b: SpecBenchmark, records: u64) -> hostmodel::HostRunStats {
        let reg = Arc::new(Registry::new(BinaryVariant::Base, PageBacking::Base));
        let mut engine = HostEngine::new(xeonish(), Arc::clone(&reg));
        b.generate(&reg, &mut engine, records);
        engine.finish()
    }

    #[test]
    fn x264_has_high_ipc_and_dsb_coverage() {
        let s = run(SpecBenchmark::X264, 60_000);
        assert!(s.ipc() > 1.8, "x264 IPC {}", s.ipc());
        assert!(s.dsb_coverage > 0.6, "x264 DSB {}", s.dsb_coverage);
        let (retiring, fe, _, _) = s.topdown.level1_pct();
        assert!(retiring > 60.0, "retiring {retiring}");
        assert!(fe < 25.0, "fe {fe}");
    }

    #[test]
    fn mcf_is_backend_bound_with_low_ipc() {
        let s = run(SpecBenchmark::Mcf, 60_000);
        let (retiring, _, _, be) = s.topdown.level1_pct();
        assert!(be > 35.0, "mcf backend {be}");
        assert!(retiring < 35.0, "mcf retiring {retiring}");
        let x = run(SpecBenchmark::X264, 60_000);
        assert!(
            s.ipc() < x.ipc() / 3.0,
            "mcf {} vs x264 {}",
            s.ipc(),
            x.ipc()
        );
    }

    #[test]
    fn deepsjeng_misses_in_llc() {
        let s = run(SpecBenchmark::Deepsjeng, 60_000);
        // Random probes over 256 MB >> 32 MB LLC: every table probe is
        // demand DRAM traffic (one probe per 12 records).
        assert!(s.dram_bytes > 300 * 1024, "dram {}", s.dram_bytes);
        let (_, _, _, be) = s.topdown.level1_pct();
        assert!(be > 15.0, "deepsjeng backend {be}");
    }

    #[test]
    fn spec_code_footprint_is_small_compared_to_gem5() {
        // All three SPEC profiles touch far fewer functions than any gem5
        // run (tens vs thousands).
        let reg = Registry::new(BinaryVariant::Base, PageBacking::Base);
        for b in SpecBenchmark::ALL {
            let mut sink = CountingSink::default();
            b.generate(&reg, &mut sink, 10_000);
            assert_eq!(sink.execs, 10_000);
        }
        let _ = CompClass::EventQueue; // crate linkage sanity
    }

    #[test]
    fn names_match_spec() {
        assert_eq!(SpecBenchmark::X264.name(), "525.x264_r");
        assert_eq!(SpecBenchmark::Deepsjeng.name(), "531.deepsjeng_r");
        assert_eq!(SpecBenchmark::Mcf.name(), "505.mcf_r");
    }
}
