//! One bench per paper figure: each regenerates the figure at Quick
//! fidelity and reports its wall time. `repro all` produces the
//! full-size tables; these benches keep every figure pipeline healthy
//! and measured.
//!
//! Note: the guest-trace memoization cache is process-wide, so after the
//! first iteration of each figure the guest simulations are served by
//! replay — the numbers measure the steady-state (cached) pipeline.

use bench::harness::{Budget, Runner};
use gem5prof::figures::{self, Fidelity};
use gem5prof::report::Table;
use std::time::Duration;

fn main() {
    let mut r = Runner::from_args();
    let budget = Budget {
        max_time: Duration::from_secs(3),
        max_iters: 10,
    };

    let figs: Vec<(&str, fn(Fidelity) -> Table)> = vec![
        ("fig01", figures::fig01),
        ("fig02", figures::fig02),
        ("fig03", figures::fig03),
        ("fig04", figures::fig04),
        ("fig05", figures::fig05),
        ("fig06", figures::fig06),
        ("fig07", figures::fig07),
        ("fig08", figures::fig08),
        ("fig09", figures::fig09),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("fig15", figures::fig15),
    ];
    for (name, f) in figs {
        r.bench_with(&format!("figures/{name}"), budget, || {
            f(Fidelity::Quick).rows.len()
        });
    }

    r.bench_with("figures/table1", budget, || figures::table1().rows.len());
    r.bench_with("figures/table2", budget, || figures::table2().rows.len());

    r.finish();
}
