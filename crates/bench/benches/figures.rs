//! One Criterion bench per paper figure: each regenerates the figure at
//! Quick fidelity and reports its wall time. `repro all` produces the
//! full-size tables; these benches keep every figure pipeline healthy
//! and measured.

use criterion::{criterion_group, criterion_main, Criterion};
use gem5prof::figures::{self, Fidelity};

macro_rules! fig_bench {
    ($fn_name:ident, $fig:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.warm_up_time(std::time::Duration::from_millis(500));
            g.measurement_time(std::time::Duration::from_secs(3));
            g.bench_function(stringify!($fig), |b| {
                b.iter(|| figures::$fig(Fidelity::Quick).rows.len())
            });
            g.finish();
        }
    };
}

fig_bench!(bench_fig01, fig01);
fig_bench!(bench_fig02, fig02);
fig_bench!(bench_fig03, fig03);
fig_bench!(bench_fig04, fig04);
fig_bench!(bench_fig05, fig05);
fig_bench!(bench_fig06, fig06);
fig_bench!(bench_fig07, fig07);
fig_bench!(bench_fig08, fig08);
fig_bench!(bench_fig09, fig09);
fig_bench!(bench_fig10, fig10);
fig_bench!(bench_fig11, fig11);
fig_bench!(bench_fig12, fig12);
fig_bench!(bench_fig13, fig13);
fig_bench!(bench_fig14, fig14);
fig_bench!(bench_fig15, fig15);

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("table1", |b| b.iter(|| figures::table1().rows.len()));
    g.bench_function("table2", |b| b.iter(|| figures::table2().rows.len()));
    g.finish();
}

criterion_group!(
    benches,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05,
    bench_fig06,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_tables
);
criterion_main!(benches);
