//! Component microbenchmarks: the building blocks whose speed bounds the
//! whole reproduction pipeline.

use bench::harness::Runner;
use gem5sim::config::{CpuModel, SimMode, SystemConfig};
use gem5sim::system::System;
use gem5sim_event::{EventQueue, Priority};
use gem5sim_workloads::{Scale, Workload};
use hostmodel::HostEngine;
use hosttrace::record::{ExecRecord, TraceSink};
use hosttrace::registry::FunctionId;
use hosttrace::{BinaryVariant, PageBacking, Registry};
use std::sync::Arc;

fn main() {
    let mut r = Runner::from_args();

    r.bench("eventq/schedule_service_10k", || {
        let eq = EventQueue::new();
        for t in 0..10_000u64 {
            eq.schedule(t, Priority::DEFAULT, |_| {});
        }
        eq.run(None)
    });

    for cpu in CpuModel::ALL {
        let prog = Workload::Dedup.program(Scale::Test);
        r.bench(&format!("guest_cpu_models/{}", cpu.label()), || {
            let mut sys = System::new(SystemConfig::new(cpu, SimMode::Se), prog.clone());
            sys.run().committed_insts
        });
    }

    let reg = Arc::new(Registry::new(BinaryVariant::Base, PageBacking::Base));
    r.bench("host_engine/exec_100k_records", || {
        let mut e = HostEngine::new(platforms::intel_xeon().config, Arc::clone(&reg));
        for i in 0..100_000u32 {
            e.exec(ExecRecord {
                func: FunctionId(i % 4000),
                uops: 16,
                cond_branches: 3,
                indirect_branches: 1,
                loads: 4,
                stores: 2,
                variant: i / 4000,
            });
        }
        e.finish().cycles
    });

    r.finish();
}
