//! Component microbenchmarks: the building blocks whose speed bounds the
//! whole reproduction pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gem5sim::config::{CpuModel, SimMode, SystemConfig};
use gem5sim::system::System;
use gem5sim_event::{EventQueue, Priority};
use gem5sim_workloads::{Scale, Workload};
use hostmodel::HostEngine;
use hosttrace::record::{ExecRecord, TraceSink};
use hosttrace::registry::FunctionId;
use hosttrace::{BinaryVariant, PageBacking, Registry};
use std::rc::Rc;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("eventq");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_service_10k", |b| {
        b.iter(|| {
            let eq = EventQueue::new();
            for t in 0..10_000u64 {
                eq.schedule(t, Priority::DEFAULT, |_| {});
            }
            eq.run(None)
        })
    });
    g.finish();
}

fn bench_guest_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("guest_cpu_models");
    for cpu in CpuModel::ALL {
        g.bench_function(cpu.label(), |b| {
            let prog = Workload::Dedup.program(Scale::Test);
            b.iter(|| {
                let mut sys = System::new(SystemConfig::new(cpu, SimMode::Se), prog.clone());
                sys.run().committed_insts
            })
        });
    }
    g.finish();
}

fn bench_host_engine(c: &mut Criterion) {
    let reg = Rc::new(Registry::new(BinaryVariant::Base, PageBacking::Base));
    let mut g = c.benchmark_group("host_engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("exec_100k_records", |b| {
        b.iter(|| {
            let mut e = HostEngine::new(platforms::intel_xeon().config, Rc::clone(&reg));
            for i in 0..100_000u32 {
                e.exec(ExecRecord {
                    func: FunctionId(i % 4000),
                    uops: 16,
                    cond_branches: 3,
                    indirect_branches: 1,
                    loads: 4,
                    stores: 2,
                    variant: i / 4000,
                });
            }
            e.finish().cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_guest_models, bench_host_engine);
criterion_main!(benches);
