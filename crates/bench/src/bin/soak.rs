//! `soak` — deterministic chaos soak for `gem5prof-served`.
//!
//! ```text
//! soak [--seeds N] [--seed S]... [--secs T] [--requests M]
//!      [--clients N] [--prob P] [--cluster N]
//! ```
//!
//! Runs one in-process soak episode per seed (see `bench::soak`): an
//! ephemeral server with `gem5prof-chaos` armed, a fixed traffic mix
//! from concurrent clients, then invariant probes and a watchdogged
//! graceful drain. `--seeds N` runs seeds `1..=N`; explicit `--seed S`
//! flags (repeatable) override that. `--requests M` switches from a
//! time budget to a fixed per-client request count, which makes an
//! episode exactly replayable.
//!
//! `--cluster N` switches to the cluster episode: N nodes behind a
//! consistent-hash router, with a seed-chosen node killed mid-burst.
//! The same invariants must hold fleet-wide — exactly one response per
//! request across re-routing, no poisoned body from any tier (including
//! peer warm-tier promotion), ejection of the dead node, and a graceful
//! surviving-fleet drain.
//!
//! Exits 0 when every seed holds every invariant AND, across all seeds
//! combined, every fault class (I/O, delay, panic, poison) actually
//! injected at least once — a soak that injects nothing proves nothing.
//! A failing seed prints a one-line reproduction command.

use bench::soak::{cluster_soak_seed, soak_seed, SoakConfig};
use std::collections::BTreeMap;

/// Fault classes that must each fire at least once across the run.
const CLASSES: &[(&str, &[&str])] = &[
    (
        "io",
        &[
            "http.read",
            "http.short_read",
            "http.torn_write",
            "server.conn_drop",
            "cache.disk_write",
        ],
    ),
    (
        "delay",
        &[
            "engine.job_delay",
            "runner.slow_worker",
            "runner.queue_stall",
        ],
    ),
    (
        "panic",
        &[
            "engine.worker_panic",
            "engine.job_panic",
            "engine.leader_panic",
        ],
    ),
    ("poison", &["engine.job_poison"]),
    // Torn profile-segment writes; only reachable in single-node
    // episodes (cluster nodes run without a profile dir), so the
    // coverage check skips this class under `--cluster`.
    ("profstore", &["profstore.disk_write"]),
];

fn usage() -> ! {
    eprintln!(
        "usage: soak [--seeds N] [--seed S]... [--secs T] [--requests M] [--clients N] \
         [--prob P] [--cluster N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SoakConfig::default();
    let mut seeds: Vec<u64> = Vec::new();
    let mut nseeds: u64 = 3;
    let mut cluster: usize = 0;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--seeds" => {
                nseeds = value(i)
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--seed" => seeds.push(value(i).parse().unwrap_or_else(|_| usage())),
            "--secs" => {
                cfg.secs = value(i)
                    .parse()
                    .ok()
                    .filter(|s: &f64| *s > 0.0)
                    .unwrap_or_else(|| usage())
            }
            "--requests" => cfg.requests = value(i).parse().unwrap_or_else(|_| usage()),
            "--clients" => {
                cfg.clients = value(i)
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--prob" => {
                cfg.prob = value(i)
                    .parse()
                    .ok()
                    .filter(|p: &f64| (0.0..=1.0).contains(p))
                    .unwrap_or_else(|| usage())
            }
            "--cluster" => {
                cluster = value(i)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 2)
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    if seeds.is_empty() {
        seeds = (1..=nseeds).collect();
    }

    let mut injected_by_point: BTreeMap<String, u64> = BTreeMap::new();
    let mut failed: Vec<u64> = Vec::new();

    for &seed in &seeds {
        let out = if cluster > 0 {
            cluster_soak_seed(seed, &cfg, cluster)
        } else {
            soak_seed(seed, &cfg)
        };
        println!(
            "soak: seed {seed} — issued {} completed {} dropped {} retries {} \
             injected {} recovered {}",
            out.issued,
            out.completed,
            out.dropped,
            out.retries,
            out.injected(),
            out.recovered()
        );
        let statuses: Vec<String> = out
            .statuses
            .iter()
            .map(|(s, n)| format!("{s}×{n}"))
            .collect();
        println!("  statuses: {}", statuses.join(" "));
        for p in out.all_points() {
            *injected_by_point.entry(p.point.to_string()).or_insert(0) += p.injected;
        }
        if !out.passed() {
            for v in &out.violations {
                println!("  VIOLATION: {v}");
            }
            let mode = if cfg.requests > 0 {
                format!("--requests {}", cfg.requests)
            } else {
                format!("--secs {}", cfg.secs)
            };
            let cluster_arg = if cluster > 0 {
                format!(" --cluster {cluster}")
            } else {
                String::new()
            };
            println!(
                "soak: seed {seed} FAILED — rerun: cargo run --release -p bench --bin soak -- \
                 --seed {seed} {mode} --clients {} --prob {}{cluster_arg}",
                cfg.clients, cfg.prob
            );
            failed.push(seed);
        }
    }

    let mut uncovered: Vec<&str> = Vec::new();
    for (class, points) in CLASSES {
        if *class == "profstore" && cluster > 0 {
            continue;
        }
        let total: u64 = points
            .iter()
            .map(|p| injected_by_point.get(*p).copied().unwrap_or(0))
            .sum();
        if total == 0 {
            uncovered.push(class);
        }
    }
    if !uncovered.is_empty() {
        println!(
            "soak: fault classes never injected across {} seed(s): {} — \
             lengthen the run or raise --prob",
            seeds.len(),
            uncovered.join(", ")
        );
    }

    if failed.is_empty() && uncovered.is_empty() {
        println!("soak: all {} seed(s) passed", seeds.len());
        std::process::exit(0);
    }
    std::process::exit(1);
}
