//! `repro` — regenerates every table and figure of *Profiling gem5
//! Simulator* (ISPASS 2023).
//!
//! ```text
//! repro all [--quick]        # everything, in paper order
//! repro fig1 ... fig17       # one figure
//! repro table1 | table2      # configuration tables
//! repro hottest [cpu]        # named hottest functions (Fig. 15 detail)
//! ```
//!
//! `--threads N` (or the `GEM5PROF_THREADS` environment variable) pins
//! the parallel runner's worker count; the default is every core.
//! Output is byte-identical at any thread count.
//!
//! `--self-profile` turns the paper's methodology on the tool itself:
//! after the run it prints the gem5prof-obs span table (per-phase self
//! time, hottest first) and the fraction of wall time the spans account
//! for, on stderr so piped figure output stays clean.

use gem5prof::ablation;
use gem5prof::figures::{self, Fidelity};
use gem5sim::config::CpuModel;

fn fidelity(args: &[String]) -> Fidelity {
    if args.iter().any(|a| a == "--quick") {
        Fidelity::Quick
    } else {
        Fidelity::Paper
    }
}

/// Applies `--threads N` to the runner; exits on a malformed value.
/// `--threads 0` is accepted as "auto": it falls back to available
/// parallelism with a warning (matching `GEM5PROF_THREADS=0`).
fn apply_threads(args: &[String]) {
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(0) => {
                eprintln!("warning: --threads 0 — falling back to available parallelism");
                gem5prof::set_threads(0);
            }
            Some(n) => gem5prof::set_threads(n),
            None => {
                eprintln!("--threads requires a non-negative integer");
                std::process::exit(2);
            }
        }
    }
}

/// Prints the span table and wall-time accounting for `--self-profile`.
fn report_self_profile(wall: std::time::Duration) {
    let nodes = gem5prof_obs::span::snapshot();
    let root_ns: u64 = nodes
        .iter()
        .filter(|n| n.path == ["repro"])
        .map(|n| n.total_ns)
        .sum();
    eprintln!("\n--- self-profile (gem5prof-obs span table) ---");
    eprint!("{}", gem5prof_obs::span::render_table());
    let wall_ns = wall.as_nanos().max(1) as u64;
    eprintln!(
        "spans account for {:.1}% of {:.3}s wall time",
        100.0 * root_ns as f64 / wall_ns as f64,
        wall.as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    apply_threads(&args);
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let f = fidelity(&args);
    let self_profile = args.iter().any(|a| a == "--self-profile");
    let wall_start = std::time::Instant::now();
    if self_profile {
        gem5prof_obs::span::reset();
    }
    // Root span: everything below (figure spans, profile/workload spans,
    // eventq drains) nests under `repro` in the table.
    let root = self_profile.then(|| gem5prof_obs::span("repro"));

    match cmd {
        "all" => {
            for t in figures::all_figures(f) {
                println!("{t}");
            }
        }
        "table1" => println!("{}", figures::table1()),
        "table2" => println!("{}", figures::table2()),
        "fig1" => println!("{}", figures::fig01(f)),
        "fig2" => println!("{}", figures::fig02(f)),
        "fig3" => println!("{}", figures::fig03(f)),
        "fig4" => println!("{}", figures::fig04(f)),
        "fig5" => println!("{}", figures::fig05(f)),
        "fig6" => println!("{}", figures::fig06(f)),
        "fig7" => println!("{}", figures::fig07(f)),
        "fig8" => println!("{}", figures::fig08(f)),
        "fig9" => println!("{}", figures::fig09(f)),
        "fig10" => println!("{}", figures::fig10(f)),
        "fig11" => println!("{}", figures::fig11(f)),
        "fig12" => println!("{}", figures::fig12(f)),
        "fig13" => println!("{}", figures::fig13(f)),
        "fig14" => println!("{}", figures::fig14(f)),
        "fig15" => println!("{}", figures::fig15(f)),
        "fig16" => println!("{}", figures::fig16(f)),
        "fig17" => println!("{}", figures::fig17(f)),
        "ablation" => {
            println!("{}", ablation::accelerator_study(f));
            println!("{}", ablation::host_mechanism_ablation(f));
        }
        "hottest" => {
            let cpu = match args.get(1).map(String::as_str) {
                Some("atomic") => CpuModel::Atomic,
                Some("timing") => CpuModel::Timing,
                Some("minor") => CpuModel::Minor,
                _ => CpuModel::O3,
            };
            println!("hottest functions ({cpu:?}, water_nsquared):");
            for (name, calls, share) in figures::fig15_hottest(f, cpu, 20) {
                println!("  {name:<40} {calls:>10} calls {:>6.2}%", 100.0 * share);
            }
        }
        other => {
            eprintln!(
                "unknown command `{other}`; try: all, table1, table2, fig1..fig17, hottest, ablation"
            );
            std::process::exit(2);
        }
    }

    drop(root);
    if self_profile {
        report_self_profile(wall_start.elapsed());
    }
}
