//! `gem5sim-cli` — run the gem5-like simulator from the command line,
//! in the spirit of `gem5.opt se.py --cpu-type=... --caches ...`.
//!
//! ```text
//! gem5sim-cli --workload water_nsquared --cpu o3 --mode fs \
//!             --scale simsmall --l1i 32 --l1d 32 --l2 1024 \
//!             [--cpus N] [--trace] [--stats]
//! ```

use gem5sim::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use gem5sim::system::System;
use gem5sim::trace::{Tracer, WriteTracer};
use gem5sim_workloads::{Scale, Workload};
use std::cell::RefCell;
use std::rc::Rc;

struct Args {
    workload: Workload,
    cpu: CpuModel,
    mode: SimMode,
    scale: Scale,
    exec_tier: ExecTier,
    cpus: usize,
    l1_kib: Option<u64>,
    l2_kib: Option<u64>,
    max_insts: Option<u64>,
    trace: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: gem5sim-cli [--workload NAME] [--cpu atomic|timing|minor|o3] \
         [--mode se|fs] [--scale test|simsmall|simmedium] [--cpus N] \
         [--exec-tier interp|block] [--l1 KiB] [--l2 KiB] [--max-insts N] \
         [--trace] [--stats]\n\
         workloads: {}",
        Workload::PARSEC
            .iter()
            .map(|w| w.name())
            .chain(["boot_exit", "sieve"])
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_workload(s: &str) -> Option<Workload> {
    Workload::PARSEC
        .into_iter()
        .chain([Workload::BootExit, Workload::Sieve])
        .find(|w| w.name() == s)
}

fn parse() -> Args {
    let mut args = Args {
        workload: Workload::WaterNsquared,
        cpu: CpuModel::Atomic,
        mode: SimMode::Se,
        scale: Scale::SimSmall,
        exec_tier: ExecTier::Block,
        cpus: 1,
        l1_kib: None,
        l2_kib: None,
        max_insts: None,
        trace: false,
        stats: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--workload" | "-w" => {
                let v = value(&mut i);
                args.workload = parse_workload(&v).unwrap_or_else(|| usage());
            }
            "--cpu" | "-c" => {
                args.cpu = match value(&mut i).as_str() {
                    "atomic" => CpuModel::Atomic,
                    "timing" => CpuModel::Timing,
                    "minor" => CpuModel::Minor,
                    "o3" => CpuModel::O3,
                    _ => usage(),
                };
            }
            "--mode" | "-m" => {
                args.mode = match value(&mut i).as_str() {
                    "se" => SimMode::Se,
                    "fs" => SimMode::Fs,
                    _ => usage(),
                };
            }
            "--scale" | "-s" => {
                args.scale = match value(&mut i).as_str() {
                    "test" => Scale::Test,
                    "simsmall" => Scale::SimSmall,
                    "simmedium" => Scale::SimMedium,
                    _ => usage(),
                };
            }
            "--exec-tier" | "-t" => {
                args.exec_tier = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--cpus" | "-n" => args.cpus = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--l1" => args.l1_kib = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--l2" => args.l2_kib = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--max-insts" => {
                args.max_insts = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--trace" => args.trace = true,
            "--no-stats" => args.stats = false,
            "--stats" => args.stats = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn main() {
    let a = parse();
    let mut cfg = SystemConfig::new(a.cpu, a.mode)
        .with_cpus(a.cpus)
        .with_exec_tier(a.exec_tier);
    if let Some(kib) = a.l1_kib {
        cfg.l1i.size = kib * 1024;
        cfg.l1d.size = kib * 1024;
    }
    if let Some(kib) = a.l2_kib {
        cfg.l2.size = kib * 1024;
    }
    if let Some(n) = a.max_insts {
        cfg = cfg.with_max_insts(n);
    }

    eprintln!(
        "gem5sim: {} on {} ({:?}, {} hart{}, {} tier)",
        a.workload,
        a.cpu.label(),
        a.mode,
        a.cpus,
        if a.cpus == 1 { "" } else { "s" },
        a.exec_tier.label()
    );
    let program = a.workload.program(a.scale);
    let mut sys = System::new(cfg, program);
    if a.trace {
        sys.set_tracer(Tracer::new(Rc::new(RefCell::new(WriteTracer::new(
            std::io::stdout().lock(),
        )))));
    }
    let start = std::time::Instant::now();
    let result = sys.run();
    let host = start.elapsed();
    drop(sys);

    if !result.stdout.is_empty() {
        eprintln!("--- guest stdout ({} bytes) ---", result.stdout.len());
        eprintln!("{}", String::from_utf8_lossy(&result.stdout));
    }
    eprintln!(
        "Exiting @ tick {} because all harts halted (exit code {:?})",
        result.sim_ticks, result.exit_code
    );
    eprintln!(
        "simulated {} insts in {:.3}s host time ({:.0} KIPS), guest IPC {:.3}",
        result.committed_insts,
        host.as_secs_f64(),
        result.committed_insts as f64 / host.as_secs_f64() / 1000.0,
        result.guest_ipc()
    );
    if a.stats {
        println!("---------- Begin Simulation Statistics ----------");
        print!("{}", result.stat_dump());
        println!("---------- End Simulation Statistics   ----------");
    }
}
