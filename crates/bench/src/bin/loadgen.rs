//! `loadgen` — closed-loop load generator for `gem5prof-served`.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--clients N] [--requests M] [--paths P1,P2,…]
//!         [--duplicate-fraction F] [--json] [--profile-snapshot]
//! ```
//!
//! Spawns `N` concurrent clients, each holding one keep-alive
//! connection and issuing `M` requests back-to-back (closed loop: the
//! next request starts when the previous response lands). Clients cycle
//! through the given paths (default `/figures/fig01`), so the default
//! workload is repeated-spec and exercises the server's result cache.
//!
//! `--duplicate-fraction F` switches to a duplicate-heavy mix: each
//! request goes to the first path (the shared hot key) with probability
//! `F`, deterministically in the (client, request) pair, and cycles
//! through the remaining paths otherwise. With `F` near 1 every client
//! hammers one key at once — the workload single-flight coalescing is
//! built for: a coalescing server computes the hot key once, a
//! `--no-coalesce` server once per concurrent duplicate.
//!
//! Reports throughput, latency percentiles (plus the +Inf overflow
//! count, so a saturated histogram is visible instead of silently
//! clamping), a status-code histogram, retries, dropped connections
//! (any transport error that survives its retries), and the
//! server-side result cache hit rate read from `/stats` afterwards.
//! `--json` prints the same report as a JSON object (the format stored
//! in `BENCH_serving.json`). `--profile-snapshot` captures a profstore
//! snapshot (`POST /profile/snapshot?label=loadgen`) after the run and
//! records its id in the report's config block, so every bench result
//! is diffable (`servectl profile diff`) after the fact.
//!
//! Clients are well-behaved: 429s honor the server's `Retry-After` and
//! transport errors reconnect with jittered exponential backoff (see
//! `bench::retry`); retries are reported separately from drops.
//!
//! Latencies are recorded into one lock-free gem5prof-obs histogram
//! shared by every client thread (relaxed atomics, no contention on the
//! hot path); percentiles are histogram quantiles — the same estimate a
//! Prometheus `histogram_quantile` over the server's own request-path
//! histograms would give.

use bench::retry::{request_with_retry, RetryPolicy};
use gem5prof_obs::metrics::duration_buckets;
use gem5prof_obs::HistogramSnapshot;
use gem5prof_served::http::{one_shot, ClientConn};
use gem5prof_served::minjson::{self, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Outcome {
    statuses: BTreeMap<u16, u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--clients N] [--requests M] [--paths P1,P2,…] \
         [--duplicate-fraction F] [--json] [--profile-snapshot]"
    );
    std::process::exit(2);
}

/// splitmix64: the deterministic per-(client, request) coin for
/// `--duplicate-fraction` (same generator the chaos plan uses).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A histogram quantile in whole microseconds.
fn quantile_us(snap: &HistogramSnapshot, q: f64) -> u64 {
    snap.quantile(q).map_or(0, |s| (s * 1e6).round() as u64)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7005".to_string();
    let mut clients: usize = 64;
    let mut requests: usize = 100;
    let mut paths: Vec<String> = vec!["/figures/fig01".into()];
    let mut duplicate_fraction: Option<f64> = None;
    let mut json_out = false;
    let mut profile_snapshot = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--requests" => {
                requests = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--paths" => {
                paths = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|p| {
                        if p.starts_with('/') {
                            p.to_string()
                        } else {
                            format!("/{p}")
                        }
                    })
                    .collect();
                i += 2;
            }
            "--duplicate-fraction" => {
                duplicate_fraction = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|f: &f64| (0.0..=1.0).contains(f))
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--json" => {
                json_out = true;
                i += 1;
            }
            "--profile-snapshot" => {
                profile_snapshot = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    // Warm-up probe: fail fast (and warm the first figure) before
    // unleashing the fleet.
    if let Err(e) = one_shot(&addr, "GET", "/healthz", None, Duration::from_secs(10)) {
        eprintln!("loadgen: server at {addr} unreachable: {e}");
        std::process::exit(3);
    }

    let dropped = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let latency = gem5prof_obs::global().histogram(
        "loadgen_request_seconds",
        "client-observed request latency (connect + request + response)",
        duration_buckets(),
    );
    let start = Instant::now();

    std::thread::scope(|scope| {
        for c in 0..clients {
            let addr = addr.clone();
            let paths = paths.clone();
            let dropped = Arc::clone(&dropped);
            let retried = Arc::clone(&retried);
            let outcomes = Arc::clone(&outcomes);
            let latency = Arc::clone(&latency);
            scope.spawn(move || {
                let mut out = Outcome {
                    statuses: BTreeMap::new(),
                };
                let policy = RetryPolicy {
                    seed: c as u64,
                    ..RetryPolicy::default()
                };
                let mut conn: Option<ClientConn> = None;
                for r in 0..requests {
                    let path = match duplicate_fraction {
                        // Hot-key coin flip, deterministic in (client,
                        // request): heads goes to the shared first path,
                        // tails cycles through the rest (or the whole
                        // list when there is no rest).
                        Some(f) => {
                            let coin =
                                splitmix64(((c as u64) << 32) | r as u64) as f64 / u64::MAX as f64;
                            if coin < f || paths.len() == 1 {
                                &paths[0]
                            } else {
                                &paths[1 + (c + r) % (paths.len() - 1)]
                            }
                        }
                        None => &paths[(c + r) % paths.len()],
                    };
                    let t0 = Instant::now();
                    // Latency covers the whole logical request, retries
                    // and backoff included — what a caller would feel.
                    let attempt = request_with_retry(
                        &mut conn,
                        &addr,
                        "GET",
                        path,
                        None,
                        &policy,
                        ((c as u64) << 32) | r as u64,
                    );
                    retried.fetch_add(attempt.retries as u64, Ordering::Relaxed);
                    match attempt.result {
                        Ok((status, _body)) => {
                            latency.observe_duration(t0.elapsed());
                            *out.statuses.entry(status).or_insert(0) += 1;
                        }
                        Err(_) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                outcomes.lock().unwrap().push(out);
            });
        }
    });
    let wall = start.elapsed();

    let outcomes = std::mem::take(&mut *outcomes.lock().unwrap());
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    for o in &outcomes {
        for (&s, &n) in &o.statuses {
            *statuses.entry(s).or_insert(0) += n;
        }
    }
    let snap = latency.snapshot();
    let completed = snap.count();
    let overflow = snap.overflow();
    let dropped = dropped.load(Ordering::Relaxed);
    let retried = retried.load(Ordering::Relaxed);
    let rps = completed as f64 / wall.as_secs_f64();
    let (p50, p90, p95, p99) = (
        quantile_us(&snap, 0.50),
        quantile_us(&snap, 0.90),
        quantile_us(&snap, 0.95),
        quantile_us(&snap, 0.99),
    );

    // Server-side view: result-cache hit rate at steady state.
    let hit_rate = one_shot(&addr, "GET", "/stats", None, Duration::from_secs(10))
        .ok()
        .and_then(|(_, body)| minjson::parse(&body).ok())
        .and_then(|doc| doc.get("result_cache")?.get("hit_rate")?.as_f64());

    // Freeze this run's server-side profile window into the profstore
    // and record the snapshot id as provenance. Null when the daemon
    // has no `--profile-dir` (503) or the capture fails.
    let snapshot_id = if profile_snapshot {
        one_shot(
            &addr,
            "POST",
            "/profile/snapshot?label=loadgen",
            Some(""),
            Duration::from_secs(10),
        )
        .ok()
        .filter(|(status, _)| *status == 200)
        .and_then(|(_, body)| minjson::parse(&body).ok())
        .and_then(|doc| doc.get("id")?.as_f64())
    } else {
        None
    };

    if json_out {
        let status_obj: Vec<(String, Json)> = statuses
            .iter()
            .map(|(s, n)| (s.to_string(), Json::Num(*n as f64)))
            .collect();
        let report = Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("clients", Json::Num(clients as f64)),
                    ("requests_per_client", Json::Num(requests as f64)),
                    ("paths", Json::Arr(paths.iter().map(Json::str).collect())),
                    (
                        "duplicate_fraction",
                        duplicate_fraction.map_or(Json::Null, Json::Num),
                    ),
                    // Provenance: which build produced this number.
                    // `commit` comes from the environment because the
                    // binary can't know its own git state
                    // (scripts/bench_serving.sh exports it); exec tier
                    // and threads resolve from the same env the daemon
                    // under test was started in.
                    (
                        "commit",
                        std::env::var("GEM5PROF_COMMIT").map_or(Json::Null, Json::str),
                    ),
                    ("exec_tier", Json::str(gem5prof::exec_tier().label())),
                    ("threads", Json::Num(gem5prof::threads() as f64)),
                    (
                        "profile_snapshot",
                        snapshot_id.map_or(Json::Null, Json::Num),
                    ),
                ]),
            ),
            ("wall_seconds", Json::Num(wall.as_secs_f64())),
            ("completed", Json::Num(completed as f64)),
            ("dropped_connections", Json::Num(dropped as f64)),
            ("retries", Json::Num(retried as f64)),
            ("throughput_rps", Json::Num(rps)),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::Num(p50 as f64)),
                    ("p90", Json::Num(p90 as f64)),
                    ("p95", Json::Num(p95 as f64)),
                    ("p99", Json::Num(p99 as f64)),
                    // Samples past the last finite bucket bound: if this
                    // is nonzero the percentiles above are floors, not
                    // estimates.
                    ("overflow", Json::Num(overflow as f64)),
                ]),
            ),
            ("responses", Json::Obj(status_obj)),
            (
                "result_cache_hit_rate",
                hit_rate.map_or(Json::Null, Json::Num),
            ),
        ]);
        println!("{}", report.to_string_pretty());
    } else {
        println!(
            "loadgen: {clients} clients × {requests} requests over {:.2}s",
            wall.as_secs_f64()
        );
        println!("  completed:   {completed} ({rps:.0} req/s)");
        println!("  dropped:     {dropped}");
        println!("  retries:     {retried}");
        println!("  latency:     p50 {p50} µs, p90 {p90} µs, p95 {p95} µs, p99 {p99} µs");
        if overflow > 0 {
            println!("  overflow:    {overflow} samples past the last histogram bound");
        }
        for (s, n) in &statuses {
            println!("  status {s}:  {n}");
        }
        if let Some(h) = hit_rate {
            println!("  result-cache hit rate: {:.1}%", 100.0 * h);
        }
        if let Some(id) = snapshot_id {
            println!("  profile snapshot: {}", id as u64);
        }
    }
    std::process::exit(if dropped == 0 { 0 } else { 1 });
}
