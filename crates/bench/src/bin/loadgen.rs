//! `loadgen` — closed-loop load generator for `gem5prof-served`.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--clients N] [--requests M] [--paths P1,P2,…]
//!         [--duplicate-fraction F] [--json] [--profile-snapshot]
//!         [--open-loop --connections N]
//! ```
//!
//! Spawns `N` concurrent clients, each holding one keep-alive
//! connection and issuing `M` requests back-to-back (closed loop: the
//! next request starts when the previous response lands). Clients cycle
//! through the given paths (default `/figures/fig01`), so the default
//! workload is repeated-spec and exercises the server's result cache.
//!
//! `--duplicate-fraction F` switches to a duplicate-heavy mix: each
//! request goes to the first path (the shared hot key) with probability
//! `F`, deterministically in the (client, request) pair, and cycles
//! through the remaining paths otherwise. With `F` near 1 every client
//! hammers one key at once — the workload single-flight coalescing is
//! built for: a coalescing server computes the hot key once, a
//! `--no-coalesce` server once per concurrent duplicate.
//!
//! Reports throughput, latency percentiles (plus the +Inf overflow
//! count, so a saturated histogram is visible instead of silently
//! clamping), a status-code histogram, retries, dropped connections
//! (any transport error that survives its retries), and the
//! server-side result cache hit rate read from `/stats` afterwards.
//! `--json` prints the same report as a JSON object (the format stored
//! in `BENCH_serving.json`). `--profile-snapshot` captures a profstore
//! snapshot (`POST /profile/snapshot?label=loadgen`) after the run and
//! records its id in the report's config block, so every bench result
//! is diffable (`servectl profile diff`) after the fact.
//!
//! Clients are well-behaved: 429s honor the server's `Retry-After` and
//! transport errors reconnect with jittered exponential backoff (see
//! `bench::retry`); retries are reported separately from drops.
//!
//! `--open-loop --connections N` switches to the connection-scaling
//! mode: one thread drives `N` concurrent keep-alive connections
//! through the same readiness loop (`gem5prof_served::poll`) the
//! server core uses, each issuing `--requests` requests. A
//! thread-per-connection generator cannot hold 10 000 sockets; this
//! one can, which is exactly the regime the readiness-core tentpole
//! exists for. The report gains `mode`, `connections`, and
//! `max_established` fields.
//!
//! Latencies are recorded into one lock-free gem5prof-obs histogram
//! shared by every client thread (relaxed atomics, no contention on the
//! hot path); percentiles are histogram quantiles — the same estimate a
//! Prometheus `histogram_quantile` over the server's own request-path
//! histograms would give.

use bench::retry::{request_with_retry, RetryPolicy};
use gem5prof_obs::metrics::duration_buckets;
use gem5prof_obs::HistogramSnapshot;
use gem5prof_served::http::{one_shot, ClientConn};
use gem5prof_served::minjson::{self, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Outcome {
    statuses: BTreeMap<u16, u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--clients N] [--requests M] [--paths P1,P2,…] \
         [--duplicate-fraction F] [--json] [--profile-snapshot] \
         [--open-loop --connections N]"
    );
    std::process::exit(2);
}

/// splitmix64: the deterministic per-(client, request) coin for
/// `--duplicate-fraction` (same generator the chaos plan uses).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A histogram quantile in whole microseconds.
fn quantile_us(snap: &HistogramSnapshot, q: f64) -> u64 {
    snap.quantile(q).map_or(0, |s| (s * 1e6).round() as u64)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7005".to_string();
    let mut clients: usize = 64;
    let mut requests: usize = 100;
    let mut paths: Vec<String> = vec!["/figures/fig01".into()];
    let mut duplicate_fraction: Option<f64> = None;
    let mut json_out = false;
    let mut profile_snapshot = false;
    let mut open_loop = false;
    let mut connections: usize = 1024;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--requests" => {
                requests = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--paths" => {
                paths = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|p| {
                        if p.starts_with('/') {
                            p.to_string()
                        } else {
                            format!("/{p}")
                        }
                    })
                    .collect();
                i += 2;
            }
            "--duplicate-fraction" => {
                duplicate_fraction = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|f: &f64| (0.0..=1.0).contains(f))
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--open-loop" => {
                open_loop = true;
                i += 1;
            }
            "--connections" => {
                connections = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json_out = true;
                i += 1;
            }
            "--profile-snapshot" => {
                profile_snapshot = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    // Warm-up probe: fail fast (and warm the first figure) before
    // unleashing the fleet.
    if let Err(e) = one_shot(&addr, "GET", "/healthz", None, Duration::from_secs(10)) {
        eprintln!("loadgen: server at {addr} unreachable: {e}");
        std::process::exit(3);
    }

    if open_loop {
        run_open_loop(&addr, connections, requests, &paths, json_out);
    }

    let dropped = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    let latency = gem5prof_obs::global().histogram(
        "loadgen_request_seconds",
        "client-observed request latency (connect + request + response)",
        duration_buckets(),
    );
    let start = Instant::now();

    std::thread::scope(|scope| {
        for c in 0..clients {
            let addr = addr.clone();
            let paths = paths.clone();
            let dropped = Arc::clone(&dropped);
            let retried = Arc::clone(&retried);
            let outcomes = Arc::clone(&outcomes);
            let latency = Arc::clone(&latency);
            scope.spawn(move || {
                let mut out = Outcome {
                    statuses: BTreeMap::new(),
                };
                let policy = RetryPolicy {
                    seed: c as u64,
                    ..RetryPolicy::default()
                };
                let mut conn: Option<ClientConn> = None;
                for r in 0..requests {
                    let path = match duplicate_fraction {
                        // Hot-key coin flip, deterministic in (client,
                        // request): heads goes to the shared first path,
                        // tails cycles through the rest (or the whole
                        // list when there is no rest).
                        Some(f) => {
                            let coin =
                                splitmix64(((c as u64) << 32) | r as u64) as f64 / u64::MAX as f64;
                            if coin < f || paths.len() == 1 {
                                &paths[0]
                            } else {
                                &paths[1 + (c + r) % (paths.len() - 1)]
                            }
                        }
                        None => &paths[(c + r) % paths.len()],
                    };
                    let t0 = Instant::now();
                    // Latency covers the whole logical request, retries
                    // and backoff included — what a caller would feel.
                    let attempt = request_with_retry(
                        &mut conn,
                        &addr,
                        "GET",
                        path,
                        None,
                        &policy,
                        ((c as u64) << 32) | r as u64,
                    );
                    retried.fetch_add(attempt.retries as u64, Ordering::Relaxed);
                    match attempt.result {
                        Ok((status, _body)) => {
                            latency.observe_duration(t0.elapsed());
                            *out.statuses.entry(status).or_insert(0) += 1;
                        }
                        Err(_) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                outcomes.lock().unwrap().push(out);
            });
        }
    });
    let wall = start.elapsed();

    let outcomes = std::mem::take(&mut *outcomes.lock().unwrap());
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    for o in &outcomes {
        for (&s, &n) in &o.statuses {
            *statuses.entry(s).or_insert(0) += n;
        }
    }
    let snap = latency.snapshot();
    let completed = snap.count();
    let overflow = snap.overflow();
    let dropped = dropped.load(Ordering::Relaxed);
    let retried = retried.load(Ordering::Relaxed);
    let rps = completed as f64 / wall.as_secs_f64();
    let (p50, p90, p95, p99) = (
        quantile_us(&snap, 0.50),
        quantile_us(&snap, 0.90),
        quantile_us(&snap, 0.95),
        quantile_us(&snap, 0.99),
    );

    // Server-side view: result-cache hit rate at steady state.
    let hit_rate = one_shot(&addr, "GET", "/stats", None, Duration::from_secs(10))
        .ok()
        .and_then(|(_, body)| minjson::parse(&body).ok())
        .and_then(|doc| doc.get("result_cache")?.get("hit_rate")?.as_f64());

    // Freeze this run's server-side profile window into the profstore
    // and record the snapshot id as provenance. Null when the daemon
    // has no `--profile-dir` (503) or the capture fails.
    let snapshot_id = if profile_snapshot {
        one_shot(
            &addr,
            "POST",
            "/profile/snapshot?label=loadgen",
            Some(""),
            Duration::from_secs(10),
        )
        .ok()
        .filter(|(status, _)| *status == 200)
        .and_then(|(_, body)| minjson::parse(&body).ok())
        .and_then(|doc| doc.get("id")?.as_f64())
    } else {
        None
    };

    if json_out {
        let status_obj: Vec<(String, Json)> = statuses
            .iter()
            .map(|(s, n)| (s.to_string(), Json::Num(*n as f64)))
            .collect();
        let report = Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("clients", Json::Num(clients as f64)),
                    ("requests_per_client", Json::Num(requests as f64)),
                    ("paths", Json::Arr(paths.iter().map(Json::str).collect())),
                    (
                        "duplicate_fraction",
                        duplicate_fraction.map_or(Json::Null, Json::Num),
                    ),
                    // Provenance: which build produced this number.
                    // `commit` comes from the environment because the
                    // binary can't know its own git state
                    // (scripts/bench_serving.sh exports it); exec tier
                    // and threads resolve from the same env the daemon
                    // under test was started in.
                    (
                        "commit",
                        std::env::var("GEM5PROF_COMMIT").map_or(Json::Null, Json::str),
                    ),
                    ("exec_tier", Json::str(gem5prof::exec_tier().label())),
                    ("threads", Json::Num(gem5prof::threads() as f64)),
                    (
                        "profile_snapshot",
                        snapshot_id.map_or(Json::Null, Json::Num),
                    ),
                ]),
            ),
            ("wall_seconds", Json::Num(wall.as_secs_f64())),
            ("completed", Json::Num(completed as f64)),
            ("dropped_connections", Json::Num(dropped as f64)),
            ("retries", Json::Num(retried as f64)),
            ("throughput_rps", Json::Num(rps)),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::Num(p50 as f64)),
                    ("p90", Json::Num(p90 as f64)),
                    ("p95", Json::Num(p95 as f64)),
                    ("p99", Json::Num(p99 as f64)),
                    // Samples past the last finite bucket bound: if this
                    // is nonzero the percentiles above are floors, not
                    // estimates.
                    ("overflow", Json::Num(overflow as f64)),
                ]),
            ),
            ("responses", Json::Obj(status_obj)),
            (
                "result_cache_hit_rate",
                hit_rate.map_or(Json::Null, Json::Num),
            ),
        ]);
        println!("{}", report.to_string_pretty());
    } else {
        println!(
            "loadgen: {clients} clients × {requests} requests over {:.2}s",
            wall.as_secs_f64()
        );
        println!("  completed:   {completed} ({rps:.0} req/s)");
        println!("  dropped:     {dropped}");
        println!("  retries:     {retried}");
        println!("  latency:     p50 {p50} µs, p90 {p90} µs, p95 {p95} µs, p99 {p99} µs");
        if overflow > 0 {
            println!("  overflow:    {overflow} samples past the last histogram bound");
        }
        for (s, n) in &statuses {
            println!("  status {s}:  {n}");
        }
        if let Some(h) = hit_rate {
            println!("  result-cache hit rate: {:.1}%", 100.0 * h);
        }
        if let Some(id) = snapshot_id {
            println!("  profile snapshot: {}", id as u64);
        }
    }
    std::process::exit(if dropped == 0 { 0 } else { 1 });
}

// ---------------------------------------------------------------------
// Open-loop connection-scaling mode
// ---------------------------------------------------------------------

/// One nonblocking keep-alive client connection in the open-loop
/// fleet, with a minimal HTTP/1.1 response parser (status line +
/// `Content-Length`; every endpoint this mode targets answers with a
/// sized body).
struct OpenConn {
    stream: std::net::TcpStream,
    wbuf: Vec<u8>,
    woff: usize,
    rbuf: Vec<u8>,
    /// When the current in-flight request was queued.
    t0: Instant,
    sent: usize,
    done: usize,
    /// The poller interest last registered, to skip no-op `modify`s.
    want_write: bool,
}

/// Extracts `(status, total_response_len)` once a full head is
/// buffered; `None` until then.
fn parse_response_head(rbuf: &[u8]) -> Option<(u16, usize)> {
    let head_end = rbuf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&rbuf[..head_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let body_len = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    Some((status, head_end + 4 + body_len))
}

/// Drives `connections` concurrent keep-alive connections from this
/// one thread with the server's own readiness loop: connect in waves,
/// keep exactly one request in flight per connection until each has
/// completed `requests`, record latency per response. Exits the
/// process with the report.
fn run_open_loop(
    addr: &str,
    connections: usize,
    requests: usize,
    paths: &[String],
    json_out: bool,
) -> ! {
    use gem5prof_served::poll::{self, Event, Poller};
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    const WAVE: usize = 256;
    /// Whole-run safety valve: anything still unfinished by then is a
    /// dropped connection, not a hang.
    const RUN_DEADLINE: Duration = Duration::from_secs(120);

    let mut poller = Poller::new().unwrap_or_else(|e| {
        eprintln!("loadgen: cannot create poller: {e}");
        std::process::exit(3);
    });
    let latency = gem5prof_obs::global().histogram(
        "loadgen_open_loop_request_seconds",
        "client-observed request latency in open-loop mode",
        duration_buckets(),
    );
    let mut conns: Vec<Option<OpenConn>> = Vec::with_capacity(connections);
    // Finished connections are parked open, not closed: the
    // `max_established` this mode reports means sockets that were
    // genuinely concurrent, which is the whole point of the run.
    let mut parked: Vec<std::net::TcpStream> = Vec::new();
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut dropped: u64 = 0;
    let mut open: usize = 0;
    let mut max_established: usize = 0;
    let mut active: usize = 0;
    let start = Instant::now();

    let request_bytes = |idx: usize, r: usize| -> Vec<u8> {
        let path = &paths[(idx + r) % paths.len()];
        format!("GET {path} HTTP/1.1\r\nhost: gem5prof\r\n\r\n").into_bytes()
    };

    // Queue the next request on `c` (or retire the connection), then
    // flush as much as the socket accepts right now.
    fn pump_write(c: &mut OpenConn) -> std::io::Result<()> {
        while c.woff < c.wbuf.len() {
            match c.stream.write(&c.wbuf[c.woff..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => c.woff += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if c.woff == c.wbuf.len() {
            c.wbuf.clear();
            c.woff = 0;
        }
        Ok(())
    }

    // Connect in waves, pumping the poller between waves so early
    // connections make progress (and don't idle out) while late ones
    // are still dialing.
    let mut events: Vec<Event> = Vec::new();
    let mut next_wave = 0usize;
    loop {
        // Dial the next wave.
        let wave_end = (next_wave + WAVE).min(connections);
        for idx in next_wave..wave_end {
            match std::net::TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = poll::set_nonblocking(stream.as_raw_fd());
                    let mut c = OpenConn {
                        stream,
                        wbuf: request_bytes(idx, 0),
                        woff: 0,
                        rbuf: Vec::new(),
                        t0: Instant::now(),
                        sent: 1,
                        done: 0,
                        want_write: false,
                    };
                    let flushed = pump_write(&mut c).is_ok();
                    c.want_write = !c.wbuf.is_empty();
                    if !flushed
                        || poller
                            .add(c.stream.as_raw_fd(), idx as u64, true, c.want_write)
                            .is_err()
                    {
                        dropped += 1;
                        conns.push(None);
                        continue;
                    }
                    open += 1;
                    active += 1;
                    max_established = max_established.max(open);
                    conns.push(Some(c));
                }
                Err(_) => {
                    dropped += 1;
                    conns.push(None);
                }
            }
        }
        next_wave = wave_end;

        if active == 0 && next_wave >= connections {
            break;
        }
        if start.elapsed() > RUN_DEADLINE {
            dropped += active as u64;
            break;
        }

        // One poller pass: short wait while still dialing, longer once
        // every connection is up.
        let wait = if next_wave < connections {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(100)
        };
        if poller.wait(&mut events, Some(wait)).is_err() {
            break;
        }
        for ev in events.drain(..) {
            let idx = ev.token as usize;
            let Some(slot) = conns.get_mut(idx) else {
                continue;
            };
            let mut dead = ev.error && !ev.readable;
            let mut retired = false;
            {
                let Some(c) = slot.as_mut() else { continue };
                if !dead && ev.writable && pump_write(c).is_err() {
                    dead = true;
                }
                if !dead && ev.readable {
                    let mut buf = [0u8; 16 * 1024];
                    loop {
                        match c.stream.read(&mut buf) {
                            Ok(0) => {
                                dead = true;
                                break;
                            }
                            Ok(n) => {
                                c.rbuf.extend_from_slice(&buf[..n]);
                                // Peel off complete responses; several
                                // can land in one readable burst.
                                while let Some((status, total)) = parse_response_head(&c.rbuf) {
                                    if c.rbuf.len() < total {
                                        break;
                                    }
                                    c.rbuf.drain(..total);
                                    latency.observe_duration(c.t0.elapsed());
                                    *statuses.entry(status).or_insert(0) += 1;
                                    c.done += 1;
                                    if c.done < requests {
                                        c.wbuf = request_bytes(idx, c.sent);
                                        c.woff = 0;
                                        c.sent += 1;
                                        c.t0 = Instant::now();
                                        if pump_write(c).is_err() {
                                            dead = true;
                                        }
                                    } else {
                                        // Finished cleanly: retire.
                                        retired = true;
                                        break;
                                    }
                                }
                                if retired || dead {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                }
                if !dead && !retired {
                    let want_write = !c.wbuf.is_empty();
                    if want_write != c.want_write {
                        c.want_write = want_write;
                        let _ = poller.modify(c.stream.as_raw_fd(), idx as u64, true, want_write);
                    }
                }
            }
            if retired || dead {
                let c = slot.take().expect("slot still occupied");
                let _ = poller.delete(c.stream.as_raw_fd());
                active -= 1;
                if dead {
                    // A connection that dies mid-run is a drop unless
                    // it already delivered everything we asked of it.
                    if c.done < requests {
                        dropped += 1;
                    }
                    open -= 1;
                } else {
                    parked.push(c.stream);
                }
            }
        }
    }
    let wall = start.elapsed();

    let snap = latency.snapshot();
    let completed = snap.count();
    let rps = completed as f64 / wall.as_secs_f64();
    let (p50, p90, p95, p99) = (
        quantile_us(&snap, 0.50),
        quantile_us(&snap, 0.90),
        quantile_us(&snap, 0.95),
        quantile_us(&snap, 0.99),
    );

    if json_out {
        let status_obj: Vec<(String, Json)> = statuses
            .iter()
            .map(|(s, n)| (s.to_string(), Json::Num(*n as f64)))
            .collect();
        let report = Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("mode", Json::str("open_loop")),
                    ("connections", Json::Num(connections as f64)),
                    ("requests_per_connection", Json::Num(requests as f64)),
                    ("paths", Json::Arr(paths.iter().map(Json::str).collect())),
                    (
                        "commit",
                        std::env::var("GEM5PROF_COMMIT").map_or(Json::Null, Json::str),
                    ),
                ]),
            ),
            ("wall_seconds", Json::Num(wall.as_secs_f64())),
            ("max_established", Json::Num(max_established as f64)),
            ("completed", Json::Num(completed as f64)),
            ("dropped_connections", Json::Num(dropped as f64)),
            ("throughput_rps", Json::Num(rps)),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::Num(p50 as f64)),
                    ("p90", Json::Num(p90 as f64)),
                    ("p95", Json::Num(p95 as f64)),
                    ("p99", Json::Num(p99 as f64)),
                    ("overflow", Json::Num(snap.overflow() as f64)),
                ]),
            ),
            ("responses", Json::Obj(status_obj)),
        ]);
        println!("{}", report.to_string_pretty());
    } else {
        println!(
            "loadgen (open loop): {connections} connections × {requests} requests over {:.2}s",
            wall.as_secs_f64()
        );
        println!("  max established: {max_established}");
        println!("  completed:   {completed} ({rps:.0} req/s)");
        println!("  dropped:     {dropped}");
        println!("  latency:     p50 {p50} µs, p90 {p90} µs, p95 {p95} µs, p99 {p99} µs");
        for (s, n) in &statuses {
            println!("  status {s}:  {n}");
        }
    }
    std::process::exit(if dropped == 0 { 0 } else { 1 });
}
