//! `microbench` — guest-MIPS table for the microbenchmark suite.
//!
//! Runs every microbenchmark variant under the Atomic and Timing CPU
//! models, in both execution tiers, asserting the tiers produce
//! identical results and that each run deposits its expected guest
//! checksum. Reports guest MIPS per cell (a pure guest-time metric, so
//! it is deterministic) plus per-tier host wall seconds.
//!
//! ```text
//! microbench [--json] [--scale test|simsmall|simmedium]
//! ```
//!
//! `--json` emits a machine-readable summary on stdout (consumed by
//! `scripts/bench_serving.sh` to refresh the `microbench` section of
//! `BENCH_serving.json`); the human-readable table always goes to
//! stderr. Commit provenance comes from `GEM5PROF_COMMIT` when set.

use gem5sim::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use gem5sim::system::{SimResult, System};
use gem5sim_workloads::{Microbench, Scale, Workload};
use std::time::Instant;

const MODELS: [CpuModel; 2] = [CpuModel::Atomic, CpuModel::Timing];

struct Cell {
    variant: &'static str,
    cpu: &'static str,
    insts: u64,
    guest_mips: f64,
    checksum: u64,
    interp_s: f64,
    block_s: f64,
}

fn run_tier(m: Microbench, scale: Scale, model: CpuModel, tier: ExecTier) -> (f64, SimResult) {
    let cfg = SystemConfig::new(model, SimMode::Se).with_exec_tier(tier);
    let mut sys = System::new(cfg, Workload::Micro(m).program(scale));
    let start = Instant::now();
    let r = sys.run();
    (start.elapsed().as_secs_f64(), r)
}

fn main() {
    let mut json = false;
    let mut scale = Scale::Test;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => json = true,
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("simsmall") => Scale::SimSmall,
                    Some("simmedium") => Scale::SimMedium,
                    _ => {
                        eprintln!("usage: microbench [--json] [--scale S]");
                        std::process::exit(2);
                    }
                };
            }
            _ => {
                eprintln!("usage: microbench [--json] [--scale S]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let scale_name = match scale {
        Scale::Test => "test",
        Scale::SimSmall => "simsmall",
        Scale::SimMedium => "simmedium",
    };
    let commit = std::env::var("GEM5PROF_COMMIT").unwrap_or_else(|_| "unknown".into());
    eprintln!("microbench guest-MIPS: scale={scale_name}, commit={commit}");

    let mut ok = true;
    let mut cells = Vec::new();
    for m in Microbench::ALL {
        for model in MODELS {
            let (interp_s, ri) = run_tier(m, scale, model, ExecTier::Interp);
            let (block_s, rb) = run_tier(m, scale, model, ExecTier::Block);
            if ri != rb {
                eprintln!("error: {m}/{} tiers diverged", model.label());
                ok = false;
            }
            let expected = m.expected_checksum(scale);
            let got = rb.guest_checksums.first().copied().unwrap_or(0);
            if got != expected {
                eprintln!(
                    "error: {m}/{} checksum {got:#x} != expected {expected:#x}",
                    model.label()
                );
                ok = false;
            }
            let cell = Cell {
                variant: m.name(),
                cpu: model.label(),
                insts: rb.committed_insts,
                guest_mips: rb.committed_insts as f64 / rb.sim_seconds() / 1e6,
                checksum: got,
                interp_s,
                block_s,
            };
            eprintln!(
                "  {:<13} {:<7} {:>9} insts  {:>9.1} guest-MIPS  chk {:#018x}  interp {:>7.4}s  block {:>7.4}s",
                cell.variant, cell.cpu, cell.insts, cell.guest_mips, cell.checksum,
                cell.interp_s, cell.block_s
            );
            cells.push(cell);
        }
    }

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"commit\": \"{commit}\",\n"));
        out.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
        out.push_str("  \"tiers\": [\"interp\", \"block\"],\n");
        out.push_str("  \"runs\": [\n");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"variant\": \"{}\", \"cpu\": \"{}\", \"insts\": {}, \
                 \"guest_mips\": {:.3}, \"checksum\": \"{:#018x}\", \
                 \"interp_seconds\": {:.6}, \"block_seconds\": {:.6}}}{}\n",
                c.variant,
                c.cpu,
                c.insts,
                c.guest_mips,
                c.checksum,
                c.interp_s,
                c.block_s,
                if i + 1 == cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"all_verified\": {ok}\n"));
        out.push('}');
        println!("{out}");
    }

    if !ok {
        eprintln!("error: microbench verification failed");
        std::process::exit(1);
    }
}
