//! `servectl` — query one endpoint of a running `gem5prof-served` and
//! pretty-print the JSON response.
//!
//! ```text
//! servectl [--addr HOST:PORT] [--timeout-ms N] [--post BODY] PATH
//!
//! servectl healthz
//! servectl stats
//! servectl figures/fig01
//! servectl --post '{"platform":"m1_pro","workload":"dedup","cpu":"o3"}' experiments
//! ```
//!
//! A leading `/` on PATH is optional. Exits 0 on a 2xx response, 1 on an
//! HTTP error status, 2 on usage errors, 3 on connection failure —
//! which makes it usable as a smoke test (`scripts/verify.sh`).
//!
//! The request rides the shared retry policy (`bench::retry`): 429s
//! honor `Retry-After`, connect refusal backs off exponentially — so a
//! daemon still binding its port, or momentarily saturated, does not
//! flake the smoke test.

use bench::retry::{request_with_retry, RetryPolicy};
use gem5prof_served::minjson;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: servectl [--addr HOST:PORT] [--timeout-ms N] [--post BODY] PATH");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7005".to_string();
    let mut timeout = Duration::from_secs(30);
    let mut body: Option<String> = None;
    let mut path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--timeout-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                timeout = Duration::from_millis(ms);
                i += 2;
            }
            "--post" => {
                body = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") && path.is_none() => {
                path = Some(p.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let path = if path.starts_with('/') {
        path
    } else {
        format!("/{path}")
    };
    let method = if body.is_some() { "POST" } else { "GET" };

    let policy = RetryPolicy {
        max_retries: 3,
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
        seed: 0,
        timeout,
    };
    let mut conn = None;
    let attempt = request_with_retry(&mut conn, &addr, method, &path, body.as_deref(), &policy, 0);
    if attempt.retries > 0 {
        eprintln!("servectl: {} retries before an answer", attempt.retries);
    }
    match attempt.result {
        Ok((status, body)) => {
            eprintln!("{method} {path} → {status}");
            match minjson::parse(&body) {
                Ok(doc) => println!("{}", doc.to_string_pretty()),
                Err(_) => println!("{body}"),
            }
            std::process::exit(if (200..300).contains(&status) { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("servectl: {method} http://{addr}{path} failed: {e}");
            std::process::exit(3);
        }
    }
}
