//! `servectl` — query one endpoint of a running `gem5prof-served` (or
//! cluster router) and pretty-print the JSON response, plus cluster
//! orchestration.
//!
//! ```text
//! servectl [--addr HOST:PORT] [--timeout-ms N] [--post BODY] PATH
//! servectl cluster spawn N [--addr HOST:PORT] [--cache-dir PATH] [--port-file PATH]
//! servectl cluster status [--addr HOST:PORT]
//! servectl cluster drain  [--addr HOST:PORT]
//! servectl profile history                    (snapshot index)
//! servectl profile snapshot [LABEL]           (capture a window)
//! servectl profile diff [A] [B]               (diff + regression gate; exit 4 on gate failure)
//! servectl profile bless [ID]                 (mark the baseline)
//!
//! servectl healthz
//! servectl stats
//! servectl figures/fig01
//! servectl --post '{"platform":"m1_pro","workload":"dedup","cpu":"o3"}' experiments
//! ```
//!
//! A leading `/` on PATH is optional. Exits 0 on a 2xx response, 1 on an
//! HTTP error status, 2 on usage errors, 3 on connection failure —
//! which makes it usable as a smoke test (`scripts/verify.sh`).
//!
//! `profile diff` adds exit code 4: the HTTP exchange succeeded but the
//! hot-span regression gate reported `pass: false`. `A`/`B` default to
//! `blessed`/`latest`, so a bare `servectl profile diff` is the
//! regression gate against the blessed baseline.
//!
//! `cluster spawn N` launches a detached `gem5prof-cluster --spawn N`
//! (found next to this binary): N daemons plus the router, as one
//! process tree. `cluster status` pretty-prints `GET /cluster` from the
//! router; `cluster drain` posts `/drain`, which the router's process
//! observes and turns into a graceful fleet-wide shutdown.
//!
//! The request rides the shared retry policy (`bench::retry`): 429s
//! honor `Retry-After`, connect refusal backs off exponentially — so a
//! daemon still binding its port, or momentarily saturated, does not
//! flake the smoke test.

use bench::retry::{request_with_retry, RetryPolicy};
use gem5prof_served::minjson;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: servectl [--addr HOST:PORT] [--timeout-ms N] [--post BODY] PATH\n\
         \x20      servectl cluster spawn N [--addr HOST:PORT] [--cache-dir PATH] [--port-file PATH]\n\
         \x20      servectl cluster status|drain [--addr HOST:PORT]\n\
         \x20      servectl profile history|snapshot [LABEL]|diff [A] [B]|bless [ID] [--addr HOST:PORT]"
    );
    std::process::exit(2);
}

/// Launches a detached `gem5prof-cluster --spawn N` process tree.
fn cluster_spawn(n: usize, addr: &str, cache_dir: Option<&str>, port_file: Option<&str>) -> ! {
    let bin = std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("gem5prof-cluster")))
        .filter(|p| p.exists());
    let Some(bin) = bin else {
        eprintln!("servectl: cannot find gem5prof-cluster next to this binary");
        std::process::exit(3);
    };
    let mut cmd = std::process::Command::new(&bin);
    cmd.arg("--spawn")
        .arg(n.to_string())
        .arg("--addr")
        .arg(addr);
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    if let Some(path) = port_file {
        cmd.arg("--port-file").arg(path);
    }
    match cmd.spawn() {
        Ok(child) => {
            // The child outlives servectl (dropping a Child does not
            // kill it); `cluster drain` or SIGTERM stops it later.
            println!(
                "servectl: spawned gem5prof-cluster (pid {}) with {n} nodes on {addr}",
                child.id()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("servectl: cannot spawn {}: {e}", bin.display());
            std::process::exit(3);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut timeout = Duration::from_secs(30);
    let mut body: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let mut step = 2;
        match args[i].as_str() {
            "--addr" => addr = Some(value(i)),
            "--timeout-ms" => {
                let ms: u64 = value(i).parse().unwrap_or_else(|_| usage());
                timeout = Duration::from_millis(ms);
            }
            "--post" => body = Some(value(i)),
            "--cache-dir" => cache_dir = Some(value(i)),
            "--port-file" => port_file = Some(value(i)),
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") => {
                positionals.push(p.to_string());
                step = 1;
            }
            _ => usage(),
        }
        i += step;
    }

    // `profile diff` succeeds as an HTTP exchange even when the gate
    // fails; the gate verdict surfaces as exit code 4 instead.
    let mut gate_check = false;
    let path = match positionals.first().map(String::as_str) {
        Some("profile") if positionals.len() >= 2 => {
            match positionals.get(1).map(String::as_str) {
                Some("history") if positionals.len() == 2 => "/profile/history".to_string(),
                Some("snapshot") if positionals.len() <= 3 => {
                    let label = positionals.get(2).map_or("manual", String::as_str);
                    body = Some(String::new()); // POST
                    format!("/profile/snapshot?label={label}")
                }
                Some("diff") if positionals.len() <= 4 => {
                    let a = positionals.get(2).map_or("blessed", String::as_str);
                    let b = positionals.get(3).map_or("latest", String::as_str);
                    gate_check = true;
                    format!("/profile/diff?a={a}&b={b}")
                }
                Some("bless") if positionals.len() <= 3 => {
                    let id = positionals.get(2).map_or("latest", String::as_str);
                    body = Some(String::new()); // POST
                    format!("/profile/bless?id={id}")
                }
                _ => usage(),
            }
        }
        Some("cluster") => match positionals.get(1).map(String::as_str) {
            Some("spawn") => {
                let n: usize = positionals
                    .get(2)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                cluster_spawn(
                    n,
                    addr.as_deref().unwrap_or("127.0.0.1:7100"),
                    cache_dir.as_deref(),
                    port_file.as_deref(),
                );
            }
            Some("status") if positionals.len() == 2 => "/cluster".to_string(),
            Some("drain") if positionals.len() == 2 => {
                body = Some(String::new()); // POST
                "/drain".to_string()
            }
            _ => usage(),
        },
        Some(p) if positionals.len() == 1 => {
            if p.starts_with('/') {
                p.to_string()
            } else {
                format!("/{p}")
            }
        }
        _ => usage(),
    };
    let addr = addr.unwrap_or_else(|| "127.0.0.1:7005".to_string());
    let method = if body.is_some() { "POST" } else { "GET" };

    let policy = RetryPolicy {
        max_retries: 3,
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
        seed: 0,
        timeout,
    };
    let mut conn = None;
    let attempt = request_with_retry(&mut conn, &addr, method, &path, body.as_deref(), &policy, 0);
    if attempt.retries > 0 {
        eprintln!("servectl: {} retries before an answer", attempt.retries);
    }
    match attempt.result {
        Ok((status, body)) => {
            eprintln!("{method} {path} → {status}");
            match minjson::parse(&body) {
                Ok(doc) => println!("{}", doc.to_string_pretty()),
                Err(_) => println!("{body}"),
            }
            if !(200..300).contains(&status) {
                std::process::exit(1);
            }
            if gate_check {
                let pass = minjson::parse(&body)
                    .ok()
                    .and_then(|doc| doc.get("gate")?.get("pass")?.as_bool())
                    .unwrap_or(true);
                if !pass {
                    eprintln!("servectl: hot-span regression gate FAILED");
                    std::process::exit(4);
                }
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("servectl: {method} http://{addr}{path} failed: {e}");
            std::process::exit(3);
        }
    }
}
