//! `servectl` — query one endpoint of a running `gem5prof-served` (or
//! cluster router) and pretty-print the JSON response, plus cluster
//! orchestration.
//!
//! ```text
//! servectl [--addr HOST:PORT] [--timeout-ms N] [--post BODY] PATH
//! servectl cluster spawn N [--addr HOST:PORT] [--cache-dir PATH] [--port-file PATH]
//! servectl cluster status [--addr HOST:PORT]
//! servectl cluster drain  [--addr HOST:PORT]
//!
//! servectl healthz
//! servectl stats
//! servectl figures/fig01
//! servectl --post '{"platform":"m1_pro","workload":"dedup","cpu":"o3"}' experiments
//! ```
//!
//! A leading `/` on PATH is optional. Exits 0 on a 2xx response, 1 on an
//! HTTP error status, 2 on usage errors, 3 on connection failure —
//! which makes it usable as a smoke test (`scripts/verify.sh`).
//!
//! `cluster spawn N` launches a detached `gem5prof-cluster --spawn N`
//! (found next to this binary): N daemons plus the router, as one
//! process tree. `cluster status` pretty-prints `GET /cluster` from the
//! router; `cluster drain` posts `/drain`, which the router's process
//! observes and turns into a graceful fleet-wide shutdown.
//!
//! The request rides the shared retry policy (`bench::retry`): 429s
//! honor `Retry-After`, connect refusal backs off exponentially — so a
//! daemon still binding its port, or momentarily saturated, does not
//! flake the smoke test.

use bench::retry::{request_with_retry, RetryPolicy};
use gem5prof_served::minjson;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: servectl [--addr HOST:PORT] [--timeout-ms N] [--post BODY] PATH\n\
         \x20      servectl cluster spawn N [--addr HOST:PORT] [--cache-dir PATH] [--port-file PATH]\n\
         \x20      servectl cluster status|drain [--addr HOST:PORT]"
    );
    std::process::exit(2);
}

/// Launches a detached `gem5prof-cluster --spawn N` process tree.
fn cluster_spawn(n: usize, addr: &str, cache_dir: Option<&str>, port_file: Option<&str>) -> ! {
    let bin = std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("gem5prof-cluster")))
        .filter(|p| p.exists());
    let Some(bin) = bin else {
        eprintln!("servectl: cannot find gem5prof-cluster next to this binary");
        std::process::exit(3);
    };
    let mut cmd = std::process::Command::new(&bin);
    cmd.arg("--spawn")
        .arg(n.to_string())
        .arg("--addr")
        .arg(addr);
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    if let Some(path) = port_file {
        cmd.arg("--port-file").arg(path);
    }
    match cmd.spawn() {
        Ok(child) => {
            // The child outlives servectl (dropping a Child does not
            // kill it); `cluster drain` or SIGTERM stops it later.
            println!(
                "servectl: spawned gem5prof-cluster (pid {}) with {n} nodes on {addr}",
                child.id()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("servectl: cannot spawn {}: {e}", bin.display());
            std::process::exit(3);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut timeout = Duration::from_secs(30);
    let mut body: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let mut step = 2;
        match args[i].as_str() {
            "--addr" => addr = Some(value(i)),
            "--timeout-ms" => {
                let ms: u64 = value(i).parse().unwrap_or_else(|_| usage());
                timeout = Duration::from_millis(ms);
            }
            "--post" => body = Some(value(i)),
            "--cache-dir" => cache_dir = Some(value(i)),
            "--port-file" => port_file = Some(value(i)),
            "--help" | "-h" => usage(),
            p if !p.starts_with("--") => {
                positionals.push(p.to_string());
                step = 1;
            }
            _ => usage(),
        }
        i += step;
    }

    let path = match positionals.first().map(String::as_str) {
        Some("cluster") => match positionals.get(1).map(String::as_str) {
            Some("spawn") => {
                let n: usize = positionals
                    .get(2)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                cluster_spawn(
                    n,
                    addr.as_deref().unwrap_or("127.0.0.1:7100"),
                    cache_dir.as_deref(),
                    port_file.as_deref(),
                );
            }
            Some("status") if positionals.len() == 2 => "/cluster".to_string(),
            Some("drain") if positionals.len() == 2 => {
                body = Some(String::new()); // POST
                "/drain".to_string()
            }
            _ => usage(),
        },
        Some(p) if positionals.len() == 1 => {
            if p.starts_with('/') {
                p.to_string()
            } else {
                format!("/{p}")
            }
        }
        _ => usage(),
    };
    let addr = addr.unwrap_or_else(|| "127.0.0.1:7005".to_string());
    let method = if body.is_some() { "POST" } else { "GET" };

    let policy = RetryPolicy {
        max_retries: 3,
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
        seed: 0,
        timeout,
    };
    let mut conn = None;
    let attempt = request_with_retry(&mut conn, &addr, method, &path, body.as_deref(), &policy, 0);
    if attempt.retries > 0 {
        eprintln!("servectl: {} retries before an answer", attempt.retries);
    }
    match attempt.result {
        Ok((status, body)) => {
            eprintln!("{method} {path} → {status}");
            match minjson::parse(&body) {
                Ok(doc) => println!("{}", doc.to_string_pretty()),
                Err(_) => println!("{body}"),
            }
            std::process::exit(if (200..300).contains(&status) { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("servectl: {method} http://{addr}{path} failed: {e}");
            std::process::exit(3);
        }
    }
}
