//! `exec_tier_bench` — cold-compute wall-clock comparison of the interp
//! and block execution tiers on the bare simulation engine.
//!
//! Runs each (workload, CPU model) cell under both tiers with no
//! observer attached — the configuration where per-instruction event
//! scheduling dominates host time — asserts the two tiers produce
//! identical [`SimResult`]s, and reports per-cell and geomean speedups.
//!
//! ```text
//! exec_tier_bench [--json] [--scale test|simsmall|simmedium] [--reps N]
//! ```
//!
//! `--json` emits a machine-readable summary on stdout (consumed by
//! `scripts/bench_serving.sh` to refresh `BENCH_serving.json`); the
//! human-readable table always goes to stderr.

use gem5sim::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use gem5sim::system::{SimResult, System};
use gem5sim_workloads::{Scale, Workload};
use std::time::Instant;

const WORKLOADS: [Workload; 3] = [Workload::WaterNsquared, Workload::Canneal, Workload::Dedup];
const MODELS: [CpuModel; 2] = [CpuModel::Atomic, CpuModel::Timing];

struct Cell {
    workload: &'static str,
    cpu: &'static str,
    insts: u64,
    interp_s: f64,
    block_s: f64,
    identical: bool,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.interp_s / self.block_s
    }
}

/// Best-of-`reps` wall time for one tier (best-of defeats host noise;
/// results are checked on every rep).
fn time_tier(
    w: Workload,
    scale: Scale,
    model: CpuModel,
    tier: ExecTier,
    reps: u32,
) -> (f64, SimResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let cfg = SystemConfig::new(model, SimMode::Se).with_exec_tier(tier);
        let mut sys = System::new(cfg, w.program(scale));
        let start = Instant::now();
        let r = sys.run();
        best = best.min(start.elapsed().as_secs_f64());
        if let Some(prev) = &result {
            assert_eq!(prev, &r, "{w}/{model:?}/{tier:?}: nondeterministic run");
        }
        result = Some(r);
    }
    (best, result.expect("reps >= 1"))
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

fn main() {
    let mut json = false;
    let mut scale = Scale::SimMedium;
    let mut reps: u32 = 3;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => json = true,
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("simsmall") => Scale::SimSmall,
                    Some("simmedium") => Scale::SimMedium,
                    _ => {
                        eprintln!("usage: exec_tier_bench [--json] [--scale S] [--reps N]");
                        std::process::exit(2);
                    }
                };
            }
            "--reps" => {
                i += 1;
                reps = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--reps wants a positive integer");
                        std::process::exit(2);
                    });
            }
            _ => {
                eprintln!("usage: exec_tier_bench [--json] [--scale S] [--reps N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scale_name = match scale {
        Scale::Test => "test",
        Scale::SimSmall => "simsmall",
        Scale::SimMedium => "simmedium",
    };
    eprintln!(
        "exec-tier bench: scale={scale_name}, best of {reps} reps, bare engine (no observer)"
    );

    let mut cells = Vec::new();
    for w in WORKLOADS {
        for model in MODELS {
            let (interp_s, ri) = time_tier(w, scale, model, ExecTier::Interp, reps);
            let (block_s, rb) = time_tier(w, scale, model, ExecTier::Block, reps);
            let identical = ri == rb;
            let cell = Cell {
                workload: w.name(),
                cpu: model.label(),
                insts: rb.committed_insts,
                interp_s,
                block_s,
                identical,
            };
            eprintln!(
                "  {:<16} {:<7} {:>9} insts  interp {:>8.4}s  block {:>8.4}s  speedup {:>5.2}x  {}",
                cell.workload,
                cell.cpu,
                cell.insts,
                cell.interp_s,
                cell.block_s,
                cell.speedup(),
                if identical { "identical" } else { "DIVERGED" }
            );
            cells.push(cell);
        }
    }

    let all_identical = cells.iter().all(|c| c.identical);
    let geo = |label: &str| geomean(cells.iter().filter(|c| c.cpu == label).map(|c| c.speedup()));
    let (geo_atomic, geo_timing) = (geo("ATOMIC"), geo("TIMING"));
    eprintln!("  geomean speedup: ATOMIC {geo_atomic:.2}x, TIMING {geo_timing:.2}x");

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
        out.push_str(&format!("  \"reps\": {reps},\n"));
        out.push_str("  \"runs\": [\n");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"cpu\": \"{}\", \"insts\": {}, \
                 \"interp_seconds\": {:.6}, \"block_seconds\": {:.6}, \
                 \"speedup\": {:.3}, \"identical\": {}}}{}\n",
                c.workload,
                c.cpu,
                c.insts,
                c.interp_s,
                c.block_s,
                c.speedup(),
                c.identical,
                if i + 1 == cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"geomean_speedup_atomic\": {geo_atomic:.3},\n"));
        out.push_str(&format!("  \"geomean_speedup_timing\": {geo_timing:.3},\n"));
        out.push_str(&format!("  \"all_identical\": {all_identical}\n"));
        out.push('}');
        println!("{out}");
    }

    if !all_identical {
        eprintln!("error: tiers diverged — the block tier is broken");
        std::process::exit(1);
    }
}
