//! Chaos soak harness: drive traffic against an in-process,
//! chaos-armed `gem5prof-served` daemon and assert the serving
//! invariants that must survive fault injection.
//!
//! One [`soak_seed`] call is one deterministic episode:
//!
//! 1. arm `gem5prof-chaos` with a seed-derived [`Plan`],
//! 2. start a small server (2 workers, bounded queue) on an ephemeral
//!    port and hammer it with a fixed request mix from N clients,
//! 3. exercise `gem5prof::runner::parallel_map` directly so the
//!    `runner.*` fault points fire too,
//! 4. disarm and probe: workers still compute, caches serve only
//!    well-formed JSON, `/stats` and `/metrics` accounting balances,
//! 5. re-arm and drain gracefully under fault load, with a watchdog.
//!
//! Violations are collected, not panicked, so the `soak` binary can
//! print a one-line reproduction command for the failing seed.

use crate::retry::{self, RetryPolicy};
use gem5prof_chaos::{self as chaos, Plan, PointReport};
use gem5prof_served::cluster::{serve_cluster, ClusterConfig, MemberSpec};
use gem5prof_served::minjson::{self, Json};
use gem5prof_served::{serve, ServeConfig, ServerHandle};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Knobs for one soak episode.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Wall-clock budget per seed (ignored when `requests > 0`).
    pub secs: f64,
    /// Fixed per-client request count; `0` means time-bound. A fixed
    /// count with one client makes the whole episode replayable —
    /// identical per-point injection schedules run to run.
    pub requests: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Base injection probability (delay/panic/poison points run
    /// hotter; see [`plan_for`]).
    pub prob: f64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            secs: 5.0,
            requests: 0,
            clients: 4,
            prob: 0.08,
        }
    }
}

/// What one seed's episode did and whether it held the invariants.
#[derive(Debug)]
pub struct SeedOutcome {
    pub seed: u64,
    /// Logical requests issued across all clients.
    pub issued: u64,
    /// Requests that ended in a status-coded response.
    pub completed: u64,
    /// Requests that exhausted retries on transport errors.
    pub dropped: u64,
    /// Retries consumed (reported separately from drops).
    pub retries: u64,
    /// Status-code histogram of completed requests.
    pub statuses: BTreeMap<u16, u64>,
    /// Per-point chaos accounting for the traffic phase. With one
    /// client and a fixed request count this is fully deterministic in
    /// the seed (except `runner.queue_stall`, whose visit count depends
    /// on thread scheduling).
    pub points: Vec<PointReport>,
    /// Per-point accounting for the drain-under-chaos phase, kept
    /// separate because it races the listener shutdown and is not
    /// replayable.
    pub drain_points: Vec<PointReport>,
    /// Human-readable invariant violations; empty means the seed passed.
    pub violations: Vec<String>,
}

impl SeedOutcome {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn injected(&self) -> u64 {
        self.all_points().map(|p| p.injected).sum()
    }

    pub fn recovered(&self) -> u64 {
        self.all_points().map(|p| p.recovered).sum()
    }

    /// Traffic-phase and drain-phase reports chained.
    pub fn all_points(&self) -> impl Iterator<Item = &PointReport> {
        self.points.iter().chain(&self.drain_points)
    }
}

/// The plan a soak episode arms: every point fires at `prob`, with the
/// rare-visit points (engine jobs, runner items) boosted so a short
/// episode still exercises the panic/poison/delay classes.
pub fn plan_for(seed: u64, prob: f64) -> Plan {
    let hot = (prob * 3.0).min(0.9);
    Plan::new(seed)
        .with_prob(prob)
        .with_point("engine.job_delay", hot)
        .with_point("engine.job_panic", hot)
        .with_point("engine.job_poison", hot)
        .with_point("engine.worker_panic", hot)
        .with_point("engine.leader_panic", hot)
        .with_point("cache.disk_write", hot)
        .with_point("profstore.disk_write", hot)
        .with_point("runner.slow_worker", hot)
        .with_point("runner.queue_stall", hot)
        // Only visited by clustered engines (a peerless node never
        // calls peer_fetch), so single-node episodes are unchanged.
        .with_point("cluster.peer_fetch", hot)
}

/// The request mix each client cycles through: cheap inline routes,
/// cacheable compute routes, and deliberate 4xx probes. `/figures/figNN`
/// renders are excluded — a cold paper-fidelity figure can take minutes
/// and would turn the soak into a figure benchmark.
const MIX: &[(&str, &str, Option<&str>)] = &[
    ("GET", "/healthz", None),
    ("GET", "/tables/table1", None),
    (
        "POST",
        "/experiments",
        Some(r#"{"platform":"intel_xeon","workload":"dedup","cpu":"atomic"}"#),
    ),
    ("GET", "/stats", None),
    ("GET", "/tables/table2", None),
    (
        "POST",
        "/experiments",
        Some(r#"{"platform":"m1_pro","workload":"dedup","cpu":"atomic"}"#),
    ),
    ("GET", "/metrics", None),
    ("GET", "/figures/fig99", None),            // 404: unknown figure
    ("POST", "/experiments", Some("not json")), // 400
    ("GET", "/tables/nothing", None),           // 404
    (
        "POST",
        "/experiments",
        Some(r#"{"platform":"intel_xeon","workload":"dedup","cpu":"timing"}"#),
    ),
    ("GET", "/profile", None),
    // Continuous profiling under chaos: snapshot captures hit the
    // profstore.disk_write torn-write point; cluster episodes (no
    // --profile-dir on the nodes) answer 503, which ALLOWED covers.
    ("POST", "/profile/snapshot?label=soak", Some("")),
    ("GET", "/profile/history", None),
];

/// Statuses the server may legitimately answer with under this mix.
const ALLOWED: &[u16] = &[200, 400, 404, 429, 500, 503, 504];

#[derive(Default)]
struct Tally {
    issued: u64,
    completed: u64,
    dropped: u64,
    retries: u64,
    bad_bodies: u64,
    statuses: BTreeMap<u16, u64>,
}

fn client_loop(addr: &str, idx: usize, seed: u64, cfg: &SoakConfig, stop_at: Instant) -> Tally {
    let policy = RetryPolicy {
        max_retries: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: seed ^ idx as u64,
        timeout: Duration::from_secs(10),
    };
    let mut tally = Tally::default();
    let mut conn = None;
    let mut r = 0usize;
    loop {
        let more = if cfg.requests > 0 {
            r < cfg.requests
        } else {
            Instant::now() < stop_at
        };
        if !more {
            break;
        }
        let (method, path, body) = MIX[(idx + r) % MIX.len()];
        tally.issued += 1;
        let out = retry::request_with_retry(
            &mut conn,
            addr,
            method,
            path,
            body,
            &policy,
            ((idx as u64) << 32) | r as u64,
        );
        tally.retries += out.retries as u64;
        match out.result {
            Ok((status, body)) => {
                tally.completed += 1;
                *tally.statuses.entry(status).or_insert(0) += 1;
                // The poison invariant, checked at the consumer: every
                // 200 body (except the Prometheus text route) must be
                // well-formed JSON with no corruption marker.
                if status == 200
                    && path != "/metrics"
                    && (minjson::parse(&body).is_err() || body.contains("<<chaos-poison>>"))
                {
                    tally.bad_bodies += 1;
                }
            }
            Err(_) => tally.dropped += 1,
        }
        r += 1;
    }
    tally
}

/// One GET with retries (used by the chaos-off probe phase), parsed as
/// JSON unless `path` is `/metrics`.
fn probe(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
    let policy = RetryPolicy {
        max_retries: 2,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        seed: 0,
        timeout: Duration::from_secs(30),
    };
    let mut conn = None;
    let out = retry::request_with_retry(&mut conn, addr, method, path, body, &policy, 0);
    match out.result {
        Ok((200, body)) => Ok(body),
        Ok((status, body)) => Err(format!("{method} {path} -> {status}: {body}")),
        Err(e) => Err(format!("{method} {path} failed: {e}")),
    }
}

fn probe_json(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<Json, String> {
    let body = probe(addr, method, path, body)?;
    minjson::parse(&body).map_err(|e| format!("{path} body is not JSON ({e}): {body}"))
}

fn num(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

/// Sums per-client tallies and checks the client-observable invariants:
/// exactly-one-response accounting, poison-free 200 bodies, and only
/// legitimate status codes.
#[allow(clippy::type_complexity)]
fn aggregate(
    tallies: Vec<Tally>,
    violations: &mut Vec<String>,
) -> (u64, u64, u64, u64, BTreeMap<u16, u64>) {
    let mut issued = 0;
    let mut completed = 0;
    let mut dropped = 0;
    let mut retries = 0;
    let mut bad_bodies = 0;
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    for t in tallies {
        issued += t.issued;
        completed += t.completed;
        dropped += t.dropped;
        retries += t.retries;
        bad_bodies += t.bad_bodies;
        for (s, n) in t.statuses {
            *statuses.entry(s).or_insert(0) += n;
        }
    }
    if completed + dropped != issued {
        violations.push(format!(
            "request accounting leak: {issued} issued but {completed} completed + {dropped} dropped"
        ));
    }
    if bad_bodies > 0 {
        violations.push(format!(
            "{bad_bodies} 200-response bodies were malformed — a poisoned result reached a client"
        ));
    }
    for (&status, &n) in &statuses {
        if !ALLOWED.contains(&status) {
            violations.push(format!("unexpected status {status} ({n} responses)"));
        }
    }
    (issued, completed, dropped, retries, statuses)
}

/// Graceful drain with a watchdog: `shutdown()` joins the acceptor and
/// workers, which must complete even while chaos is armed. A wedged
/// drain is reported as a violation instead of hanging the soak.
fn drain_with_watchdog(handle: ServerHandle, violations: &mut Vec<String>) {
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::Builder::new()
        .name("soak-drain".into())
        .spawn(move || {
            handle.shutdown();
            let _ = done_tx.send(());
        })
        .expect("spawn drain thread");
    if done_rx.recv_timeout(Duration::from_secs(60)).is_err() {
        violations.push("graceful drain did not complete within 60s under fault load".into());
    }
}

/// Runs one full soak episode for `seed`. Deterministic given the seed
/// and a fixed `requests` count with one client; see [`SoakConfig`].
pub fn soak_seed(seed: u64, cfg: &SoakConfig) -> SeedOutcome {
    chaos::install_quiet_panic_hook();
    let mut violations = Vec::new();

    // A per-episode disk tier so `cache.disk_write` faults and the
    // corrupt-entry scrubbing run under soak load too.
    let cache_dir =
        std::env::temp_dir().join(format!("gem5prof-soak-{}-{seed:x}", std::process::id()));
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 16,
        cache_cap: 64,
        cache_dir: Some(cache_dir.clone()),
        coalesce: true,
        deadline: Duration::from_secs(5),
        worker_delay: Duration::ZERO,
        // A per-episode profstore so snapshot captures and their torn
        // writes (`profstore.disk_write`) run under soak load. The
        // subdirectory keeps `.g5ps` segments out of the disk tier's
        // scan; the episode cleanup removes both.
        profile_dir: Some(cache_dir.join("prof")),
        ..ServeConfig::default()
    })
    .expect("soak server must bind an ephemeral port");
    let addr = handle.addr().to_string();

    // --- phase 1: traffic under chaos -------------------------------
    chaos::arm(plan_for(seed, cfg.prob));
    let stop_at = Instant::now() + Duration::from_secs_f64(cfg.secs);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|idx| {
                let addr = addr.clone();
                scope.spawn(move || client_loop(&addr, idx, seed, cfg, stop_at))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // --- phase 2: runner fault points, exercised directly ------------
    let items: Vec<u64> = (0..64).collect();
    let doubled =
        gem5prof::runner::with_threads(4, || gem5prof::runner::parallel_map(&items, |&x| x * 2));
    if doubled != items.iter().map(|&x| x * 2).collect::<Vec<_>>() {
        violations.push("parallel_map lost input ordering or results under chaos stalls".into());
    }

    let traffic_points = chaos::report();
    chaos::disarm();

    // --- phase 3: aggregate + client-side invariants -----------------
    let (issued, completed, dropped, retries, statuses) = aggregate(tallies, &mut violations);

    // --- phase 4: chaos-off probes -----------------------------------
    // Workers must still compute fresh work after every injected panic:
    // this spec is not in MIX, so it cannot be served from cache.
    let fresh = r#"{"platform":"intel_xeon","workload":"dedup","cpu":"minor"}"#;
    if let Err(e) = probe_json(&addr, "POST", "/experiments", Some(fresh)) {
        violations.push(format!("worker pool dead after chaos: {e}"));
    }
    // Cached table responses must be intact (the cache never absorbed a
    // poisoned render).
    for path in ["/tables/table1", "/tables/table2"] {
        match probe(&addr, "GET", path, None) {
            Ok(body) if body.contains("<<chaos-poison>>") => {
                violations.push(format!("{path} served a poisoned cached body"))
            }
            Ok(_) => {}
            Err(e) => violations.push(format!("cache probe failed: {e}")),
        }
    }
    // The engine must quiesce (504-abandoned jobs finish; queue empties).
    let quiesce_deadline = Instant::now() + Duration::from_secs(30);
    let mut last_stats = None;
    loop {
        match probe_json(&addr, "GET", "/stats", None) {
            Ok(doc) => {
                let depth = num(&doc, &["server", "queue", "depth"]).unwrap_or(f64::NAN);
                let in_flight = num(&doc, &["server", "queue", "in_flight"]).unwrap_or(f64::NAN);
                let idle = depth == 0.0 && in_flight == 0.0;
                last_stats = Some(doc);
                if idle {
                    break;
                }
                if Instant::now() > quiesce_deadline {
                    violations.push(format!(
                        "engine did not quiesce: depth={depth} in_flight={in_flight} after 30s"
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                violations.push(format!("stats probe failed: {e}"));
                break;
            }
        }
    }
    // `/stats` must balance: every parsed request got exactly one
    // status-coded outcome. The probe rendering the snapshot is itself
    // counted as a request but not yet as a response, hence the +1.
    if let Some(doc) = &last_stats {
        let requests = num(doc, &["server", "requests"]).unwrap_or(f64::NAN);
        let responses: f64 = [
            "200", "400", "404", "405", "429", "500", "503", "504", "other",
        ]
        .iter()
        .filter_map(|code| num(doc, &["server", "responses", code]))
        .sum();
        if requests != responses + 1.0 {
            violations.push(format!(
                "/stats accounting imbalance: {requests} requests vs {responses} responses \
                 (+1 in-progress expected)"
            ));
        }
        // `/metrics` reads the same atomics; its counter can only be
        // at or ahead of the snapshot we just took.
        match probe(&addr, "GET", "/metrics", None) {
            Ok(text) => {
                let series_value = |l: &str| {
                    l.split_whitespace()
                        .nth(1)
                        .and_then(|v| v.parse::<f64>().ok())
                };
                let metric = text
                    .lines()
                    .find(|l| l.starts_with("gem5prof_served_requests_total "))
                    .and_then(series_value);
                match metric {
                    Some(m) if m >= requests => {}
                    Some(m) => violations.push(format!(
                        "/metrics requests_total {m} fell behind /stats requests {requests}"
                    )),
                    None => violations
                        .push("gem5prof_served_requests_total missing from /metrics".into()),
                }
                // The status-labeled response series feed from the same
                // atomics: summed, they can only be at or ahead of the
                // /stats snapshot — and never ahead of the request
                // counter, or some request got two counted outcomes
                // (the try_clone / torn-connection double-count bug).
                let responses_metric: f64 = text
                    .lines()
                    .filter(|l| l.starts_with("gem5prof_served_responses_total{"))
                    .filter_map(series_value)
                    .sum();
                if responses_metric < responses {
                    violations.push(format!(
                        "/metrics responses sum {responses_metric} fell behind \
                         /stats responses {responses}"
                    ));
                }
                match metric {
                    Some(m) if responses_metric > m => violations.push(format!(
                        "/metrics counted more responses ({responses_metric}) than \
                         requests ({m}): a request got two outcomes"
                    )),
                    _ => {}
                }
            }
            Err(e) => violations.push(format!("metrics probe failed: {e}")),
        }
    }

    // --- phase 5: graceful drain under fault load --------------------
    chaos::arm(plan_for(seed.wrapping_add(0x9E37), cfg.prob));
    std::thread::scope(|scope| {
        for idx in 0..2usize {
            let addr = addr.clone();
            let cfg = SoakConfig {
                requests: 8,
                clients: 1,
                ..cfg.clone()
            };
            scope.spawn(move || {
                // Outcomes are irrelevant: during a drain any mix of
                // 503s and refused connects is legal. The invariant is
                // that the drain itself completes.
                let _ = client_loop(&addr, idx, seed, &cfg, Instant::now());
            });
        }
        std::thread::sleep(Duration::from_millis(20));
        drain_with_watchdog(handle, &mut violations);
    });
    let drain_points = chaos::report();
    chaos::disarm();
    let _ = std::fs::remove_dir_all(&cache_dir);

    SeedOutcome {
        seed,
        issued,
        completed,
        dropped,
        retries,
        statuses,
        points: traffic_points,
        drain_points,
        violations,
    }
}

// ---------------------------------------------------------------------
// Cluster soak: node-kill chaos across a routed fleet
// ---------------------------------------------------------------------

/// One cluster episode: `nodes` in-process daemons behind a
/// consistent-hash router, chaos armed fleet-wide, and a seed-chosen
/// node killed mid-burst. Asserts the serving invariants cluster-wide:
///
/// * **exactly-one-response** — every issued request ends in exactly
///   one status-coded response or one transport error, across node
///   death, ejection and re-routing;
/// * **poison-free** — no 200 body is malformed or carries the chaos
///   corruption marker, whether computed locally, served from a cache
///   tier, or promoted via peer fetch;
/// * **liveness** — the router ejects the dead node, fresh keys still
///   compute on the survivors afterwards, and the surviving fleet
///   drains gracefully under fault load.
///
/// Fleet-wide `computes ≤ unique keys` is deliberately NOT asserted
/// here: injected job panics legitimately force recomputes. The
/// chaos-free cluster smoke in `scripts/verify.sh` (and the bench)
/// asserts it.
pub fn cluster_soak_seed(seed: u64, cfg: &SoakConfig, nodes: usize) -> SeedOutcome {
    let nodes = nodes.max(2);
    chaos::install_quiet_panic_hook();
    let mut violations = Vec::new();

    let base = std::env::temp_dir().join(format!("gem5prof-csoak-{}-{seed:x}", std::process::id()));
    let mut node_handles: Vec<ServerHandle> = (0..nodes)
        .map(|i| {
            serve(ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_cap: 16,
                cache_cap: 64,
                cache_dir: Some(base.join(format!("node{i}"))),
                coalesce: true,
                deadline: Duration::from_secs(5),
                node_id: Some(format!("soak-node-{i}")),
                ..ServeConfig::default()
            })
            .expect("soak node must bind an ephemeral port")
        })
        .collect();
    let router = serve_cluster(ClusterConfig {
        addr: "127.0.0.1:0".into(),
        members: node_handles
            .iter()
            .map(|h| MemberSpec::new(h.addr().to_string()))
            .collect(),
        probe_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_secs(1),
        io_timeout: Duration::from_secs(10),
        ..ClusterConfig::default()
    })
    .expect("soak router must bind an ephemeral port");
    let addr = router.addr().to_string();

    // The victim is seed-chosen and extracted up front; once its port
    // refuses connections, a drained node and a crashed one look the
    // same to the router.
    let victim = (seed as usize) % nodes;
    let victim_addr = node_handles[victim].addr().to_string();
    let victim_handle = node_handles.remove(victim);

    // --- phase 1: traffic under chaos, node kill mid-burst -----------
    chaos::arm(plan_for(seed, cfg.prob));
    let stop_at = Instant::now() + Duration::from_secs_f64(cfg.secs);
    let kill_delay = if cfg.requests > 0 {
        Duration::from_millis(300)
    } else {
        Duration::from_secs_f64(cfg.secs / 2.0)
    };
    let (tallies, kill_violation) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..cfg.clients.max(1))
            .map(|idx| {
                let addr = addr.clone();
                scope.spawn(move || client_loop(&addr, idx, seed, cfg, stop_at))
            })
            .collect();
        let killer = scope.spawn(move || -> Option<String> {
            std::thread::sleep(kill_delay);
            // Watchdogged on an unscoped thread: a wedged drain becomes
            // a violation, not a hung soak.
            let (done_tx, done_rx) = mpsc::channel();
            std::thread::spawn(move || {
                victim_handle.shutdown();
                let _ = done_tx.send(());
            });
            done_rx
                .recv_timeout(Duration::from_secs(60))
                .err()
                .map(|_| "victim node drain did not complete within 60s under fault load".into())
        });
        let tallies: Vec<Tally> = clients.into_iter().map(|h| h.join().unwrap()).collect();
        (tallies, killer.join().unwrap())
    });
    if let Some(v) = kill_violation {
        violations.push(v);
    }
    let traffic_points = chaos::report();
    chaos::disarm();

    // --- phase 2: aggregate + client-side invariants -----------------
    let (issued, completed, dropped, retries, statuses) = aggregate(tallies, &mut violations);

    // --- phase 3: chaos-off cluster probes ---------------------------
    // The router must eject the dead node (its /healthz is gone).
    let eject_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match probe_json(&addr, "GET", "/healthz", None) {
            Ok(doc) => {
                let alive = num(&doc, &["members_alive"]).unwrap_or(f64::NAN);
                if alive == (nodes - 1) as f64 {
                    break;
                }
                if Instant::now() > eject_deadline {
                    violations.push(format!(
                        "router never ejected the killed node: members_alive={alive} after 10s"
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                violations.push(format!("router healthz probe failed: {e}"));
                break;
            }
        }
    }
    // `/cluster` must agree on *which* member died.
    match probe_json(&addr, "GET", "/cluster", None) {
        Ok(doc) => {
            if let Some(Json::Arr(members)) = doc.get("members").cloned() {
                for m in &members {
                    let maddr = m.get("addr").and_then(Json::as_str).unwrap_or("");
                    let alive = m.get("alive").and_then(Json::as_bool).unwrap_or(true);
                    if maddr == victim_addr && alive {
                        violations.push(format!("/cluster still lists dead {maddr} as alive"));
                    }
                    if maddr != victim_addr && !alive {
                        violations.push(format!("/cluster ejected surviving member {maddr} too"));
                    }
                }
            } else {
                violations.push("/cluster has no members array".into());
            }
        }
        Err(e) => violations.push(format!("cluster status probe failed: {e}")),
    }
    // Liveness: a spec outside MIX must still compute, re-routed to a
    // survivor regardless of which node originally owned it.
    let fresh = r#"{"platform":"m1_pro","workload":"dedup","cpu":"minor"}"#;
    if let Err(e) = probe_json(&addr, "POST", "/experiments", Some(fresh)) {
        violations.push(format!(
            "fleet cannot compute fresh work after node kill: {e}"
        ));
    }
    // Poison-free: cached tables served through the router are intact.
    for path in ["/tables/table1", "/tables/table2"] {
        match probe(&addr, "GET", path, None) {
            Ok(body) if body.contains("<<chaos-poison>>") => violations.push(format!(
                "{path} served a poisoned cached body via the router"
            )),
            Ok(_) => {}
            Err(e) => violations.push(format!("router cache probe failed: {e}")),
        }
    }

    // --- phase 4: graceful fleet drain under fault load --------------
    chaos::arm(plan_for(seed.wrapping_add(0x9E37), cfg.prob));
    std::thread::scope(|scope| {
        for idx in 0..2usize {
            let addr = addr.clone();
            let cfg = SoakConfig {
                requests: 8,
                clients: 1,
                ..cfg.clone()
            };
            scope.spawn(move || {
                let _ = client_loop(&addr, idx, seed, &cfg, Instant::now());
            });
        }
        std::thread::sleep(Duration::from_millis(20));
        for handle in node_handles.drain(..) {
            drain_with_watchdog(handle, &mut violations);
        }
    });
    router.shutdown();
    let drain_points = chaos::report();
    chaos::disarm();
    let _ = std::fs::remove_dir_all(&base);

    SeedOutcome {
        seed,
        issued,
        completed,
        dropped,
        retries,
        statuses,
        points: traffic_points,
        drain_points,
        violations,
    }
}
