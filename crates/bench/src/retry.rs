//! Re-export of the shared HTTP retry policy.
//!
//! The policy moved into the server crate (`gem5prof_served::retry`) so
//! the serving layer itself — the cluster router and the engine's peer
//! warm-tier fetch — can use it without a dependency cycle. The client
//! binaries in this crate (`loadgen`, `servectl`, `soak`) keep their
//! historical `bench::retry::` paths through this re-export.

pub use gem5prof_served::retry::{request_with_retry, Attempted, RetryPolicy};
