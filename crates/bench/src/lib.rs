//! Support library for the benchmark harness: shared setup helpers used
//! by both the Criterion benches and the `repro` binary.

use gem5prof::experiment::{GuestSpec, HostSetup};
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::{Scale, Workload};

/// A tiny guest spec for microbenchmarks.
pub fn tiny_guest(cpu: CpuModel) -> GuestSpec {
    GuestSpec::new(Workload::Dedup, Scale::Test, cpu, SimMode::Se)
}

/// The default host (Intel_Xeon at base knobs).
pub fn xeon_host() -> HostSetup {
    HostSetup::platform(&platforms::intel_xeon())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let g = tiny_guest(CpuModel::Atomic);
        assert_eq!(g.scale, Scale::Test);
        let h = xeon_host();
        assert_eq!(h.config.name, "Intel_Xeon");
    }
}
