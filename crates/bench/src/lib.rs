//! Support library for the benchmark harness: shared setup helpers and a
//! std-only wall-clock bench runner used by the `[[bench]]` targets and
//! the `repro` binary. No external bench framework — the build must work
//! fully offline.

use gem5prof::experiment::{GuestSpec, HostSetup};
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::{Scale, Workload};

pub mod harness;
pub mod retry;
pub mod soak;

/// A tiny guest spec for microbenchmarks.
pub fn tiny_guest(cpu: CpuModel) -> GuestSpec {
    GuestSpec::new(Workload::Dedup, Scale::Test, cpu, SimMode::Se)
}

/// The default host (Intel_Xeon at base knobs).
pub fn xeon_host() -> HostSetup {
    HostSetup::platform(&platforms::intel_xeon())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let g = tiny_guest(CpuModel::Atomic);
        assert_eq!(g.scale, Scale::Test);
        let h = xeon_host();
        assert_eq!(h.config.name, "Intel_Xeon");
    }
}
