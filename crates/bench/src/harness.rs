//! A minimal `std::time::Instant` bench runner for `[[bench]]
//! harness = false` targets.
//!
//! `cargo bench` invokes the target with `--bench` plus any user filter
//! strings; the runner warms each benchmark up once, then iterates until
//! a time budget (or iteration cap) is reached and prints min / mean /
//! max wall time per iteration. Deliberately no statistics beyond that —
//! the goal is a dependency-free health check, not Criterion.

use std::time::{Duration, Instant};

/// Per-iteration time budget control for one benchmark group.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Stop after roughly this much measured time.
    pub max_time: Duration,
    /// Never exceed this many measured iterations.
    pub max_iters: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_time: Duration::from_secs(2),
            max_iters: 50,
        }
    }
}

/// The bench runner: parses CLI args (a non-flag argument is a substring
/// filter on benchmark names) and runs/reports each registered bench.
pub struct Runner {
    filters: Vec<String>,
    ran: u32,
}

impl Runner {
    /// Builds a runner from `std::env::args`, skipping harness flags
    /// that `cargo bench` passes through (`--bench`, `--exact`, ...).
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Runner { filters, ran: 0 }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Benchmarks `f` under `name` with the default budget.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_with(name, Budget::default(), f);
    }

    /// Benchmarks `f` under `name` with an explicit budget.
    pub fn bench_with<R>(&mut self, name: &str, budget: Budget, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // One untimed warmup (fills caches, triggers lazy init).
        std::hint::black_box(f());

        let started = Instant::now();
        let mut times = Vec::new();
        while times.len() < budget.max_iters as usize
            && (times.is_empty() || started.elapsed() < budget.max_time)
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{name:<44} min {:>12} mean {:>12} max {:>12} ({} iters)",
            fmt(min),
            fmt(mean),
            fmt(max),
            times.len()
        );
        self.ran += 1;
    }

    /// Prints the trailer; call once after all benches are registered.
    pub fn finish(self) {
        println!("{} benchmark(s) run", self.ran);
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_respects_filters() {
        let mut r = Runner {
            filters: vec!["match".into()],
            ran: 0,
        };
        let tight = Budget {
            max_time: Duration::from_millis(1),
            max_iters: 2,
        };
        r.bench_with("no_hit", tight, || 1 + 1);
        assert_eq!(r.ran, 0);
        r.bench_with("does_match", tight, || 1 + 1);
        assert_eq!(r.ran, 1);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(5)).ends_with(" s"));
    }
}
