//! Simulated-system configuration.

use gem5sim_event::Frequency;

/// CPU models, in increasing order of simulation detail — the paper's
/// primary experimental axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuModel {
    /// `AtomicSimpleCPU`: CPI = 1, atomic memory accesses with no
    /// contention or queuing modeled.
    Atomic,
    /// `TimingSimpleCPU`: CPI = 1 plus detailed memory timing (queuing
    /// delays, resource contention).
    Timing,
    /// `MinorCPU`: fixed in-order pipeline with detailed memory timing.
    Minor,
    /// `O3CPU`: out-of-order superscalar (ROB/IQ/LSQ, rename, tournament
    /// branch predictor) with detailed memory timing.
    O3,
}

impl CpuModel {
    /// All models, in increasing detail order.
    pub const ALL: [CpuModel; 4] = [
        CpuModel::Atomic,
        CpuModel::Timing,
        CpuModel::Minor,
        CpuModel::O3,
    ];

    /// Short uppercase name used in figures (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            CpuModel::Atomic => "ATOMIC",
            CpuModel::Timing => "TIMING",
            CpuModel::Minor => "MINOR",
            CpuModel::O3 => "O3",
        }
    }

    /// 0-based detail rank (Atomic = 0 … O3 = 3).
    pub fn detail_rank(self) -> usize {
        match self {
            CpuModel::Atomic => 0,
            CpuModel::Timing => 1,
            CpuModel::Minor => 2,
            CpuModel::O3 => 3,
        }
    }
}

/// How guest instructions are driven through the event queue.
///
/// Both tiers produce byte-identical results — stats, traces, observer
/// streams and artifacts — by construction; the tier only changes how
/// much host work the event loop performs per guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// One scheduled event per instruction (gem5's shape, and this
    /// repository's original behavior).
    Interp,
    /// Cached basic blocks executed straight-line with batched
    /// event-queue accounting. Applies to the simple models
    /// (Atomic/Timing); Minor and O3 always run per-instruction.
    Block,
}

impl ExecTier {
    /// Lowercase name, matching the `GEM5PROF_EXEC_TIER` values.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Block => "block",
        }
    }
}

impl std::str::FromStr for ExecTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(ExecTier::Interp),
            "block" => Ok(ExecTier::Block),
            other => Err(format!("unknown exec tier `{other}` (interp|block)")),
        }
    }
}

/// Simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimMode {
    /// Syscall emulation: user-level code only; `ecall`s serviced by the
    /// simulator; no TLBs or interrupts.
    Se,
    /// Full system: TLB translation on every access, timer interrupts,
    /// firmware `ecall` services.
    Fs,
}

impl SimMode {
    /// Short name used in figures.
    pub fn label(self) -> &'static str {
        match self {
            SimMode::Se => "SE",
            SimMode::Fs => "FS",
        }
    }
}

/// Geometry and latency of one guest cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Associativity (ways).
    pub assoc: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Hit latency in CPU cycles.
    pub hit_latency: u64,
    /// Number of MSHRs (outstanding misses); blocking when in flight
    /// misses reach this count.
    pub mshrs: u64,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `assoc * line`).
    pub fn sets(&self) -> u64 {
        assert!(
            self.size % (self.assoc * self.line) == 0 && self.size > 0,
            "inconsistent cache geometry {self:?}"
        );
        self.size / (self.assoc * self.line)
    }
}

/// Full simulated-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU model.
    pub cpu_model: CpuModel,
    /// SE or FS mode.
    pub mode: SimMode,
    /// Number of CPUs (each runs the workload with its hart id in `tp`).
    pub num_cpus: usize,
    /// Guest CPU clock.
    pub clock: Frequency,
    /// Physical memory size in bytes.
    pub mem_size: u64,
    /// L1 instruction cache (per CPU).
    pub l1i: CacheConfig,
    /// L1 data cache (per CPU).
    pub l1d: CacheConfig,
    /// Unified L2 (shared).
    pub l2: CacheConfig,
    /// DRAM access latency in nanoseconds.
    pub dram_latency_ns: u64,
    /// DRAM peak bandwidth in bytes/sec (models occupancy).
    pub dram_bw_bytes_per_sec: u64,
    /// iTLB/dTLB entries (FS mode).
    pub tlb_entries: usize,
    /// Guest page size in bytes (FS mode).
    pub page_size: u64,
    /// Timer interrupt interval in guest microseconds (FS mode).
    pub timer_interval_us: u64,
    /// Pipeline width for Minor (fetch/execute per cycle).
    pub minor_width: usize,
    /// O3 pipeline width (fetch/rename/issue/commit per cycle).
    pub o3_width: usize,
    /// O3 reorder-buffer entries.
    pub rob_entries: usize,
    /// O3 issue-queue entries.
    pub iq_entries: usize,
    /// O3 load-queue entries.
    pub lq_entries: usize,
    /// O3 store-queue entries.
    pub sq_entries: usize,
    /// Physical integer registers (O3 rename).
    pub int_phys_regs: usize,
    /// Physical FP registers (O3 rename).
    pub fp_phys_regs: usize,
    /// Branch-predictor BTB entries (Minor/O3).
    pub btb_entries: usize,
    /// Safety valve: maximum committed instructions before forced exit
    /// (`None` = unlimited).
    pub max_insts: Option<u64>,
    /// Per-hart clock dividers: hart `i` ticks at `clock /
    /// hart_clock_div[i]` (missing entries divide by 1). The divider
    /// stretches only the CPU's own event cadence on the queue —
    /// cache/DRAM/TLB latencies stay on the undivided system clock, as
    /// with gem5's per-object clock domains.
    pub hart_clock_div: Vec<u64>,
    /// Guest execution tier (see [`ExecTier`]). Results are identical
    /// either way; `Block` is the fast default.
    pub exec_tier: ExecTier,
    /// Per-hart decoded-block cache capacity, in blocks (block tier).
    pub block_cache_blocks: usize,
}

impl SystemConfig {
    /// gem5-like defaults for the given model and mode (2 GHz guest,
    /// 32 KB L1s, 1 MB L2, 64 MB memory).
    pub fn new(cpu_model: CpuModel, mode: SimMode) -> Self {
        let l1 = CacheConfig {
            size: 32 * 1024,
            assoc: 8,
            line: 64,
            hit_latency: 2,
            mshrs: 4,
        };
        SystemConfig {
            cpu_model,
            mode,
            num_cpus: 1,
            clock: Frequency::from_ghz(2.0),
            mem_size: 64 * 1024 * 1024,
            l1i: l1,
            l1d: l1,
            l2: CacheConfig {
                size: 1024 * 1024,
                assoc: 16,
                line: 64,
                hit_latency: 12,
                mshrs: 16,
            },
            dram_latency_ns: 50,
            dram_bw_bytes_per_sec: 12_800_000_000,
            tlb_entries: 64,
            page_size: 4096,
            timer_interval_us: 100,
            minor_width: 2,
            o3_width: 8,
            rob_entries: 192,
            iq_entries: 64,
            lq_entries: 32,
            sq_entries: 32,
            int_phys_regs: 128,
            fp_phys_regs: 192,
            btb_entries: 4096,
            max_insts: None,
            hart_clock_div: Vec::new(),
            exec_tier: ExecTier::Block,
            block_cache_blocks: 4096,
        }
    }

    /// Sets the number of CPUs (builder style).
    pub fn with_cpus(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one CPU required");
        self.num_cpus = n;
        self
    }

    /// Sets the committed-instruction limit (builder style).
    pub fn with_max_insts(mut self, n: u64) -> Self {
        self.max_insts = Some(n);
        self
    }

    /// Sets per-hart clock dividers (builder style). Harts beyond the
    /// vector's length run undivided.
    pub fn with_hart_clock_divs(mut self, divs: Vec<u64>) -> Self {
        assert!(
            divs.iter().all(|&d| d >= 1),
            "clock dividers must be >= 1: {divs:?}"
        );
        self.hart_clock_div = divs;
        self
    }

    /// Sets the execution tier (builder style).
    pub fn with_exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self
    }

    /// Sets the decoded-block cache capacity (builder style).
    pub fn with_block_cache_blocks(mut self, blocks: usize) -> Self {
        self.block_cache_blocks = blocks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_order_reflects_detail() {
        assert!(CpuModel::Atomic < CpuModel::Timing);
        assert!(CpuModel::Timing < CpuModel::Minor);
        assert!(CpuModel::Minor < CpuModel::O3);
        for (i, m) in CpuModel::ALL.iter().enumerate() {
            assert_eq!(m.detail_rank(), i);
        }
    }

    #[test]
    fn cache_sets() {
        let c = CacheConfig {
            size: 32 * 1024,
            assoc: 8,
            line: 64,
            hit_latency: 2,
            mshrs: 4,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn bad_cache_geometry_panics() {
        let c = CacheConfig {
            size: 1000,
            assoc: 3,
            line: 64,
            hit_latency: 1,
            mshrs: 1,
        };
        let _ = c.sets();
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = SystemConfig::new(CpuModel::O3, SimMode::Fs);
        assert_eq!(cfg.l1i.sets(), 64);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.num_cpus, 1);
        let cfg = cfg.with_cpus(4).with_max_insts(1000);
        assert_eq!(cfg.num_cpus, 4);
        assert_eq!(cfg.max_insts, Some(1000));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CpuModel::O3.label(), "O3");
        assert_eq!(SimMode::Fs.label(), "FS");
    }

    #[test]
    fn exec_tier_parses_its_own_labels() {
        for t in [ExecTier::Interp, ExecTier::Block] {
            assert_eq!(t.label().parse::<ExecTier>(), Ok(t));
        }
        assert!("jit".parse::<ExecTier>().is_err());
        let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se);
        assert_eq!(cfg.exec_tier, ExecTier::Block, "block is the default");
        let cfg = cfg
            .with_exec_tier(ExecTier::Interp)
            .with_block_cache_blocks(8);
        assert_eq!(cfg.exec_tier, ExecTier::Interp);
        assert_eq!(cfg.block_cache_blocks, 8);
    }

    #[test]
    fn hart_clock_divs_default_to_undivided() {
        let cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se);
        assert!(cfg.hart_clock_div.is_empty());
        let cfg = cfg.with_cpus(4).with_hart_clock_divs(vec![1, 2]);
        assert_eq!(cfg.hart_clock_div, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "clock dividers must be >= 1")]
    fn zero_clock_divider_panics() {
        let _ = SystemConfig::new(CpuModel::Timing, SimMode::Se).with_hart_clock_divs(vec![1, 0]);
    }
}
