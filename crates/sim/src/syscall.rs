//! Syscall emulation (SE mode) and firmware services (FS mode).
//!
//! SE mode mirrors gem5's syscall-emulation layer: `ecall`s are serviced
//! directly by the simulator against host-side state. FS mode services a
//! small firmware ABI instead (console, interrupt return, device delays,
//! shutdown), with the guest OS responsibilities carried by the boot
//! workload program.

use crate::mem::PhysMem;
use crate::observe::{CompClass, Obs};
use gem5sim_isa::exec::ArchState;
use gem5sim_isa::{MemSize, Reg};

/// Linux-flavoured syscall numbers (RISC-V convention).
pub mod nr {
    /// `write(fd, buf, len)`.
    pub const WRITE: u64 = 64;
    /// `exit(code)`.
    pub const EXIT: u64 = 93;
    /// `clock_gettime` — returns sim ticks in `a0`.
    pub const GETTIME: u64 = 169;
    /// `brk(addr)`.
    pub const BRK: u64 = 214;
    /// Firmware: return from interrupt (FS mode only).
    pub const FW_IRET: u64 = 0x1000;
    /// Firmware: device delay of `a0` microseconds (FS mode only).
    pub const FW_DELAY: u64 = 0x2000;
    /// Firmware: console putchar (FS mode only).
    pub const FW_PUTCHAR: u64 = 0x2001;
}

/// Effect of servicing an `ecall`, beyond architectural state updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcallEffect {
    /// Continue executing normally.
    Continue,
    /// The workload exited with this code.
    Exit(i64),
    /// Return-from-interrupt: redirect to the saved PC.
    Iret,
    /// Stall this hart for the given number of guest microseconds
    /// (models device/firmware waits during FS boot).
    Delay(u64),
}

/// Host-side emulation state shared by all harts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallState {
    /// Bytes written to fd 1/2.
    pub stdout: Vec<u8>,
    /// Current program break.
    pub brk: u64,
    /// Syscalls serviced.
    pub count: u64,
}

impl SyscallState {
    /// Fresh state with the break at `initial_brk`.
    pub fn new(initial_brk: u64) -> Self {
        SyscallState {
            stdout: Vec::new(),
            brk: initial_brk,
            count: 0,
        }
    }
}

/// Services the `ecall` encoded in `arch`'s argument registers.
///
/// Returns the non-architectural [`EcallEffect`]. `now_ticks` backs the
/// `GETTIME` syscall.
pub fn handle_ecall(
    arch: &mut ArchState,
    phys: &mut PhysMem,
    st: &mut SyscallState,
    now_ticks: u64,
    obs: &Obs,
    cpu: u16,
) -> EcallEffect {
    st.count += 1;
    obs.call(CompClass::Syscall, "handleSyscall", cpu, 55);
    let num = arch.read(Reg::A7);
    match num {
        nr::WRITE => {
            obs.call(CompClass::Syscall, "sys_write", cpu, 40);
            let buf = arch.read(Reg::A1);
            let len = arch.read(Reg::A2).min(1 << 20);
            for i in 0..len {
                st.stdout.push(phys.read(buf + i, MemSize::B) as u8);
            }
            arch.write(Reg::A0, len);
            EcallEffect::Continue
        }
        nr::EXIT => {
            obs.call(CompClass::Syscall, "sys_exit", cpu, 25);
            EcallEffect::Exit(arch.read(Reg::A0) as i64)
        }
        nr::GETTIME => {
            obs.call(CompClass::Syscall, "sys_gettime", cpu, 18);
            arch.write(Reg::A0, now_ticks);
            EcallEffect::Continue
        }
        nr::BRK => {
            obs.call(CompClass::Syscall, "sys_brk", cpu, 22);
            let req = arch.read(Reg::A0);
            if req != 0 {
                st.brk = req;
            }
            arch.write(Reg::A0, st.brk);
            EcallEffect::Continue
        }
        nr::FW_IRET => {
            obs.call(CompClass::Device, "intrReturn", cpu, 16);
            EcallEffect::Iret
        }
        nr::FW_DELAY => {
            obs.call(CompClass::Device, "firmwareDelay", cpu, 30);
            EcallEffect::Delay(arch.read(Reg::A0))
        }
        nr::FW_PUTCHAR => {
            obs.call(CompClass::Device, "consolePutchar", cpu, 20);
            st.stdout.push(arch.read(Reg::A0) as u8);
            EcallEffect::Continue
        }
        other => {
            // Unknown syscalls are ignored (gem5 warns); return -ENOSYS.
            obs.call(CompClass::Syscall, "unimplemented", cpu, 15);
            let _ = other;
            arch.write(Reg::A0, (-38i64) as u64);
            EcallEffect::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ArchState, PhysMem, SyscallState) {
        (
            ArchState::new(0),
            PhysMem::new(4096),
            SyscallState::new(1024),
        )
    }

    #[test]
    fn write_copies_bytes_out() {
        let (mut a, mut m, mut s) = setup();
        m.write_slice(100, b"hi!");
        a.write(Reg::A7, nr::WRITE);
        a.write(Reg::A0, 1);
        a.write(Reg::A1, 100);
        a.write(Reg::A2, 3);
        let e = handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0);
        assert_eq!(e, EcallEffect::Continue);
        assert_eq!(s.stdout, b"hi!");
        assert_eq!(a.read(Reg::A0), 3);
    }

    #[test]
    fn exit_reports_code() {
        let (mut a, mut m, mut s) = setup();
        a.write(Reg::A7, nr::EXIT);
        a.write(Reg::A0, 42);
        assert_eq!(
            handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0),
            EcallEffect::Exit(42)
        );
    }

    #[test]
    fn brk_moves_and_queries() {
        let (mut a, mut m, mut s) = setup();
        a.write(Reg::A7, nr::BRK);
        a.write(Reg::A0, 0);
        handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0);
        assert_eq!(a.read(Reg::A0), 1024);
        a.write(Reg::A7, nr::BRK);
        a.write(Reg::A0, 9999);
        handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0);
        assert_eq!(s.brk, 9999);
    }

    #[test]
    fn gettime_returns_now() {
        let (mut a, mut m, mut s) = setup();
        a.write(Reg::A7, nr::GETTIME);
        handle_ecall(&mut a, &mut m, &mut s, 777, &Obs::none(), 0);
        assert_eq!(a.read(Reg::A0), 777);
    }

    #[test]
    fn firmware_services() {
        let (mut a, mut m, mut s) = setup();
        a.write(Reg::A7, nr::FW_DELAY);
        a.write(Reg::A0, 50);
        assert_eq!(
            handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0),
            EcallEffect::Delay(50)
        );
        a.write(Reg::A7, nr::FW_IRET);
        assert_eq!(
            handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0),
            EcallEffect::Iret
        );
        a.write(Reg::A7, nr::FW_PUTCHAR);
        a.write(Reg::A0, b'x' as u64);
        handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0);
        assert_eq!(s.stdout, b"x");
    }

    #[test]
    fn unknown_syscall_returns_enosys() {
        let (mut a, mut m, mut s) = setup();
        a.write(Reg::A7, 4242);
        assert_eq!(
            handle_ecall(&mut a, &mut m, &mut s, 0, &Obs::none(), 0),
            EcallEffect::Continue
        );
        assert_eq!(a.read(Reg::A0) as i64, -38);
    }
}
