//! Checkpointing — gem5's `m5 checkpoint` / restore flow.
//!
//! The paper's methodology depends on checkpoints ("we use [M1 machines]
//! to recover from checkpoints taken by Intel_Xeon"): boot or fast-forward
//! with a cheap CPU model, snapshot the architectural state, and restore
//! into a detailed model. This module reproduces that: a [`Checkpoint`]
//! captures each hart's architectural registers plus physical memory and
//! the syscall-emulation state; restoring builds a fresh system (caches
//! and TLBs cold, exactly as in gem5) that continues execution.
//!
//! Checkpoints serialize to a self-describing byte format
//! ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`]) so they can be
//! moved between processes or machines.

use crate::config::SystemConfig;
use crate::system::System;
use gem5sim_isa::exec::ArchState;
use gem5sim_isa::{FReg, Program, Reg};
use std::fmt;

const MAGIC: &[u8; 8] = b"GEM5CPT1";

/// Architectural snapshot of one hart.
#[derive(Debug, Clone, PartialEq)]
pub struct HartState {
    /// Program counter.
    pub pc: u64,
    /// Integer registers x0–x31.
    pub regs: [u64; 32],
    /// FP registers f0–f31 (bit patterns).
    pub fregs: [u64; 32],
    /// Whether the hart had already halted.
    pub halted: bool,
}

impl HartState {
    /// Captures a hart.
    pub fn capture(arch: &ArchState, halted: bool) -> Self {
        let mut regs = [0u64; 32];
        let mut fregs = [0u64; 32];
        for i in 0..32 {
            regs[i] = arch.read(Reg(i as u8));
            fregs[i] = arch.fread(FReg(i as u8)).to_bits();
        }
        HartState {
            pc: arch.pc,
            regs,
            fregs,
            halted,
        }
    }

    /// Applies this snapshot to a fresh architectural state.
    pub fn apply(&self, arch: &mut ArchState) {
        arch.pc = self.pc;
        for i in 0..32 {
            arch.write(Reg(i as u8), self.regs[i]);
            arch.fwrite(FReg(i as u8), f64::from_bits(self.fregs[i]));
        }
    }
}

/// A drained-system checkpoint.
#[derive(Clone, PartialEq)]
pub struct Checkpoint {
    /// Per-hart architectural state.
    pub harts: Vec<HartState>,
    /// Full physical-memory image.
    pub memory: Vec<u8>,
    /// Program break.
    pub brk: u64,
    /// Guest stdout produced so far.
    pub stdout: Vec<u8>,
    /// Guest instructions committed before the checkpoint (carried into
    /// reporting only).
    pub insts_before: u64,
}

impl fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("harts", &self.harts.len())
            .field("memory_bytes", &self.memory.len())
            .field("insts_before", &self.insts_before)
            .finish()
    }
}

/// Error while decoding a checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Bad magic bytes or version.
    BadMagic,
    /// Image ended prematurely or lengths are inconsistent.
    Truncated,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a gem5sim checkpoint image"),
            CheckpointError::Truncated => write!(f, "checkpoint image is truncated"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let end = self.pos + 8;
        let s = self
            .b
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        let s = self
            .b
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
}

impl Checkpoint {
    /// Serializes to a portable byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.memory.len() + 1024);
        out.extend_from_slice(MAGIC);
        push_u64(&mut out, self.harts.len() as u64);
        for h in &self.harts {
            push_u64(&mut out, h.pc);
            for r in h.regs {
                push_u64(&mut out, r);
            }
            for r in h.fregs {
                push_u64(&mut out, r);
            }
            push_u64(&mut out, h.halted as u64);
        }
        push_u64(&mut out, self.brk);
        push_u64(&mut out, self.insts_before);
        push_u64(&mut out, self.stdout.len() as u64);
        out.extend_from_slice(&self.stdout);
        push_u64(&mut out, self.memory.len() as u64);
        out.extend_from_slice(&self.memory);
        out
    }

    /// Decodes a byte image.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] for malformed images.
    pub fn from_bytes(b: &[u8]) -> Result<Self, CheckpointError> {
        if b.len() < 8 || &b[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut r = Reader { b, pos: 8 };
        let n_harts = r.u64()? as usize;
        if n_harts > 4096 {
            return Err(CheckpointError::Truncated);
        }
        let mut harts = Vec::with_capacity(n_harts);
        for _ in 0..n_harts {
            let pc = r.u64()?;
            let mut regs = [0u64; 32];
            for v in regs.iter_mut() {
                *v = r.u64()?;
            }
            let mut fregs = [0u64; 32];
            for v in fregs.iter_mut() {
                *v = r.u64()?;
            }
            let halted = r.u64()? != 0;
            harts.push(HartState {
                pc,
                regs,
                fregs,
                halted,
            });
        }
        let brk = r.u64()?;
        let insts_before = r.u64()?;
        let stdout_len = r.u64()? as usize;
        let stdout = r.bytes(stdout_len)?.to_vec();
        let mem_len = r.u64()? as usize;
        let memory = r.bytes(mem_len)?.to_vec();
        Ok(Checkpoint {
            harts,
            memory,
            brk,
            stdout,
            insts_before,
        })
    }
}

impl System {
    /// Takes a checkpoint of the (drained) system — call after
    /// [`run`](System::run) has returned (e.g. stopped by `max_insts`).
    pub fn take_checkpoint(&self) -> Checkpoint {
        let m = self.machine_ref();
        let m = m.borrow();
        let harts = m
            .cpus
            .iter()
            .map(|c| HartState::capture(&c.core().arch, c.core().halted))
            .collect::<Vec<_>>();
        let memory = m.shared.phys.read_slice(0, m.shared.phys.size() as usize);
        Checkpoint {
            harts,
            memory,
            brk: m.shared.sys.brk,
            stdout: m.shared.sys.stdout.clone(),
            insts_before: m.cpus.iter().map(|c| c.core().committed).sum(),
        }
    }

    /// Builds a system restored from `ckpt`: architectural state and
    /// memory are recovered; caches, TLBs and predictors start cold (as
    /// in gem5). The `cfg` may use a *different CPU model* than the one
    /// that took the checkpoint — the boot-fast/measure-detailed flow.
    ///
    /// # Panics
    ///
    /// Panics if the hart count or memory size disagree with `cfg`.
    pub fn from_checkpoint(cfg: SystemConfig, program: Program, ckpt: &Checkpoint) -> System {
        assert_eq!(
            cfg.num_cpus,
            ckpt.harts.len(),
            "checkpoint hart count must match the configuration"
        );
        assert_eq!(
            cfg.mem_size as usize,
            ckpt.memory.len(),
            "checkpoint memory size must match the configuration"
        );
        let sys = System::new(cfg, program);
        {
            let m = sys.machine_ref();
            let mut m = m.borrow_mut();
            m.shared.phys.write_slice(0, &ckpt.memory);
            m.shared.sys.brk = ckpt.brk;
            m.shared.sys.stdout = ckpt.stdout.clone();
            for (c, h) in m.cpus.iter_mut().zip(&ckpt.harts) {
                h.apply(&mut c.core_mut().arch);
            }
        }
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuModel, SimMode};
    use gem5sim_workloads::{Scale, Workload};

    fn run_straight(w: Workload, model: CpuModel) -> (u64, Vec<u8>) {
        let mut sys = System::new(
            SystemConfig::new(model, SimMode::Se),
            w.program(Scale::Test),
        );
        let r = sys.run();
        (r.committed_insts, r.stdout)
    }

    #[test]
    fn checkpoint_restore_resumes_exactly() {
        let w = Workload::Sieve;
        let (straight_insts, straight_out) = run_straight(w, CpuModel::Atomic);

        // Fast-forward the first 60% with Atomic, checkpoint...
        let ff = straight_insts * 6 / 10;
        let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(ff);
        let mut boot = System::new(cfg, w.program(Scale::Test));
        boot.run();
        let ckpt = boot.take_checkpoint();
        drop(boot);

        // ...and finish on the detailed O3 model.
        let cfg = SystemConfig::new(CpuModel::O3, SimMode::Se);
        let mut detailed = System::from_checkpoint(cfg, w.program(Scale::Test), &ckpt);
        let r = detailed.run();

        assert_eq!(
            r.stdout, straight_out,
            "restored run must finish identically"
        );
        assert_eq!(
            ckpt.insts_before + r.committed_insts,
            straight_insts,
            "no instructions lost or duplicated across the checkpoint"
        );
    }

    #[test]
    fn serialization_roundtrips() {
        let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(500);
        let mut sys = System::new(cfg, Workload::Dedup.program(Scale::Test));
        sys.run();
        let ckpt = sys.take_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, back);
        assert!(bytes.len() > ckpt.memory.len());
    }

    #[test]
    fn malformed_images_are_rejected() {
        assert_eq!(
            Checkpoint::from_bytes(b"not a checkpoint"),
            Err(CheckpointError::BadMagic)
        );
        let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(100);
        let mut sys = System::new(cfg, Workload::Dedup.program(Scale::Test));
        sys.run();
        let bytes = sys.take_checkpoint().to_bytes();
        assert_eq!(
            Checkpoint::from_bytes(&bytes[..bytes.len() / 2]),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    #[should_panic(expected = "memory size")]
    fn mismatched_config_is_rejected() {
        let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(100);
        let mut sys = System::new(cfg, Workload::Dedup.program(Scale::Test));
        sys.run();
        let ckpt = sys.take_checkpoint();
        let mut other = SystemConfig::new(CpuModel::Atomic, SimMode::Se);
        other.mem_size *= 2;
        let _ = System::from_checkpoint(other, Workload::Dedup.program(Scale::Test), &ckpt);
    }
}
