//! Execution instrumentation.
//!
//! The paper profiles gem5 *as an application* with hardware performance
//! counters. We cannot attach a PMU to this process portably, so instead
//! every simulator handler reports its execution through the
//! [`ExecutionObserver`] trait: which (class, method) ran, on which object,
//! how much work its body did, and which simulator state it touched.
//! The `hosttrace` crate adapts this stream into a synthetic host
//! instruction stream, which the `hostmodel` crate profiles exactly like
//! VTune profiled gem5 on the Xeon.
//!
//! Observer calls are placed at the same granularity as gem5's own
//! functions (one per handler/method body), so the *function-call
//! structure* of a simulation — the quantity Fig. 15 of the paper
//! measures — is observed directly, not synthesized.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Classes of simulation objects, mirroring gem5's class hierarchy.
///
/// Used by the host-trace adapter to assign code-footprint and work
/// characteristics per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CompClass {
    /// The event queue / simulation kernel.
    EventQueue,
    /// `AtomicSimpleCPU`.
    CpuAtomic,
    /// `TimingSimpleCPU`.
    CpuTiming,
    /// `MinorCPU` pipeline.
    CpuMinor,
    /// `O3CPU` pipeline.
    CpuO3,
    /// Branch predictor (guest).
    BranchPred,
    /// Instruction decoder / microcode.
    Decoder,
    /// L1 instruction cache.
    Icache,
    /// L1 data cache.
    Dcache,
    /// Unified L2.
    L2,
    /// Coherent crossbar between L1s and L2.
    Xbar,
    /// DRAM controller.
    Dram,
    /// Guest TLBs and page-table walker.
    Tlb,
    /// Syscall emulation layer.
    Syscall,
    /// FS-mode platform devices (timer, console, firmware).
    Device,
    /// Statistics framework.
    Stats,
}

impl CompClass {
    /// All component classes.
    pub const ALL: [CompClass; 16] = [
        CompClass::EventQueue,
        CompClass::CpuAtomic,
        CompClass::CpuTiming,
        CompClass::CpuMinor,
        CompClass::CpuO3,
        CompClass::BranchPred,
        CompClass::Decoder,
        CompClass::Icache,
        CompClass::Dcache,
        CompClass::L2,
        CompClass::Xbar,
        CompClass::Dram,
        CompClass::Tlb,
        CompClass::Syscall,
        CompClass::Device,
        CompClass::Stats,
    ];
}

impl fmt::Display for CompClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One handler invocation, as reported to the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerCall {
    /// Component class of the invoked method.
    pub comp: CompClass,
    /// Method name (stable across runs; used as the host-function key).
    pub method: &'static str,
    /// Object instance (e.g. CPU index, cache id).
    pub obj: u16,
    /// Approximate host work of the method body, in abstract work units
    /// (≈ host µops before expansion by the trace adapter).
    pub work: u16,
}

/// Receiver of simulator execution reports.
///
/// Implementations must be cheap: the simulator calls these methods from
/// the innermost loops.
pub trait ExecutionObserver {
    /// A handler/method body ran.
    fn call(&mut self, call: HandlerCall);
    /// A handler touched simulator state (tag arrays, ROB entries,
    /// packets…) — drives the host-side *data* footprint.
    fn data(&mut self, comp: CompClass, obj: u16, offset: u32, bytes: u16, write: bool);
}

/// No-op observer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl ExecutionObserver for NullObserver {
    fn call(&mut self, _call: HandlerCall) {}
    fn data(&mut self, _comp: CompClass, _obj: u16, _offset: u32, _bytes: u16, _write: bool) {}
}

/// Shared observer handle passed through the simulator.
///
/// `Obs::none()` compiles to near-zero overhead (an `Option` check).
#[derive(Clone, Default)]
pub struct Obs(Option<Rc<RefCell<dyn ExecutionObserver>>>);

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Obs").field(&self.0.is_some()).finish()
    }
}

impl Obs {
    /// An observer that ignores everything.
    pub fn none() -> Self {
        Obs(None)
    }

    /// Wraps a concrete observer.
    pub fn new(obs: Rc<RefCell<dyn ExecutionObserver>>) -> Self {
        Obs(Some(obs))
    }

    /// Whether a real observer is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Reports a handler invocation.
    #[inline]
    pub fn call(&self, comp: CompClass, method: &'static str, obj: u16, work: u16) {
        if let Some(o) = &self.0 {
            o.borrow_mut().call(HandlerCall {
                comp,
                method,
                obj,
                work,
            });
        }
    }

    /// Reports a state touch.
    #[inline]
    pub fn data(&self, comp: CompClass, obj: u16, offset: u32, bytes: u16, write: bool) {
        if let Some(o) = &self.0 {
            o.borrow_mut().data(comp, obj, offset, bytes, write);
        }
    }
}

/// An observer that counts handler calls — handy in tests.
#[derive(Debug, Default)]
pub struct CountingObserver {
    /// Number of `call` reports.
    pub calls: u64,
    /// Number of `data` reports.
    pub datas: u64,
    /// Distinct (comp, method) pairs seen.
    pub methods: std::collections::BTreeSet<(CompClass, &'static str)>,
}

impl ExecutionObserver for CountingObserver {
    fn call(&mut self, call: HandlerCall) {
        self.calls += 1;
        self.methods.insert((call.comp, call.method));
    }
    fn data(&mut self, _comp: CompClass, _obj: u16, _offset: u32, _bytes: u16, _write: bool) {
        self.datas += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_observer_is_cheap_and_silent() {
        let obs = Obs::none();
        assert!(!obs.is_attached());
        obs.call(CompClass::EventQueue, "serviceOne", 0, 4);
        obs.data(CompClass::Icache, 0, 0, 64, false);
    }

    #[test]
    fn counting_observer_sees_calls() {
        let counter = Rc::new(RefCell::new(CountingObserver::default()));
        let obs = Obs::new(counter.clone());
        assert!(obs.is_attached());
        obs.call(CompClass::Icache, "access", 0, 8);
        obs.call(CompClass::Icache, "access", 1, 8);
        obs.call(CompClass::Dcache, "fill", 0, 12);
        obs.data(CompClass::Dcache, 0, 128, 64, true);
        let c = counter.borrow();
        assert_eq!(c.calls, 3);
        assert_eq!(c.datas, 1);
        assert_eq!(c.methods.len(), 2);
    }

    #[test]
    fn comp_class_display() {
        assert_eq!(CompClass::CpuO3.to_string(), "CpuO3");
        assert_eq!(CompClass::ALL.len(), 16);
    }
}
