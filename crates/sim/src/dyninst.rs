//! Functional-first dynamic instructions.
//!
//! All timing CPU models in this simulator follow the *functional-first*
//! (execute-at-fetch) organization used by several production simulators:
//! a [`FunctionalCore`] steps the architectural state in program order and
//! hands out [`DynInst`] records; the CPU models then account for *timing*
//! (pipelines, caches, mispredict recovery) over those records. This keeps
//! all four CPU models architecturally identical by construction while
//! letting them differ arbitrarily in timing detail — the same property
//! gem5 gets from its shared ISA definition.

use crate::mem::PhysMem;
use crate::observe::{CompClass, Obs};
use crate::syscall::{handle_ecall, EcallEffect, SyscallState};
use gem5sim_isa::exec::{step as exec_step, ArchState, StepAction};
use gem5sim_isa::{Inst, InstClass, MemSize, Program};

/// A dynamic memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Effective (virtual) address.
    pub addr: u64,
    /// Whether this is a store.
    pub write: bool,
    /// Access width.
    pub size: MemSize,
}

/// Resolved control-flow information for a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlInfo {
    /// Whether the transfer was taken (always true for jumps).
    pub taken: bool,
    /// The (taken) target.
    pub target: u64,
    /// Whether the instruction is a conditional branch.
    pub is_cond: bool,
    /// Whether the target comes from a register (indirect).
    pub is_indirect: bool,
}

/// One dynamic instruction: architectural effects already applied,
/// timing-relevant facts recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Global sequence number (per hart).
    pub seq: u64,
    /// PC of this instruction.
    pub pc: u64,
    /// The static instruction.
    pub inst: Inst,
    /// Static class (functional-unit selection).
    pub class: InstClass,
    /// Memory reference, if any.
    pub mem: Option<MemRef>,
    /// Control-flow resolution, if any.
    pub control: Option<ControlInfo>,
    /// Next PC after this instruction (follow-on fetch address).
    pub next_pc: u64,
    /// Whether this was an `ecall`.
    pub is_syscall: bool,
    /// Whether this instruction ends the hart (halt / exit).
    pub is_halt: bool,
    /// Guest microseconds this hart must stall (firmware delays).
    pub stall_us: u64,
}

/// In-order architectural core shared by all CPU models.
#[derive(Debug)]
pub struct FunctionalCore {
    /// Hart id.
    pub cpu_id: u16,
    /// Architectural state.
    pub arch: ArchState,
    /// Whether the hart has halted.
    pub halted: bool,
    /// Exit code, if the workload called `exit`.
    pub exit_code: Option<i64>,
    /// Pending timer interrupt (set by the platform, FS mode).
    pub irq_pending: bool,
    /// Interrupts taken.
    pub irqs_taken: u64,
    /// Instructions committed.
    pub committed: u64,
    in_irq: bool,
    saved_pc: u64,
    irq_handler: Option<u64>,
    fs_mode: bool,
    seq: u64,
}

impl FunctionalCore {
    /// Creates a core at `entry`. `irq_handler` (FS mode) is the PC of the
    /// workload's interrupt vector, if it provides one.
    pub fn new(cpu_id: u16, entry: u64, fs_mode: bool, irq_handler: Option<u64>) -> Self {
        FunctionalCore {
            cpu_id,
            arch: ArchState::new(entry),
            halted: false,
            exit_code: None,
            irq_pending: false,
            irqs_taken: 0,
            committed: 0,
            in_irq: false,
            saved_pc: 0,
            irq_handler,
            fs_mode,
            seq: 0,
        }
    }

    /// Whether the core is currently servicing an interrupt.
    pub fn in_irq(&self) -> bool {
        self.in_irq
    }

    /// Executes the next instruction in program order and returns its
    /// dynamic record.
    ///
    /// # Panics
    ///
    /// Panics if called on a halted core.
    pub fn step(
        &mut self,
        prog: &Program,
        phys: &mut PhysMem,
        sys: &mut SyscallState,
        now_ticks: u64,
        obs: &Obs,
    ) -> DynInst {
        self.step_hinted(prog, phys, sys, now_ticks, obs, None)
    }

    /// [`step`](Self::step) with a predecoded-instruction hint.
    ///
    /// The block tier passes the instruction its decoded block holds for
    /// the current `pc`, skipping the text-segment fetch. The hint is
    /// advisory: when an interrupt redirects the pc at this boundary the
    /// hint no longer describes the instruction about to execute and is
    /// discarded. Every path still emits the same observer calls as the
    /// unhinted step — the two must be byte-indistinguishable.
    pub fn step_hinted(
        &mut self,
        prog: &Program,
        phys: &mut PhysMem,
        sys: &mut SyscallState,
        now_ticks: u64,
        obs: &Obs,
        hint: Option<Inst>,
    ) -> DynInst {
        assert!(!self.halted, "step() on a halted core");

        // Interrupt entry happens at an instruction boundary.
        let mut hint = hint;
        if self.fs_mode && self.irq_pending && !self.in_irq {
            if let Some(handler) = self.irq_handler {
                obs.call(CompClass::Device, "takeInterrupt", self.cpu_id, 35);
                self.saved_pc = self.arch.pc;
                self.arch.pc = handler;
                self.in_irq = true;
                self.irqs_taken += 1;
                hint = None;
            }
            self.irq_pending = false;
        }

        let pc = self.arch.pc;
        let inst = match hint {
            Some(i) => {
                debug_assert_eq!(prog.fetch(pc), Some(i), "stale block-tier hint at {pc:#x}");
                i
            }
            None => match prog.fetch(pc) {
                Some(i) => i,
                None => {
                    // Running off the text segment halts the hart (gem5 would
                    // raise a fault; our workloads always end in halt/exit, so
                    // this is purely defensive).
                    self.halted = true;
                    return self.make(pc, Inst::Halt, StepAction::Halt, 0);
                }
            },
        };
        obs.call(CompClass::Decoder, "decodeInst", self.cpu_id, 16);

        let action = exec_step(&mut self.arch, inst, phys);
        let mut stall_us = 0;
        match action {
            StepAction::Halt => {
                self.halted = true;
            }
            StepAction::Syscall => {
                match handle_ecall(&mut self.arch, phys, sys, now_ticks, obs, self.cpu_id) {
                    EcallEffect::Continue => {}
                    EcallEffect::Exit(code) => {
                        self.halted = true;
                        self.exit_code = Some(code);
                    }
                    EcallEffect::Iret => {
                        self.arch.pc = self.saved_pc;
                        self.in_irq = false;
                    }
                    EcallEffect::Delay(us) => stall_us = us,
                }
            }
            StepAction::Iret => {
                self.arch.pc = self.saved_pc;
                self.in_irq = false;
            }
            _ => {}
        }
        self.committed += 1;
        self.make(pc, inst, action, stall_us)
    }

    fn make(&mut self, pc: u64, inst: Inst, action: StepAction, stall_us: u64) -> DynInst {
        let seq = self.seq;
        self.seq += 1;
        let mem = match action {
            StepAction::Load { addr, size, .. } => Some(MemRef {
                addr,
                write: false,
                size,
            }),
            StepAction::Store { addr, size, .. } => Some(MemRef {
                addr,
                write: true,
                size,
            }),
            _ => None,
        };
        let control = match action {
            StepAction::Branch { taken, target } => Some(ControlInfo {
                taken,
                target,
                is_cond: true,
                is_indirect: false,
            }),
            StepAction::Jump { target } => Some(ControlInfo {
                taken: true,
                target,
                is_cond: false,
                is_indirect: matches!(inst, Inst::Jalr { .. }),
            }),
            // iret is an indirect jump to the saved PC (now in arch.pc).
            StepAction::Iret => Some(ControlInfo {
                taken: true,
                target: self.arch.pc,
                is_cond: false,
                is_indirect: true,
            }),
            _ => None,
        };
        DynInst {
            seq,
            pc,
            inst,
            class: inst.class(),
            mem,
            control,
            next_pc: self.arch.pc,
            is_syscall: matches!(action, StepAction::Syscall),
            is_halt: self.halted,
            stall_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem5sim_isa::asm::ProgramBuilder;
    use gem5sim_isa::Reg;

    fn drive(core: &mut FunctionalCore, prog: &Program, phys: &mut PhysMem) -> Vec<DynInst> {
        let mut sys = SyscallState::new(0x1000);
        let obs = Obs::none();
        let mut out = Vec::new();
        while !core.halted && out.len() < 10_000 {
            out.push(core.step(prog, phys, &mut sys, 0, &obs));
        }
        out
    }

    #[test]
    fn records_sequence_and_control() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 2)
            .label("loop")
            .addi(Reg::T0, Reg::T0, -1)
            .bne(Reg::T0, Reg::ZERO, "loop")
            .halt();
        let p = b.assemble().unwrap();
        let mut phys = PhysMem::new(4096);
        let mut core = FunctionalCore::new(0, p.entry_pc(), false, None);
        let trace = drive(&mut core, &p, &mut phys);
        // li, (addi, bne) x2, halt = 6 dynamic insts
        assert_eq!(trace.len(), 6);
        assert_eq!(core.committed, 6);
        let seqs: Vec<u64> = trace.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        let b1 = trace[2].control.unwrap();
        assert!(b1.taken && b1.is_cond);
        let b2 = trace[4].control.unwrap();
        assert!(!b2.taken);
        assert!(trace[5].is_halt);
    }

    #[test]
    fn memory_refs_are_recorded_and_performed() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 256)
            .li(Reg::A0, 7)
            .sd(Reg::A0, Reg::T0, 0)
            .ld(Reg::A1, Reg::T0, 0)
            .halt();
        let p = b.assemble().unwrap();
        let mut phys = PhysMem::new(4096);
        let mut core = FunctionalCore::new(0, p.entry_pc(), false, None);
        let trace = drive(&mut core, &p, &mut phys);
        let st = trace[2].mem.unwrap();
        assert!(st.write);
        assert_eq!(st.addr, 256);
        let ld = trace[3].mem.unwrap();
        assert!(!ld.write);
        assert_eq!(core.arch.read(Reg::A1), 7);
    }

    #[test]
    fn exit_syscall_halts_with_code() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::A7, crate::syscall::nr::EXIT as i64)
            .li(Reg::A0, 5)
            .ecall();
        let p = b.assemble().unwrap();
        let mut phys = PhysMem::new(4096);
        let mut core = FunctionalCore::new(0, p.entry_pc(), false, None);
        let trace = drive(&mut core, &p, &mut phys);
        assert!(trace.last().unwrap().is_halt);
        assert_eq!(core.exit_code, Some(5));
    }

    #[test]
    fn irq_redirects_and_iret_returns() {
        let mut b = ProgramBuilder::new();
        // main: spin 3 adds then halt; handler: bump counter, iret.
        b.li(Reg::S8, 512) // counter address (handler-reserved register)
            .addi(Reg::A0, Reg::A0, 1)
            .addi(Reg::A0, Reg::A0, 1)
            .addi(Reg::A0, Reg::A0, 1)
            .halt()
            .label("__irq_handler")
            .ld(Reg::T6, Reg::S8, 0)
            .addi(Reg::T6, Reg::T6, 1)
            .sd(Reg::T6, Reg::S8, 0)
            .iret();
        let p = b.assemble().unwrap();
        let handler = p.symbol("__irq_handler");
        let mut phys = PhysMem::new(4096);
        let mut core = FunctionalCore::new(0, p.entry_pc(), true, handler);
        let mut sys = SyscallState::new(0x1000);
        let obs = Obs::none();

        // Execute the first instruction, then raise an interrupt.
        core.step(&p, &mut phys, &mut sys, 0, &obs);
        core.irq_pending = true;
        let d = core.step(&p, &mut phys, &mut sys, 0, &obs);
        assert_eq!(d.pc, handler.unwrap(), "redirected into the handler");
        assert!(core.in_irq());
        // Drain: handler runs, irets, main resumes and halts.
        while !core.halted {
            core.step(&p, &mut phys, &mut sys, 0, &obs);
        }
        assert_eq!(core.irqs_taken, 1);
        assert_eq!(core.arch.read(Reg::A0), 3, "main work unaffected");
        assert_eq!(PhysMem::read(&phys, 512, MemSize::D), 1, "handler ran once");
    }

    #[test]
    fn hint_is_used_when_valid_and_discarded_on_irq_redirect() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::A0, 9).halt().label("__irq_handler").iret();
        let p = b.assemble().unwrap();
        let handler = p.symbol("__irq_handler");
        let mut phys = PhysMem::new(1024);
        let mut sys = SyscallState::new(0x1000);
        let obs = Obs::none();

        // Valid hint: behaves exactly like a fetch.
        let mut core = FunctionalCore::new(0, p.entry_pc(), false, None);
        let hint = p.fetch(p.entry_pc());
        let d = core.step_hinted(&p, &mut phys, &mut sys, 0, &obs, hint);
        assert_eq!(d.inst, hint.unwrap());
        assert_eq!(core.arch.read(Reg::A0), 9);

        // Pending irq redirects the pc, so the hint (for the old pc)
        // must be dropped and the handler's instruction fetched instead.
        let mut core = FunctionalCore::new(0, p.entry_pc(), true, handler);
        core.irq_pending = true;
        let d = core.step_hinted(&p, &mut phys, &mut sys, 0, &obs, hint);
        assert_eq!(d.pc, handler.unwrap());
        assert_eq!(d.inst, Inst::Iret);
    }

    #[test]
    fn irq_ignored_without_handler_or_in_se() {
        let mut b = ProgramBuilder::new();
        b.nop().halt();
        let p = b.assemble().unwrap();
        let mut phys = PhysMem::new(1024);
        let mut core = FunctionalCore::new(0, p.entry_pc(), false, None);
        core.irq_pending = true;
        let mut sys = SyscallState::new(0);
        let d = core.step(&p, &mut phys, &mut sys, 0, &Obs::none());
        assert_eq!(d.pc, p.entry_pc(), "no redirect in SE mode");
    }

    #[test]
    #[should_panic(expected = "halted")]
    fn stepping_halted_core_panics() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.assemble().unwrap();
        let mut phys = PhysMem::new(1024);
        let mut core = FunctionalCore::new(0, p.entry_pc(), false, None);
        let mut sys = SyscallState::new(0);
        core.step(&p, &mut phys, &mut sys, 0, &Obs::none());
        core.step(&p, &mut phys, &mut sys, 0, &Obs::none());
    }
}
