//! `gem5sim` — a gem5-like discrete-event architectural simulator.
//!
//! This crate is the Rust stand-in for the gem5 simulator profiled by
//! *Profiling gem5 Simulator* (ISPASS 2023). It reproduces gem5's
//! structural skeleton — the properties the paper attributes gem5's host
//! behaviour to:
//!
//! * a central **event queue** servicing callbacks on polymorphic
//!   simulation objects ([`gem5sim_event`]);
//! * four **CPU models** of increasing detail — [`CpuModel::Atomic`],
//!   [`CpuModel::Timing`], [`CpuModel::Minor`] (in-order pipeline) and
//!   [`CpuModel::O3`] (out-of-order, ROB/IQ/LSQ, tournament branch
//!   predictor) — sharing one architectural executor so all models compute
//!   identical results;
//! * a **classic memory system**: per-CPU L1I/L1D, shared L2, DRAM with
//!   occupancy, and (in full-system mode) TLBs with page-table-walk costs;
//! * **SE** (syscall emulation) and **FS** (full-system: TLBs + timer
//!   interrupts + firmware calls) modes;
//! * an [`observe::ExecutionObserver`] instrumentation layer through which
//!   every simulator handler reports its execution, so a host-level model
//!   can profile this simulator the way VTune profiled gem5.
//!
//! # Quick start
//!
//! ```
//! use gem5sim::{config::{CpuModel, SimMode, SystemConfig}, system::System};
//! use gem5sim_isa::{asm::ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::A0, 6).li(Reg::A1, 7).mul(Reg::A0, Reg::A0, Reg::A1).halt();
//! let prog = b.assemble().unwrap();
//!
//! let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se);
//! let mut sys = System::new(cfg, prog);
//! let result = sys.run();
//! assert_eq!(result.committed_insts, 4);
//! ```

pub mod bp;
pub mod checkpoint;
pub mod config;
pub mod cpu;
pub mod dyninst;
pub mod mem;
pub mod observe;
pub mod syscall;
pub mod system;
pub mod tlb;
pub mod trace;

pub use config::{CacheConfig, CpuModel, ExecTier, SimMode, SystemConfig};
pub use observe::{CompClass, ExecutionObserver, HandlerCall, Obs};
pub use system::{SimResult, System};
