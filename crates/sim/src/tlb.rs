//! Guest TLBs (full-system mode).
//!
//! The simulated target uses flat (identity) translation, but FS-mode
//! accesses still pay translation costs and generate page-table-walk
//! traffic, exactly as gem5's FS mode does relative to SE mode.

use crate::observe::{CompClass, Obs};

/// A fully-associative guest TLB with FIFO-ish (round-robin) replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<u64>, // virtual page numbers; u64::MAX = invalid
    next_victim: usize,
    page_shift: u32,
    /// Lookups performed.
    pub lookups: u64,
    /// Misses (walks) performed.
    pub misses: u64,
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbOutcome {
    /// Whether the translation was cached.
    pub hit: bool,
    /// Extra latency in guest cycles (0 on hit, walk cost on miss).
    pub walk_cycles: u64,
}

/// Guest cycles charged for a two-level page-table walk (the walker's
/// memory accesses typically hit in L2).
pub const WALK_CYCLES: u64 = 30;

impl Tlb {
    /// Builds a TLB with `entries` slots for `page_size`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or `entries` is zero.
    pub fn new(entries: usize, page_size: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![u64::MAX; entries],
            next_victim: 0,
            page_shift: page_size.trailing_zeros(),
            lookups: 0,
            misses: 0,
        }
    }

    /// Translates `vaddr`; on a miss, installs the translation and
    /// charges a walk.
    pub fn translate(&mut self, vaddr: u64, obs: &Obs, obj: u16) -> TlbOutcome {
        self.lookups += 1;
        let vpn = vaddr >> self.page_shift;
        obs.call(CompClass::Tlb, "lookup", obj, 12);
        if self.entries.contains(&vpn) {
            return TlbOutcome {
                hit: true,
                walk_cycles: 0,
            };
        }
        self.misses += 1;
        obs.call(CompClass::Tlb, "tableWalk", obj, 70);
        obs.data(CompClass::Tlb, obj, (vpn & 0xFFFF) as u32, 16, true);
        self.entries[self.next_victim] = vpn;
        self.next_victim = (self.next_victim + 1) % self.entries.len();
        TlbOutcome {
            hit: false,
            walk_cycles: WALK_CYCLES,
        }
    }

    /// TLB miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 4096);
        let obs = Obs::none();
        assert!(!t.translate(0x1000, &obs, 0).hit);
        assert!(t.translate(0x1FFF, &obs, 0).hit, "same page");
        assert!(!t.translate(0x2000, &obs, 0).hit, "next page");
        assert_eq!(t.lookups, 3);
        assert_eq!(t.misses, 2);
    }

    #[test]
    fn capacity_misses_when_working_set_exceeds_entries() {
        let mut t = Tlb::new(2, 4096);
        let obs = Obs::none();
        for round in 0..3 {
            for page in 0..3u64 {
                let out = t.translate(page * 4096, &obs, 0);
                if round == 0 {
                    assert!(!out.hit);
                }
            }
        }
        // 3 pages cycling through 2 entries with FIFO: every access misses.
        assert_eq!(t.misses, 9);
    }

    #[test]
    fn larger_pages_increase_reach() {
        let obs = Obs::none();
        let mut small = Tlb::new(2, 4096);
        let mut large = Tlb::new(2, 16384);
        // Touch 8 KB of addresses: 2 pages at 4 KB, 1 page at 16 KB.
        for addr in (0..8192u64).step_by(4096) {
            small.translate(addr, &obs, 0);
            large.translate(addr, &obs, 0);
        }
        assert_eq!(small.misses, 2);
        assert_eq!(large.misses, 1);
    }

    #[test]
    fn walk_has_cost() {
        let mut t = Tlb::new(4, 4096);
        let obs = Obs::none();
        let out = t.translate(0, &obs, 0);
        assert_eq!(out.walk_cycles, WALK_CYCLES);
        let out = t.translate(0, &obs, 0);
        assert_eq!(out.walk_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let _ = Tlb::new(4, 3000);
    }
}
