//! Instruction tracing — the equivalent of gem5's `--debug-flags=Exec`
//! trace output.
//!
//! A [`TraceEntry`] is produced for every committed instruction when a
//! tracer is attached to the [`System`](crate::system::System); the
//! [`format_entry`] renderer mimics gem5's `Exec` trace line format:
//!
//! ```text
//! 500:  system.cpu T0 : 0x400004    @ li x10, 6          : IntAlu  D=0x6
//! ```

use crate::dyninst::DynInst;
use gem5sim_event::Tick;
use std::cell::RefCell;
use std::rc::Rc;

/// One committed-instruction trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Simulated tick of commit.
    pub tick: Tick,
    /// Hart id.
    pub cpu: u16,
    /// PC.
    pub pc: u64,
    /// Disassembly.
    pub disasm: String,
    /// Instruction class name.
    pub class: String,
    /// Effective address for memory ops.
    pub ea: Option<u64>,
    /// Whether a control transfer was taken.
    pub taken: Option<bool>,
}

impl TraceEntry {
    /// Builds an entry from a dynamic instruction.
    pub fn from_dyninst(tick: Tick, cpu: u16, d: &DynInst) -> Self {
        TraceEntry {
            tick,
            cpu,
            pc: d.pc,
            disasm: d.inst.to_string(),
            class: format!("{:?}", d.class),
            ea: d.mem.map(|m| m.addr),
            taken: d.control.map(|c| c.taken),
        }
    }
}

/// Renders an entry in gem5's `Exec`-flag style.
pub fn format_entry(e: &TraceEntry) -> String {
    let mut line = format!(
        "{:>10}:  system.cpu T{} : {:#010x}  @ {:<28} : {}",
        e.tick, e.cpu, e.pc, e.disasm, e.class
    );
    if let Some(ea) = e.ea {
        line.push_str(&format!("  A={ea:#x}"));
    }
    if let Some(taken) = e.taken {
        line.push_str(if taken { "  taken" } else { "  not-taken" });
    }
    line
}

/// Receiver of trace entries.
pub trait InstTracer {
    /// Called once per committed instruction, in program order per hart.
    fn trace(&mut self, entry: &TraceEntry);
}

/// Collects entries into a vector (tests, small runs).
#[derive(Debug, Default)]
pub struct VecTracer {
    /// Collected entries.
    pub entries: Vec<TraceEntry>,
}

impl InstTracer for VecTracer {
    fn trace(&mut self, entry: &TraceEntry) {
        self.entries.push(entry.clone());
    }
}

/// Writes formatted lines to any `io::Write` (e.g. stdout) as they occur.
pub struct WriteTracer<W: std::io::Write> {
    w: W,
}

impl<W: std::io::Write> WriteTracer<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        WriteTracer { w }
    }
}

impl<W: std::io::Write> InstTracer for WriteTracer<W> {
    fn trace(&mut self, entry: &TraceEntry) {
        let _ = writeln!(self.w, "{}", format_entry(entry));
    }
}

impl<W: std::io::Write> std::fmt::Debug for WriteTracer<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WriteTracer")
    }
}

/// Shared tracer handle (mirrors [`Obs`](crate::observe::Obs)).
#[derive(Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<dyn InstTracer>>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Tracer").field(&self.0.is_some()).finish()
    }
}

impl Tracer {
    /// No tracing.
    pub fn none() -> Self {
        Tracer(None)
    }

    /// Wraps a tracer.
    pub fn new(t: Rc<RefCell<dyn InstTracer>>) -> Self {
        Tracer(Some(t))
    }

    /// Whether a tracer is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Emits an entry (no-op when unattached).
    #[inline]
    pub fn trace(&self, tick: Tick, cpu: u16, d: &DynInst) {
        if let Some(t) = &self.0 {
            t.borrow_mut()
                .trace(&TraceEntry::from_dyninst(tick, cpu, d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuModel, SimMode, SystemConfig};
    use crate::system::System;
    use gem5sim_isa::asm::ProgramBuilder;
    use gem5sim_isa::Reg;

    fn traced_run(model: CpuModel) -> Vec<TraceEntry> {
        let mut b = ProgramBuilder::new();
        b.li(Reg::A0, 5)
            .li(Reg::T0, 0x2000)
            .sd(Reg::A0, Reg::T0, 0)
            .ld(Reg::A1, Reg::T0, 0)
            .beq(Reg::A0, Reg::A1, "same")
            .nop()
            .label("same")
            .halt();
        let prog = b.assemble().unwrap();
        let tracer = Rc::new(RefCell::new(VecTracer::default()));
        let mut sys = System::new(SystemConfig::new(model, SimMode::Se), prog);
        sys.set_tracer(Tracer::new(tracer.clone()));
        sys.run();
        drop(sys);
        Rc::try_unwrap(tracer).unwrap().into_inner().entries
    }

    #[test]
    fn trace_captures_every_instruction_in_order() {
        let t = traced_run(CpuModel::Atomic);
        assert_eq!(t.len(), 6, "li, li, sd, ld, beq(taken), halt");
        assert!(t
            .windows(2)
            .all(|w| w[0].pc < w[1].pc || w[0].taken.is_some()));
        let st = &t[2];
        assert_eq!(st.ea, Some(0x2000));
        assert!(st.disasm.starts_with("sd"));
        let br = &t[4];
        assert_eq!(br.taken, Some(true));
    }

    #[test]
    fn all_models_produce_identical_traces_modulo_ticks() {
        let strip = |v: Vec<TraceEntry>| -> Vec<(u64, String)> {
            v.into_iter().map(|e| (e.pc, e.disasm)).collect()
        };
        let a = strip(traced_run(CpuModel::Atomic));
        for m in [CpuModel::Timing, CpuModel::Minor, CpuModel::O3] {
            assert_eq!(a, strip(traced_run(m)), "{m:?}");
        }
    }

    #[test]
    fn format_matches_gem5_style() {
        let e = TraceEntry {
            tick: 500,
            cpu: 0,
            pc: 0x400004,
            disasm: "li x10, 6".into(),
            class: "IntAlu".into(),
            ea: None,
            taken: None,
        };
        let line = format_entry(&e);
        assert!(line.contains("system.cpu T0"));
        assert!(line.contains("0x00400004"));
        assert!(line.contains(": IntAlu"));
    }

    #[test]
    fn write_tracer_streams_lines() {
        let buf: Vec<u8> = Vec::new();
        let tracer = Rc::new(RefCell::new(WriteTracer::new(buf)));
        let mut b = ProgramBuilder::new();
        b.nop().halt();
        let mut sys = System::new(
            SystemConfig::new(CpuModel::Atomic, SimMode::Se),
            b.assemble().unwrap(),
        );
        sys.set_tracer(Tracer::new(tracer.clone()));
        sys.run();
        drop(sys);
        let inner = Rc::try_unwrap(tracer).unwrap().into_inner();
        let text = String::from_utf8(inner.w).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("nop"));
    }
}
