//! The composed memory hierarchy: per-CPU L1I/L1D → shared L2 → DRAM.
//!
//! Timing is computed synchronously: an access walks down the hierarchy,
//! updating cache state and occupancy, and returns its total latency in
//! ticks; event-driven CPU models schedule their completion events at
//! `now + latency`. Every step reports itself to the
//! [`ExecutionObserver`](crate::observe::ExecutionObserver), because in
//! gem5 each of these steps is a (virtual) function call — the very calls
//! whose host-side cost the paper measures.

use crate::config::SystemConfig;
use crate::mem::cache::{Cache, CacheStats};
use crate::mem::dram::Dram;
use crate::observe::{CompClass, Obs};
use gem5sim_event::{Frequency, Tick};

/// What kind of access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I path).
    InstFetch,
    /// Data read (L1D path).
    DataRead,
    /// Data write (L1D path, write-allocate).
    DataWrite,
}

/// The memory system below the CPUs.
#[derive(Debug)]
pub struct MemSystem {
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    clock: Frequency,
    l2_busy_until: Tick,
}

// Approximate host work (abstract units ≈ µops) of each handler body;
// these mirror the relative sizes of the corresponding gem5 functions.
const W_ACCESS: u16 = 30;
const W_MISS: u16 = 45;
const W_FILL: u16 = 25;
const W_WB: u16 = 20;
const W_XBAR: u16 = 18;
const W_DRAM: u16 = 60;

impl MemSystem {
    /// Builds the hierarchy for `cfg.num_cpus` CPUs.
    pub fn new(cfg: &SystemConfig) -> Self {
        MemSystem {
            l1i: (0..cfg.num_cpus).map(|_| Cache::new(cfg.l1i)).collect(),
            l1d: (0..cfg.num_cpus).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram_latency_ns, cfg.dram_bw_bytes_per_sec, cfg.l2.line),
            clock: cfg.clock,
            l2_busy_until: 0,
        }
    }

    fn cyc(&self, cycles: u64) -> Tick {
        self.clock.cycles_to_ticks(cycles)
    }

    /// Performs an access for CPU `cpu`, returning the total latency in
    /// ticks. Updates cache state, occupancy and statistics, and emits
    /// observer reports for every handler on the path.
    pub fn access(
        &mut self,
        cpu: usize,
        kind: AccessKind,
        addr: u64,
        now: Tick,
        obs: &Obs,
    ) -> Tick {
        self.access_inner(cpu, kind, addr, now, obs, false)
    }

    /// Atomic-mode access: updates cache/TLB state and statistics (cache
    /// warming works, as in gem5's atomic mode) but models no contention —
    /// occupancy trackers are left untouched.
    pub fn access_atomic(
        &mut self,
        cpu: usize,
        kind: AccessKind,
        addr: u64,
        now: Tick,
        obs: &Obs,
    ) -> Tick {
        self.access_inner(cpu, kind, addr, now, obs, true)
    }

    fn access_inner(
        &mut self,
        cpu: usize,
        kind: AccessKind,
        addr: u64,
        now: Tick,
        obs: &Obs,
        atomic: bool,
    ) -> Tick {
        let (comp, write) = match kind {
            AccessKind::InstFetch => (CompClass::Icache, false),
            AccessKind::DataRead => (CompClass::Dcache, false),
            AccessKind::DataWrite => (CompClass::Dcache, true),
        };
        obs.call(
            comp,
            if atomic { "recvAtomicAccess" } else { "access" },
            cpu as u16,
            W_ACCESS,
        );
        let (hit, l1_wb, set, tag_bytes, l1_hit_cycles) = {
            let l1 = match kind {
                AccessKind::InstFetch => &mut self.l1i[cpu],
                _ => &mut self.l1d[cpu],
            };
            // Tag-array touch: the host reads this cache's tag storage.
            let set = l1.set_index(addr);
            let tag_bytes = (l1.config().assoc * 8) as u16;
            obs.data(
                comp,
                cpu as u16,
                (set * l1.config().assoc * 8) as u32,
                tag_bytes,
                false,
            );
            let out = l1.access(addr, write);
            (
                out.hit,
                out.writeback,
                set,
                tag_bytes,
                l1.config().hit_latency,
            )
        };
        let mut lat = self.cyc(l1_hit_cycles);
        if hit {
            return lat;
        }

        // L1 miss: MSHR allocation, crossbar, L2 lookup. The atomic mode
        // walks a much smaller fast path than the timing machinery.
        if atomic {
            obs.call(comp, "recvAtomicMiss", cpu as u16, W_MISS - 15);
            obs.call(CompClass::Xbar, "recvAtomicXbar", 0, W_XBAR - 8);
            obs.call(CompClass::L2, "recvAtomicAccess", 0, W_ACCESS);
        } else {
            obs.call(comp, "handleMiss", cpu as u16, W_MISS);
            obs.call(CompClass::Xbar, "recvTimingReq", 0, W_XBAR);
            obs.call(CompClass::L2, "access", 0, W_ACCESS);
        }
        let l2set = self.l2.set_index(addr);
        let l2_tag_bytes = (self.l2.config().assoc * 8) as u16;
        obs.data(
            CompClass::L2,
            0,
            (l2set * self.l2.config().assoc * 8) as u32,
            l2_tag_bytes,
            false,
        );

        // L2 port occupancy (contention between CPUs; skipped in atomic
        // mode). The port is busy for the full line transfer — 16 bytes
        // per cycle — so co-running harts that miss their L1s queue
        // behind each other, while a single blocking hart (whose L2
        // accesses are at least a hit latency apart) never waits.
        if atomic {
            lat += self.cyc(self.l2.config().hit_latency);
        } else {
            let transfer = (self.l2.config().line as u64).div_ceil(16);
            let start = (now + lat).max(self.l2_busy_until);
            let queue = start - (now + lat);
            self.l2_busy_until = start + self.cyc(transfer);
            lat += queue + self.cyc(self.l2.config().hit_latency);
        }

        let l2_out = self.l2.access(addr, false);
        if !l2_out.hit {
            obs.call(
                CompClass::L2,
                if atomic {
                    "recvAtomicMiss"
                } else {
                    "handleMiss"
                },
                0,
                W_MISS,
            );
            obs.call(
                CompClass::Dram,
                if atomic {
                    "recvAtomicDram"
                } else {
                    "recvTimingReq"
                },
                0,
                W_DRAM,
            );
            lat += if atomic {
                self.dram.access_atomic()
            } else {
                self.dram.access(now + lat)
            };
            obs.call(CompClass::L2, "fill", 0, W_FILL);
            if let Some(wb) = l2_out.writeback {
                // L2 victim writeback to DRAM (off the critical path).
                obs.call(CompClass::Dram, "writeback", 0, W_WB);
                let _ = wb;
                if !atomic {
                    let _ = self.dram.access(now + lat);
                }
            }
        }
        obs.call(
            comp,
            if atomic { "recvAtomicFill" } else { "fill" },
            cpu as u16,
            W_FILL,
        );
        obs.data(
            comp,
            cpu as u16,
            (set as u32) * tag_bytes as u32,
            tag_bytes,
            true,
        );

        if let Some(wb) = l1_wb {
            // L1 dirty victim written back into L2 (off the critical path).
            obs.call(comp, "writeback", cpu as u16, W_WB);
            obs.call(CompClass::L2, "recvWriteback", 0, W_WB);
            let _ = self.l2.access(wb, true);
        }
        lat
    }

    /// Latency of an L1 hit for `kind`, in ticks (used by CPU models for
    /// scheduling decisions).
    pub fn l1_hit_latency(&self, kind: AccessKind) -> Tick {
        let cycles = match kind {
            AccessKind::InstFetch => self.l1i[0].config().hit_latency,
            _ => self.l1d[0].config().hit_latency,
        };
        self.cyc(cycles)
    }

    /// Aggregated L1I stats across CPUs.
    pub fn l1i_stats(&self) -> CacheStats {
        sum_stats(self.l1i.iter().map(|c| c.stats()))
    }

    /// Aggregated L1D stats across CPUs.
    pub fn l1d_stats(&self) -> CacheStats {
        sum_stats(self.l1d.iter().map(|c| c.stats()))
    }

    /// L2 stats.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// DRAM demand accesses.
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses
    }
}

fn sum_stats(iter: impl Iterator<Item = CacheStats>) -> CacheStats {
    iter.fold(CacheStats::default(), |a, s| CacheStats {
        accesses: a.accesses + s.accesses,
        misses: a.misses + s.misses,
        writebacks: a.writebacks + s.writebacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuModel, SimMode, SystemConfig};

    fn small_system() -> MemSystem {
        let mut cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se);
        cfg.l1i.size = 512;
        cfg.l1i.assoc = 2;
        cfg.l1d = cfg.l1i;
        cfg.l2.size = 4096;
        cfg.l2.assoc = 4;
        MemSystem::new(&cfg)
    }

    #[test]
    fn cold_miss_costs_more_than_hit() {
        let mut m = small_system();
        let obs = Obs::none();
        let miss = m.access(0, AccessKind::DataRead, 0x2000, 0, &obs);
        let hit = m.access(0, AccessKind::DataRead, 0x2000, miss, &obs);
        assert!(miss > hit, "miss {miss} must exceed hit {hit}");
        assert_eq!(m.l1d_stats().misses, 1);
        assert_eq!(m.l1d_stats().accesses, 2);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let mut m = small_system();
        let obs = Obs::none();
        let dram_lat = m.access(0, AccessKind::DataRead, 0x4000, 0, &obs);
        // Evict from tiny L1 by touching conflicting lines, but keep in L2.
        for i in 1..=2u64 {
            m.access(0, AccessKind::DataRead, 0x4000 + i * 512, 0, &obs);
        }
        let l2_lat = m.access(0, AccessKind::DataRead, 0x4000, 0, &obs);
        assert!(l2_lat < dram_lat, "l2 {l2_lat} vs dram {dram_lat}");
        assert!(l2_lat > m.l1_hit_latency(AccessKind::DataRead));
    }

    #[test]
    fn inst_and_data_paths_are_separate() {
        let mut m = small_system();
        let obs = Obs::none();
        m.access(0, AccessKind::InstFetch, 0x8000, 0, &obs);
        assert_eq!(m.l1i_stats().accesses, 1);
        assert_eq!(m.l1d_stats().accesses, 0);
    }

    #[test]
    fn observer_sees_the_path() {
        use crate::observe::CountingObserver;
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut m = small_system();
        let ctr = Rc::new(RefCell::new(CountingObserver::default()));
        let obs = Obs::new(ctr.clone());
        m.access(0, AccessKind::DataRead, 0x2000, 0, &obs); // full miss path
        m.access(0, AccessKind::DataRead, 0x2000, 0, &obs); // hit path
        let c = ctr.borrow();
        assert!(c.calls >= 7, "miss path + hit path calls, got {}", c.calls);
        assert!(c.methods.contains(&(CompClass::Dram, "recvTimingReq")));
        assert!(c.methods.contains(&(CompClass::Dcache, "access")));
    }

    #[test]
    fn dram_accesses_counted() {
        let mut m = small_system();
        let obs = Obs::none();
        for i in 0..64u64 {
            m.access(0, AccessKind::DataRead, i * 4096, 0, &obs);
        }
        assert!(m.dram_accesses() >= 64);
    }
}
