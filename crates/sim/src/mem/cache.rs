//! A set-associative, write-back, write-allocate guest cache with true
//! LRU replacement — gem5's "classic" cache model.

use crate::config::CacheConfig;

/// Result of a cache lookup-with-allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address of a dirty victim that must be written back, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; 0 if no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Guest cache state (timing is handled by the hierarchy, not here).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    lines: Vec<Line>, // sets * assoc, row-major by set
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); (sets * cfg.assoc) as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Set index for an address (also used by instrumentation to report
    /// which part of the tag array a lookup touched).
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr / self.cfg.line) % self.sets
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.cfg.line * self.cfg.line
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.cfg.line / self.sets
    }

    /// Looks up `addr`; on miss, allocates the line (evicting LRU).
    /// Marks the line dirty when `write`.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_index(addr) as usize;
        let tag = self.tag(addr);
        let base = set * self.cfg.assoc as usize;
        let ways = &mut self.lines[base..base + self.cfg.assoc as usize];

        // Hit path.
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.tick;
            l.dirty |= write;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        // Miss: victimize invalid first, else true-LRU.
        self.stats.misses += 1;
        let victim = match ways.iter_mut().find(|l| !l.valid) {
            Some(l) => l,
            None => ways.iter_mut().min_by_key(|l| l.lru).expect("assoc > 0"),
        };
        let writeback = (victim.valid && victim.dirty).then(|| {
            self.stats.writebacks += 1;
            // Reconstruct the victim's line address.
            (victim.tag * self.sets + set as u64) * self.cfg.line
        });
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        let _ = self.line_addr(addr);
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Whether `addr`'s line is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr) as usize;
        let tag = self.tag(addr);
        let base = set * self.cfg.assoc as usize;
        self.lines[base..base + self.cfg.assoc as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Number of valid lines (used for occupancy reports).
    pub fn valid_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Invalidates everything (e.g. on guest reset).
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B
        Cache::new(CacheConfig {
            size: 512,
            assoc: 2,
            line: 64,
            hit_latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same line different offset");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three distinct tags mapping to set 0 (line*sets = 256 stride).
        c.access(0 * 256, false);
        c.access(1 * 256, false);
        c.access(0 * 256, false); // refresh tag 0
        c.access(2 * 256, false); // evicts tag 1
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(256, false);
        let out = c.access(512, false); // evicts addr 0 (LRU, dirty)
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // now dirty via hit
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.access(i * 64, false);
        }
        assert!(c.valid_lines() <= 8);
        assert_eq!(c.valid_lines(), 8);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn set_index_distributes() {
        let c = tiny();
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(3 * 64), 3);
        assert_eq!(c.set_index(4 * 64), 0);
    }
}
