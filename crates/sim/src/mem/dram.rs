//! A simple DRAM controller model: fixed access latency plus a bandwidth
//! occupancy channel (requests serialize on the data bus).

use gem5sim_event::{Tick, TICKS_PER_SEC};

/// DRAM controller state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dram {
    latency: Tick,
    line_occupancy: Tick,
    busy_until: Tick,
    /// Total demand accesses.
    pub accesses: u64,
    /// Total queueing delay accumulated (ticks).
    pub queue_ticks: Tick,
}

impl Dram {
    /// Builds a controller with `latency_ns` access latency and
    /// `bw_bytes_per_sec` peak bandwidth for `line_bytes` transfers.
    pub fn new(latency_ns: u64, bw_bytes_per_sec: u64, line_bytes: u64) -> Self {
        assert!(bw_bytes_per_sec > 0, "bandwidth must be positive");
        let ticks_per_ns = TICKS_PER_SEC / 1_000_000_000;
        Dram {
            latency: latency_ns * ticks_per_ns,
            line_occupancy: line_bytes * TICKS_PER_SEC / bw_bytes_per_sec,
            busy_until: 0,
            accesses: 0,
            queue_ticks: 0,
        }
    }

    /// Performs one line access at tick `now`; returns the total latency
    /// (queueing + access) in ticks.
    pub fn access(&mut self, now: Tick) -> Tick {
        self.accesses += 1;
        let start = now.max(self.busy_until);
        let queue = start - now;
        self.queue_ticks += queue;
        self.busy_until = start + self.line_occupancy;
        queue + self.latency
    }

    /// The configured raw access latency in ticks.
    pub fn latency(&self) -> Tick {
        self.latency
    }

    /// Atomic-mode access: counts the access and returns the flat latency
    /// without modeling occupancy.
    pub fn access_atomic(&mut self) -> Tick {
        self.accesses += 1;
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_flat() {
        let mut d = Dram::new(50, 12_800_000_000, 64);
        let l = d.access(0);
        assert_eq!(l, 50_000); // 50ns in ps
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut d = Dram::new(50, 12_800_000_000, 64);
        let l1 = d.access(0);
        let l2 = d.access(0); // issued same tick: waits one occupancy slot
        assert!(l2 > l1);
        assert_eq!(l2 - l1, 64 * TICKS_PER_SEC / 12_800_000_000);
        assert_eq!(d.accesses, 2);
        assert!(d.queue_ticks > 0);
    }

    #[test]
    fn spaced_accesses_do_not_queue() {
        let mut d = Dram::new(50, 12_800_000_000, 64);
        let l1 = d.access(0);
        let l2 = d.access(1_000_000); // 1us later
        assert_eq!(l1, l2);
    }
}
