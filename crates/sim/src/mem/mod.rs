//! The classic memory system: backing store, caches, DRAM, hierarchy.

pub mod backing;
pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use backing::PhysMem;
pub use cache::{AccessOutcome, Cache};
pub use dram::Dram;
pub use hierarchy::{AccessKind, MemSystem};
