//! Flat physical backing store.

use gem5sim_isa::exec::GuestMem;
use gem5sim_isa::MemSize;

/// Flat little-endian physical memory.
///
/// Addresses wrap modulo the memory size so that stray high-address
/// accesses in synthetic workloads alias harmlessly instead of aborting
/// the simulation (gem5 raises a fault; our workloads are trusted, so
/// aliasing is sufficient and keeps the fast path branch-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl PhysMem {
    /// Allocates `size` zeroed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "physical memory must be non-empty");
        PhysMem {
            bytes: vec![0; size as usize],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    #[inline]
    fn idx(&self, addr: u64) -> usize {
        (addr % self.bytes.len() as u64) as usize
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.bytes[self.idx(addr)]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let i = self.idx(addr);
        self.bytes[i] = v;
    }

    /// Reads `size` bytes little-endian, zero-extended.
    pub fn read(&self, addr: u64, size: MemSize) -> u64 {
        let mut v = 0u64;
        for i in 0..size.bytes() {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `val` little-endian.
    pub fn write(&mut self, addr: u64, size: MemSize, val: u64) {
        for i in 0..size.bytes() {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory (for loading data segments).
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads `len` bytes out (for inspecting results).
    pub fn read_slice(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }

    /// FNV-1a hash of the full contents — a cheap fingerprint for
    /// differential tests comparing final memory images.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &self.bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl GuestMem for PhysMem {
    fn read(&mut self, addr: u64, size: MemSize) -> u64 {
        PhysMem::read(self, addr, size)
    }
    fn write(&mut self, addr: u64, size: MemSize, val: u64) {
        PhysMem::write(self, addr, size, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sizes() {
        let mut m = PhysMem::new(1024);
        for (size, val) in [
            (MemSize::B, 0xAB),
            (MemSize::H, 0xABCD),
            (MemSize::W, 0xDEAD_BEEF),
            (MemSize::D, 0x0123_4567_89AB_CDEF),
        ] {
            m.write(100, size, val);
            assert_eq!(m.read(100, size), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(64);
        m.write(0, MemSize::W, 0x0403_0201);
        assert_eq!(m.read_slice(0, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn addresses_wrap() {
        let mut m = PhysMem::new(16);
        m.write_u8(16, 7); // aliases to 0
        assert_eq!(m.read_u8(0), 7);
    }

    #[test]
    fn slice_copy() {
        let mut m = PhysMem::new(64);
        m.write_slice(8, &[9, 8, 7]);
        assert_eq!(m.read_slice(8, 3), vec![9, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        let _ = PhysMem::new(0);
    }

    #[test]
    fn checksum_tracks_contents() {
        let mut a = PhysMem::new(64);
        let b = PhysMem::new(64);
        assert_eq!(a.checksum(), b.checksum());
        a.write_u8(17, 1);
        assert_ne!(a.checksum(), b.checksum());
    }
}
