//! System assembly and the simulation run loop.

use crate::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use crate::cpu::{AtomicCpu, CpuBox, MinorCpu, O3Cpu, TimingCpu};
use crate::dyninst::{DynInst, FunctionalCore};
use crate::mem::cache::CacheStats;
use crate::mem::{AccessKind, MemSystem, PhysMem};
use crate::observe::{CompClass, Obs};
use crate::syscall::SyscallState;
use crate::tlb::Tlb;
use crate::trace::Tracer;
use gem5sim_event::{tick::ticks_to_seconds, EventQueue, Priority, StatDump, Tick};
use gem5sim_isa::exec::ArchState;
use gem5sim_isa::{BlockCache, BlockCacheStats, Inst, MemSize, Program};
use std::cell::RefCell;
use std::rc::Rc;

/// State shared by all CPUs: configuration, program, memory system,
/// syscall layer, TLBs and the observer.
#[derive(Debug)]
pub struct Shared {
    /// System configuration.
    pub cfg: SystemConfig,
    /// The workload.
    pub program: Program,
    /// Physical memory.
    pub phys: PhysMem,
    /// Cache hierarchy + DRAM.
    pub mem: MemSystem,
    /// Syscall-emulation state.
    pub sys: SyscallState,
    /// Execution observer.
    pub obs: Obs,
    /// Instruction tracer (gem5's `Exec` debug flag).
    pub tracer: Tracer,
    itlb: Vec<Tlb>,
    dtlb: Vec<Tlb>,
}

impl Shared {
    /// Guest clock period in ticks.
    pub fn period(&self) -> Tick {
        self.cfg.clock.period_ticks()
    }

    /// Hart `cpu`'s clock period in ticks: the system period stretched
    /// by its divider from [`SystemConfig::hart_clock_div`]. Each hart's
    /// tick events land on the shared queue at its own cadence, the way
    /// gem5 clock domains divide a source domain.
    pub fn period_of(&self, cpu: usize) -> Tick {
        self.period() * self.cfg.hart_clock_div.get(cpu).copied().unwrap_or(1)
    }

    /// Converts guest cycles to ticks.
    pub fn cyc(&self, cycles: u64) -> Tick {
        self.cfg.clock.cycles_to_ticks(cycles)
    }

    /// Steps a functional core with all shared state wired in.
    pub fn step_core(&mut self, core: &mut FunctionalCore, now: Tick) -> DynInst {
        self.step_core_hinted(core, now, None)
    }

    /// [`step_core`](Self::step_core) with a predecoded-instruction hint
    /// from the block tier (see [`FunctionalCore::step_hinted`]).
    pub fn step_core_hinted(
        &mut self,
        core: &mut FunctionalCore,
        now: Tick,
        hint: Option<Inst>,
    ) -> DynInst {
        let d = core.step_hinted(
            &self.program,
            &mut self.phys,
            &mut self.sys,
            now,
            &self.obs,
            hint,
        );
        self.tracer.trace(now, core.cpu_id, &d);
        d
    }

    /// Timed instruction fetch: iTLB (FS mode) + I-side hierarchy.
    pub fn fetch_access(&mut self, cpu: usize, pc: u64, now: Tick) -> Tick {
        let mut lat = 0;
        if self.cfg.mode == SimMode::Fs {
            let out = self.itlb[cpu].translate(pc, &self.obs, cpu as u16);
            lat += self.cyc(out.walk_cycles);
        }
        lat + self
            .mem
            .access(cpu, AccessKind::InstFetch, pc, now + lat, &self.obs)
    }

    /// Timed data access: dTLB (FS mode) + D-side hierarchy.
    pub fn data_access(&mut self, cpu: usize, addr: u64, write: bool, now: Tick) -> Tick {
        let mut lat = 0;
        if self.cfg.mode == SimMode::Fs {
            let out = self.dtlb[cpu].translate(addr, &self.obs, cpu as u16);
            lat += self.cyc(out.walk_cycles);
        }
        let kind = if write {
            AccessKind::DataWrite
        } else {
            AccessKind::DataRead
        };
        lat + self.mem.access(cpu, kind, addr, now + lat, &self.obs)
    }

    /// Atomic-mode instruction fetch: warms TLB and caches, no timing.
    pub fn fetch_access_atomic(&mut self, cpu: usize, pc: u64, now: Tick) {
        if self.cfg.mode == SimMode::Fs {
            self.itlb[cpu].translate(pc, &self.obs, cpu as u16);
        }
        let _ = self
            .mem
            .access_atomic(cpu, AccessKind::InstFetch, pc, now, &self.obs);
    }

    /// Atomic-mode data access: warms TLB and caches, no timing.
    pub fn data_access_atomic(&mut self, cpu: usize, addr: u64, write: bool, now: Tick) {
        if self.cfg.mode == SimMode::Fs {
            self.dtlb[cpu].translate(addr, &self.obs, cpu as u16);
        }
        let kind = if write {
            AccessKind::DataWrite
        } else {
            AccessKind::DataRead
        };
        let _ = self.mem.access_atomic(cpu, kind, addr, now, &self.obs);
    }

    /// `(lookups, misses)` aggregated over all iTLBs.
    pub fn itlb_stats(&self) -> (u64, u64) {
        self.itlb
            .iter()
            .fold((0, 0), |(l, m), t| (l + t.lookups, m + t.misses))
    }

    /// `(lookups, misses)` aggregated over all dTLBs.
    pub fn dtlb_stats(&self) -> (u64, u64) {
        self.dtlb
            .iter()
            .fold((0, 0), |(l, m), t| (l + t.lookups, m + t.misses))
    }
}

/// The machine: shared state plus the CPUs.
#[derive(Debug)]
pub struct Machine {
    /// Shared state.
    pub shared: Shared,
    /// The CPUs.
    pub cpus: Vec<CpuBox>,
    /// Per-hart decoded-block caches (block tier).
    pub block_caches: Vec<BlockCache>,
    live_cpus: usize,
}

impl Machine {
    fn cpu_tick(&mut self, eq: &EventQueue, cpu: usize, me: &Rc<RefCell<Machine>>) {
        self.shared
            .obs
            .call(CompClass::EventQueue, "serviceOne", 0, 22);
        let mut boxed = std::mem::take(&mut self.cpus[cpu]);
        let outcome = if self.shared.cfg.exec_tier == ExecTier::Block && boxed.supports_block_tier()
        {
            let b = crate::cpu::block::run_batched(
                &mut boxed,
                &mut self.shared,
                &mut self.block_caches[cpu],
                eq,
            );
            if b.batched > 0 {
                eq.credit_batched(b.batched, b.last_now);
            }
            b.outcome
        } else {
            boxed.tick(&mut self.shared, eq.cur_tick())
        };
        let reached_limit = self
            .shared
            .cfg
            .max_insts
            .is_some_and(|max| boxed.core().committed >= max && !boxed.core().halted);
        self.cpus[cpu] = boxed;
        match outcome.next_at {
            Some(t) if !reached_limit => {
                let me2 = Rc::clone(me);
                eq.schedule_named("cpu_tick", t, Priority::CPU_TICK, move |eq| {
                    let me3 = Rc::clone(&me2);
                    me2.borrow_mut().cpu_tick(eq, cpu, &me3);
                });
            }
            _ => {
                self.live_cpus -= 1;
                if self.live_cpus == 0 {
                    eq.exit_simulation("all harts halted", 0);
                }
            }
        }
    }

    fn timer_tick(&mut self, eq: &EventQueue, me: &Rc<RefCell<Machine>>) {
        if self.live_cpus == 0 {
            return;
        }
        self.shared
            .obs
            .call(CompClass::Device, "timerInterrupt", 0, 45);
        for c in &mut self.cpus {
            if !matches!(c, CpuBox::Empty) && !c.core().halted {
                c.core_mut().irq_pending = true;
            }
        }
        let interval = self.shared.cfg.timer_interval_us * 1_000_000;
        let me2 = Rc::clone(me);
        eq.schedule_named(
            "timer",
            eq.cur_tick() + interval,
            Priority::DEFAULT,
            move |eq| {
                let me3 = Rc::clone(&me2);
                me2.borrow_mut().timer_tick(eq, &me3);
            },
        );
    }
}

/// Results of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Final simulated tick.
    pub sim_ticks: Tick,
    /// Total committed guest instructions.
    pub committed_insts: u64,
    /// Events serviced by the queue (a gem5 "host work" proxy).
    pub host_events: u64,
    /// Exit code from the workload, if it called `exit`.
    pub exit_code: Option<i64>,
    /// Guest stdout.
    pub stdout: Vec<u8>,
    /// L1I stats.
    pub l1i: CacheStats,
    /// L1D stats.
    pub l1d: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Guest iTLB `(lookups, misses)`.
    pub itlb: (u64, u64),
    /// Guest dTLB `(lookups, misses)`.
    pub dtlb: (u64, u64),
    /// Guest branch predictor `(lookups, mispredicts)` (Minor/O3 only).
    pub bp: Option<(u64, u64)>,
    /// Timer interrupts taken (FS mode).
    pub irqs_taken: u64,
    /// Guest clock in GHz (for IPC computation).
    pub clock_ghz: f64,
    /// Per-hart result checksums read back from the guest-ABI slots at
    /// [`gem5sim_isa::GUEST_CHECKSUM_BASE`] after the run. Zero for
    /// workloads that deposit none; tier- and model-invariant for those
    /// that do (memory contents are part of the byte-identity contract).
    pub guest_checksums: Vec<u64>,
}

impl SimResult {
    /// Simulated seconds.
    pub fn sim_seconds(&self) -> f64 {
        ticks_to_seconds(self.sim_ticks)
    }

    /// Guest instructions per guest cycle.
    pub fn guest_ipc(&self) -> f64 {
        let cycles = self.sim_seconds() * self.clock_ghz * 1e9;
        if cycles == 0.0 {
            0.0
        } else {
            self.committed_insts as f64 / cycles
        }
    }

    /// Renders the gem5-style `stats.txt` dump.
    pub fn stat_dump(&self) -> StatDump {
        let mut d = StatDump::new();
        d.scalar("sim_ticks", self.sim_ticks as f64);
        d.scalar("sim_seconds", self.sim_seconds());
        d.scalar("sim_insts", self.committed_insts as f64);
        d.formula("system.cpu.ipc", self.guest_ipc(), "insts/cycles");
        d.scalar("host_event_queue.events", self.host_events as f64);
        d.scalar("system.l1i.accesses", self.l1i.accesses as f64);
        d.formula(
            "system.l1i.miss_rate",
            self.l1i.miss_rate(),
            "misses/accesses",
        );
        d.scalar("system.l1d.accesses", self.l1d.accesses as f64);
        d.formula(
            "system.l1d.miss_rate",
            self.l1d.miss_rate(),
            "misses/accesses",
        );
        d.scalar("system.l2.accesses", self.l2.accesses as f64);
        d.formula(
            "system.l2.miss_rate",
            self.l2.miss_rate(),
            "misses/accesses",
        );
        d.scalar("system.mem_ctrl.accesses", self.dram_accesses as f64);
        d.scalar("system.itlb.misses", self.itlb.1 as f64);
        d.scalar("system.dtlb.misses", self.dtlb.1 as f64);
        if let Some((l, m)) = self.bp {
            d.scalar("system.cpu.branchPred.lookups", l as f64);
            d.formula(
                "system.cpu.branchPred.mispredict_rate",
                if l == 0 { 0.0 } else { m as f64 / l as f64 },
                "mispredicts/lookups",
            );
        }
        d.scalar("system.platform.irqs_taken", self.irqs_taken as f64);
        d
    }
}

/// A complete simulated system, ready to run.
#[derive(Debug)]
pub struct System {
    machine: Rc<RefCell<Machine>>,
    eq: Rc<EventQueue>,
}

impl System {
    /// Builds a system running `program` with no observer attached.
    pub fn new(cfg: SystemConfig, program: Program) -> Self {
        Self::with_observer(cfg, program, Obs::none())
    }

    /// Builds a system with an execution observer (used for host-level
    /// profiling).
    pub fn with_observer(cfg: SystemConfig, program: Program, obs: Obs) -> Self {
        let mem = MemSystem::new(&cfg);
        let phys = PhysMem::new(cfg.mem_size);
        let fs = cfg.mode == SimMode::Fs;
        let irq_handler = program.symbol("__irq_handler");
        let heap_base = program.text_end() + 0x1_0000;

        let mut cpus = Vec::with_capacity(cfg.num_cpus);
        for i in 0..cfg.num_cpus {
            let mut core = FunctionalCore::new(i as u16, program.entry_pc(), fs, irq_handler);
            // ABI setup: per-hart stack at the top of memory, hart id in tp.
            let stack_top = cfg.mem_size - (i as u64) * 0x10_0000 - 64;
            core.arch.write(gem5sim_isa::Reg::SP, stack_top);
            core.arch.write(gem5sim_isa::Reg::TP, i as u64);
            let boxed = match cfg.cpu_model {
                CpuModel::Atomic => CpuBox::Atomic(AtomicCpu::new(core)),
                CpuModel::Timing => CpuBox::Timing(TimingCpu::new(core)),
                CpuModel::Minor => CpuBox::Minor(MinorCpu::new(core, cfg.btb_entries)),
                CpuModel::O3 => CpuBox::O3(O3Cpu::new(core, &cfg)),
            };
            cpus.push(boxed);
        }

        let itlb = (0..cfg.num_cpus)
            .map(|_| Tlb::new(cfg.tlb_entries, cfg.page_size))
            .collect();
        let dtlb = (0..cfg.num_cpus)
            .map(|_| Tlb::new(cfg.tlb_entries, cfg.page_size))
            .collect();

        let live = cpus.len();
        let block_caches = (0..cfg.num_cpus)
            .map(|_| BlockCache::new(cfg.block_cache_blocks))
            .collect();
        let machine = Rc::new(RefCell::new(Machine {
            shared: Shared {
                cfg,
                program,
                phys,
                mem,
                sys: SyscallState::new(heap_base),
                obs,
                tracer: Tracer::none(),
                itlb,
                dtlb,
            },
            cpus,
            block_caches,
            live_cpus: live,
        }));
        System {
            machine,
            eq: Rc::new(EventQueue::new()),
        }
    }

    /// Shared handle to the machine (used by the checkpointing module).
    pub(crate) fn machine_ref(&self) -> Rc<RefCell<Machine>> {
        Rc::clone(&self.machine)
    }

    /// Attaches an instruction tracer (call before [`run`](Self::run)).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.machine.borrow_mut().shared.tracer = tracer;
    }

    /// Final architectural state of hart `cpu` (for differential tests).
    pub fn arch_state(&self, cpu: usize) -> ArchState {
        self.machine.borrow().cpus[cpu].core().arch.clone()
    }

    /// FNV-1a checksum over all of guest physical memory (for
    /// differential tests).
    pub fn mem_checksum(&self) -> u64 {
        self.machine.borrow().shared.phys.checksum()
    }

    /// Decoded-block cache counters, aggregated over all harts. All
    /// zeros when the system ran on the interp tier.
    pub fn block_stats(&self) -> BlockCacheStats {
        let m = self.machine.borrow();
        m.block_caches
            .iter()
            .fold(BlockCacheStats::default(), |a, c| BlockCacheStats {
                hits: a.hits + c.stats.hits,
                compiled: a.compiled + c.stats.compiled,
                evicted: a.evicted + c.stats.evicted,
                invalidated: a.invalidated + c.stats.invalidated,
            })
    }

    /// Runs the simulation to completion and returns the results.
    pub fn run(&mut self) -> SimResult {
        let tier = self.machine.borrow().shared.cfg.exec_tier;
        let _tier_span = gem5prof_obs::span(match tier {
            ExecTier::Interp => "sim_run_interp",
            ExecTier::Block => "sim_run_block",
        });
        let n = self.machine.borrow().cpus.len();
        for cpu in 0..n {
            let me = Rc::clone(&self.machine);
            self.eq
                .schedule_named("cpu_tick", 0, Priority::CPU_TICK, move |eq| {
                    let me2 = Rc::clone(&me);
                    me.borrow_mut().cpu_tick(eq, cpu, &me2);
                });
        }
        let fs = self.machine.borrow().shared.cfg.mode == SimMode::Fs;
        if fs {
            let me = Rc::clone(&self.machine);
            let interval = self.machine.borrow().shared.cfg.timer_interval_us * 1_000_000;
            self.eq
                .schedule_named("timer", interval, Priority::DEFAULT, move |eq| {
                    let me2 = Rc::clone(&me);
                    me.borrow_mut().timer_tick(eq, &me2);
                });
        }
        self.eq.run(None);

        let m = self.machine.borrow();
        // End-of-simulation stats dump, as gem5 performs.
        for _ in 0..4 {
            m.shared.obs.call(CompClass::Stats, "dumpStats", 0, 80);
        }
        // Block-cache counters go to the host-side metrics registry, NOT
        // into [`SimResult`]: results must be tier-invariant, and these
        // counters are not (the interp tier compiles nothing).
        let bs = m
            .block_caches
            .iter()
            .fold(BlockCacheStats::default(), |a, c| BlockCacheStats {
                hits: a.hits + c.stats.hits,
                compiled: a.compiled + c.stats.compiled,
                evicted: a.evicted + c.stats.evicted,
                invalidated: a.invalidated + c.stats.invalidated,
            });
        let reg = gem5prof_obs::global();
        reg.counter(
            "gem5sim_block_cache_hits_total",
            "Block-tier lookups served from the decoded-block cache",
        )
        .add(bs.hits);
        reg.counter(
            "gem5sim_block_cache_compiled_total",
            "Basic blocks decoded on block-cache misses",
        )
        .add(bs.compiled);
        reg.counter(
            "gem5sim_block_cache_evicted_total",
            "Decoded blocks dropped by capacity eviction",
        )
        .add(bs.evicted);
        reg.counter(
            "gem5sim_block_cache_invalidated_total",
            "Decoded blocks dropped by text-version or range invalidation",
        )
        .add(bs.invalidated);

        let committed: u64 = m.cpus.iter().map(|c| c.core().committed).sum();
        let irqs: u64 = m.cpus.iter().map(|c| c.core().irqs_taken).sum();
        let bp = m.cpus.iter().find_map(|c| c.bp_stats());
        let exit_code = m.cpus.iter().find_map(|c| c.core().exit_code);
        // Read back the per-hart checksum slots workloads deposit into
        // (zero when a workload emits none).
        let guest_checksums: Vec<u64> = (0..m.cpus.len() as u64)
            .map(|i| {
                m.shared
                    .phys
                    .read(gem5sim_isa::GUEST_CHECKSUM_BASE + 8 * i, MemSize::D)
            })
            .collect();
        SimResult {
            sim_ticks: self.eq.cur_tick(),
            committed_insts: committed,
            host_events: self.eq.events_serviced(),
            exit_code,
            stdout: m.shared.sys.stdout.clone(),
            l1i: m.shared.mem.l1i_stats(),
            l1d: m.shared.mem.l1d_stats(),
            l2: m.shared.mem.l2_stats(),
            dram_accesses: m.shared.mem.dram_accesses(),
            itlb: m.shared.itlb_stats(),
            dtlb: m.shared.dtlb_stats(),
            bp,
            irqs_taken: irqs,
            clock_ghz: m.shared.cfg.clock.ghz(),
            guest_checksums,
        }
    }
}
