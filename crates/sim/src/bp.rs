//! Guest branch prediction (used by the Minor and O3 CPU models).
//!
//! A tournament predictor in the style of the Alpha 21264 / gem5's
//! `TournamentBP`: a local (per-PC) 2-bit table, a global (history-indexed)
//! 2-bit table, and a chooser; plus a direct-mapped BTB for targets.

use crate::observe::{CompClass, Obs};

const LOCAL_BITS: usize = 11;
const GLOBAL_BITS: usize = 12;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the BTB had one.
    pub target: Option<u64>,
}

/// Tournament branch predictor + BTB.
#[derive(Debug, Clone)]
pub struct TournamentBp {
    local: Vec<Counter2>,
    global: Vec<Counter2>,
    choice: Vec<Counter2>,
    history: u64,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    /// Conditional-branch predictions made.
    pub lookups: u64,
    /// Conditional-branch mispredictions.
    pub mispredicts: u64,
    /// BTB misses on taken control transfers.
    pub btb_misses: u64,
}

impl TournamentBp {
    /// Builds a predictor with `btb_entries` BTB slots.
    ///
    /// # Panics
    ///
    /// Panics if `btb_entries` is not a power of two.
    pub fn new(btb_entries: usize) -> Self {
        assert!(
            btb_entries.is_power_of_two(),
            "BTB entries must be a power of two"
        );
        TournamentBp {
            local: vec![Counter2(1); 1 << LOCAL_BITS],
            global: vec![Counter2(1); 1 << GLOBAL_BITS],
            choice: vec![Counter2(2); 1 << GLOBAL_BITS],
            history: 0,
            btb_tags: vec![u64::MAX; btb_entries],
            btb_targets: vec![0; btb_entries],
            lookups: 0,
            mispredicts: 0,
            btb_misses: 0,
        }
    }

    fn local_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << LOCAL_BITS) - 1)
    }

    fn global_idx(&self) -> usize {
        (self.history as usize) & ((1 << GLOBAL_BITS) - 1)
    }

    fn btb_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb_tags.len() - 1)
    }

    /// Predicts a conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64, obs: &Obs, obj: u16) -> Prediction {
        self.lookups += 1;
        obs.call(CompClass::BranchPred, "lookup", obj, 22);
        let use_global = self.choice[self.global_idx()].taken();
        let taken = if use_global {
            self.global[self.global_idx()].taken()
        } else {
            self.local[self.local_idx(pc)].taken()
        };
        let i = self.btb_idx(pc);
        let target = (self.btb_tags[i] == pc).then(|| self.btb_targets[i]);
        Prediction { taken, target }
    }

    /// Looks up the BTB for an unconditional control transfer at `pc`.
    pub fn btb_lookup(&mut self, pc: u64, obs: &Obs, obj: u16) -> Option<u64> {
        obs.call(CompClass::BranchPred, "btbLookup", obj, 10);
        let i = self.btb_idx(pc);
        (self.btb_tags[i] == pc).then(|| self.btb_targets[i])
    }

    /// Trains the predictor with the resolved outcome; returns whether the
    /// earlier prediction `predicted` was wrong.
    pub fn update(
        &mut self,
        pc: u64,
        taken: bool,
        target: u64,
        predicted: Prediction,
        obs: &Obs,
        obj: u16,
    ) -> bool {
        obs.call(CompClass::BranchPred, "update", obj, 20);
        let gi = self.global_idx();
        let li = self.local_idx(pc);
        let local_correct = self.local[li].taken() == taken;
        let global_correct = self.global[gi].taken() == taken;
        if local_correct != global_correct {
            self.choice[gi].update(global_correct);
        }
        self.local[li].update(taken);
        self.global[gi].update(taken);
        self.history = (self.history << 1) | taken as u64;
        if taken {
            let i = self.btb_idx(pc);
            self.btb_tags[i] = pc;
            self.btb_targets[i] = target;
        }
        let mispredicted = predicted.taken != taken || (taken && predicted.target != Some(target));
        if mispredicted {
            self.mispredicts += 1;
        }
        mispredicted
    }

    /// Records a BTB fill for an unconditional transfer.
    pub fn btb_install(&mut self, pc: u64, target: u64) {
        let i = self.btb_idx(pc);
        if self.btb_tags[i] != pc {
            self.btb_misses += 1;
        }
        self.btb_tags[i] = pc;
        self.btb_targets[i] = target;
    }

    /// Misprediction rate over conditional lookups.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_loop() {
        let mut bp = TournamentBp::new(64);
        let obs = Obs::none();
        let pc = 0x400100;
        let mut wrong = 0;
        for _ in 0..100 {
            let p = bp.predict(pc, &obs, 0);
            if bp.update(pc, true, 0x400080, p, &obs, 0) {
                wrong += 1;
            }
        }
        // Warm-up misses: until the global history register saturates,
        // each iteration indexes a fresh (untrained) global counter.
        assert!(wrong <= 16, "should converge quickly, got {wrong} wrong");
        // After training, target comes from the BTB.
        let p = bp.predict(pc, &obs, 0);
        assert!(p.taken);
        assert_eq!(p.target, Some(0x400080));
    }

    #[test]
    fn learns_alternating_pattern_via_global_history() {
        let mut bp = TournamentBp::new(64);
        let obs = Obs::none();
        let pc = 0x400200;
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let p = bp.predict(pc, &obs, 0);
            let mis = bp.update(pc, taken, 0x400300, p, &obs, 0);
            if i >= 200 && mis {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 20,
            "global history should capture alternation, got {wrong_late}/200"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut bp = TournamentBp::new(64);
        let obs = Obs::none();
        let pc = 0x400400;
        // A pseudo-random but deterministic sequence.
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            let p = bp.predict(pc, &obs, 0);
            if bp.update(pc, taken, 0x400500, p, &obs, 0) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 250,
            "random data should defeat the predictor, got {wrong}"
        );
    }

    #[test]
    fn btb_tracks_installs() {
        let mut bp = TournamentBp::new(16);
        let obs = Obs::none();
        assert_eq!(bp.btb_lookup(0x400000, &obs, 0), None);
        bp.btb_install(0x400000, 0x400800);
        assert_eq!(bp.btb_lookup(0x400000, &obs, 0), Some(0x400800));
        assert_eq!(bp.btb_misses, 1);
        bp.btb_install(0x400000, 0x400800);
        assert_eq!(bp.btb_misses, 1, "re-install of same pc is not a miss");
    }

    #[test]
    fn rates_are_bounded() {
        let mut bp = TournamentBp::new(16);
        assert_eq!(bp.mispredict_rate(), 0.0);
        let obs = Obs::none();
        let p = bp.predict(0, &obs, 0);
        bp.update(0, true, 4, p, &obs, 0);
        assert!(bp.mispredict_rate() <= 1.0);
    }
}
