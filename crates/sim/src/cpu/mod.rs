//! The four CPU models, in increasing detail order:
//! [`atomic`], [`timing`], [`minor`], [`o3`].
//!
//! All models are *functional-first* (see [`crate::dyninst`]): they share
//! one architectural executor and differ only in timing and in the set of
//! simulator handlers they exercise per instruction — which is exactly the
//! axis the paper varies ("the instruction cache footprint increases with
//! the CPU model complexity").

pub mod atomic;
pub mod block;
pub mod minor;
pub mod o3;
pub mod timing;

use crate::dyninst::FunctionalCore;
use crate::system::Shared;
use gem5sim_event::Tick;

pub use atomic::AtomicCpu;
pub use minor::MinorCpu;
pub use o3::O3Cpu;
pub use timing::TimingCpu;

/// Result of one CPU tick handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome {
    /// When to schedule the next tick; `None` when the hart halted.
    pub next_at: Option<Tick>,
}

/// Functional-unit latency in guest cycles for an instruction class.
pub fn fu_latency(class: gem5sim_isa::InstClass) -> u64 {
    use gem5sim_isa::InstClass::*;
    match class {
        IntAlu | Nop => 1,
        IntMul => 3,
        IntDiv => 20,
        FpAlu => 2,
        FpMul => 4,
        FpDiv => 12,
        Load => 1,  // plus cache latency
        Store => 1, // retired through the store queue
        Branch | Jump => 1,
        Syscall => 10,
    }
}

/// A CPU of any model (the concrete type is chosen by
/// [`SystemConfig::cpu_model`](crate::config::SystemConfig)).
///
/// `Empty` is the placeholder used while a CPU is temporarily moved out of
/// the machine during its own tick.
#[derive(Debug, Default)]
pub enum CpuBox {
    /// Placeholder (a CPU is being ticked).
    #[default]
    Empty,
    /// Atomic CPU.
    Atomic(AtomicCpu),
    /// Timing CPU.
    Timing(TimingCpu),
    /// Minor (in-order) CPU.
    Minor(MinorCpu),
    /// O3 (out-of-order) CPU.
    O3(O3Cpu),
}

impl CpuBox {
    /// Ticks the CPU.
    ///
    /// # Panics
    ///
    /// Panics on the `Empty` placeholder.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        match self {
            CpuBox::Empty => panic!("tick on moved-out CPU"),
            CpuBox::Atomic(c) => c.tick(sh, now),
            CpuBox::Timing(c) => c.tick(sh, now),
            CpuBox::Minor(c) => c.tick(sh, now),
            CpuBox::O3(c) => c.tick(sh, now),
        }
    }

    /// The functional core.
    ///
    /// # Panics
    ///
    /// Panics on the `Empty` placeholder.
    pub fn core(&self) -> &FunctionalCore {
        match self {
            CpuBox::Empty => panic!("core() on moved-out CPU"),
            CpuBox::Atomic(c) => &c.core,
            CpuBox::Timing(c) => &c.core,
            CpuBox::Minor(c) => &c.core,
            CpuBox::O3(c) => &c.core,
        }
    }

    /// Mutable functional core (for interrupt injection).
    ///
    /// # Panics
    ///
    /// Panics on the `Empty` placeholder.
    pub fn core_mut(&mut self) -> &mut FunctionalCore {
        match self {
            CpuBox::Empty => panic!("core_mut() on moved-out CPU"),
            CpuBox::Atomic(c) => &mut c.core,
            CpuBox::Timing(c) => &mut c.core,
            CpuBox::Minor(c) => &mut c.core,
            CpuBox::O3(c) => &mut c.core,
        }
    }

    /// Whether this model can run under the block execution tier.
    /// The simple models execute one self-contained instruction per tick;
    /// Minor and O3 pipeline state across events and stay per-instruction.
    pub fn supports_block_tier(&self) -> bool {
        matches!(self, CpuBox::Atomic(_) | CpuBox::Timing(_))
    }

    /// Guest branch-predictor statistics `(lookups, mispredicts)`, if the
    /// model has a predictor.
    pub fn bp_stats(&self) -> Option<(u64, u64)> {
        match self {
            CpuBox::Minor(c) => Some((c.bp.lookups, c.bp.mispredicts)),
            CpuBox::O3(c) => Some((c.bp.lookups, c.bp.mispredicts)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem5sim_isa::InstClass;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert!(fu_latency(InstClass::IntDiv) > fu_latency(InstClass::IntMul));
        assert!(fu_latency(InstClass::IntMul) > fu_latency(InstClass::IntAlu));
        assert!(fu_latency(InstClass::FpDiv) > fu_latency(InstClass::FpMul));
        assert_eq!(fu_latency(InstClass::Nop), 1);
    }

    #[test]
    #[should_panic(expected = "moved-out")]
    fn empty_box_panics() {
        let b = CpuBox::Empty;
        let _ = b.core();
    }
}
