//! The block execution tier: straight-line execution of cached basic
//! blocks with batched event-queue accounting.
//!
//! In the interp tier every guest instruction is a scheduled event —
//! gem5's shape, and the dominant host cost for the simple CPU models
//! (closure allocation, heap push/pop, and dispatch per instruction).
//! The block tier services *one* event and then keeps executing
//! instructions from decoded [`BasicBlock`]s as long as doing so is
//! invisible to the rest of the machine, crediting the queue afterwards
//! ([`EventQueue::credit_batched`]) so `sim_ticks` and `host_events`
//! come out identical to the interp tier.
//!
//! # Why batching is byte-invisible
//!
//! An instruction that the interp tier would run as an event at
//! `(t, CPU_TICK)` may be folded into the current event iff it would be
//! serviced *before every pending event* — that is, strictly before the
//! queue head `(w, p)` in the `(when, priority, seq)` order. Ties at
//! `(t, CPU_TICK)` are **not** batched: the pending event carries a
//! smaller sequence number and would run first (this is what keeps
//! multi-hart lockstep interleaving intact — it simply degrades to
//! per-instruction execution). Nothing else can observe the difference:
//! no handler reads the queue's current tick mid-event (every handler
//! takes `now` as a parameter), and all memory/syscall work happens
//! synchronously inside the instruction.
//!
//! Per-instruction observer traffic (`serviceOne`, the CPU-model calls,
//! decode, cache and TLB events) is still emitted in the exact interp
//! order — only the event-queue machinery between instructions is
//! elided.

use crate::cpu::{CpuBox, TickOutcome};
use crate::dyninst::{DynInst, FunctionalCore};
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::{EventQueue, Priority, Tick};
use gem5sim_isa::{BasicBlock, BlockCache, Inst, TEXT_BASE};
use std::rc::Rc;

/// Hooks a CPU model implements to run under the block driver.
///
/// Only the simple models (Atomic, Timing) implement this: their tick
/// handlers are self-contained per instruction. Minor and O3 pipeline
/// state across events and always run per-instruction.
pub(crate) trait BlockModel {
    /// The functional core (for `pc`, `committed`, `halted`).
    fn core(&self) -> &FunctionalCore;

    /// Called when the driver enters a freshly looked-up block.
    fn begin_block(&mut self, _sh: &mut Shared, _block: &BasicBlock) {}

    /// Executes one instruction — observer calls, architectural step and
    /// timing — exactly as the model's interp `tick` would, taking the
    /// block's predecoded instruction as a fetch hint.
    fn after_instruction(
        &mut self,
        sh: &mut Shared,
        now: Tick,
        hint: Option<Inst>,
    ) -> (DynInst, TickOutcome);

    /// Called after a taken control transfer (the next instruction will
    /// come from a different block).
    fn after_taken_branch(&mut self, _sh: &mut Shared, _d: &DynInst) {}
}

/// What one batched event accomplished.
pub(crate) struct BatchOutcome {
    /// Outcome of the *last* instruction executed (drives rescheduling).
    pub outcome: TickOutcome,
    /// Instructions executed beyond the first — the events the interp
    /// tier would have scheduled and serviced.
    pub batched: u64,
    /// Tick at which the last instruction executed.
    pub last_now: Tick,
}

/// Whether an instruction the interp tier would schedule at
/// `(t, CPU_TICK)` may be folded into the current event: it must order
/// strictly before the earliest pending event. Equal `(when, priority)`
/// loses to the pending event's smaller sequence number.
fn can_batch(eq: &EventQueue, t: Tick) -> bool {
    match eq.peek_next() {
        None => true,
        Some((when, prio)) => t < when || (t == when && Priority::CPU_TICK < prio),
    }
}

/// Runs one event's worth of instructions for `cpu`, batching while
/// [`can_batch`] holds. The caller credits the queue with
/// [`BatchOutcome::batched`] synthetic events.
///
/// # Panics
///
/// Panics if `cpu` is not a block-capable model
/// ([`CpuBox::supports_block_tier`]).
pub(crate) fn run_batched(
    cpu: &mut CpuBox,
    sh: &mut Shared,
    cache: &mut BlockCache,
    eq: &EventQueue,
) -> BatchOutcome {
    match cpu {
        CpuBox::Atomic(c) => drive(c, sh, cache, eq),
        CpuBox::Timing(c) => drive(c, sh, cache, eq),
        _ => panic!("block tier driver on a per-instruction CPU model"),
    }
}

fn drive<M: BlockModel>(
    m: &mut M,
    sh: &mut Shared,
    cache: &mut BlockCache,
    eq: &EventQueue,
) -> BatchOutcome {
    let mut now = eq.cur_tick();
    let mut batched = 0u64;
    // The block the hart is currently executing from; the instruction
    // index is derived from `pc`, so interrupt redirects and branches
    // need no bookkeeping — they simply miss `inst_at` and look up the
    // target's block.
    let mut cursor: Option<Rc<BasicBlock>> = None;
    loop {
        let pc = m.core().arch.pc;
        let hint = match cursor.as_ref().and_then(|b| b.inst_at(pc)) {
            Some(i) => Some(i),
            None => {
                cursor = cache.lookup(&sh.program, pc);
                if let Some(b) = &cursor {
                    let b = Rc::clone(b);
                    m.begin_block(sh, &b);
                }
                cursor.as_ref().and_then(|b| b.inst_at(pc))
            }
        };

        let (d, outcome) = m.after_instruction(sh, now, hint);
        if d.control.is_some_and(|c| c.taken) {
            m.after_taken_branch(sh, &d);
        }

        // A store into the text segment drops overlapping decoded blocks.
        // (Execution stays correct either way — fetches read the program
        // text — but the cache must not serve blocks it knows are stale.)
        if let Some(mr) = d.mem {
            let hi = mr.addr + mr.size.bytes();
            if mr.write && mr.addr < sh.program.text_end() && hi > TEXT_BASE {
                cache.invalidate_range(mr.addr, hi);
                cursor = None;
            }
        }

        let limit_hit = sh
            .cfg
            .max_insts
            .is_some_and(|max| m.core().committed >= max && !m.core().halted);
        match outcome.next_at {
            Some(t) if !limit_hit && can_batch(eq, t) => {
                // This instruction would have been its own serviced event;
                // keep the observer stream identical.
                sh.obs.call(CompClass::EventQueue, "serviceOne", 0, 22);
                batched += 1;
                now = t;
            }
            _ => {
                return BatchOutcome {
                    outcome,
                    batched,
                    last_now: now,
                }
            }
        }
    }
}
