//! `MinorCPU`: a fixed in-order pipeline with detailed memory timing.
//!
//! The timing model is a scoreboarded in-order pipeline (fetch → decode →
//! execute → writeback) expressed in the one-pass style: per-resource
//! availability times (fetch bandwidth, issue port, architectural-register
//! readiness) advance as each instruction is processed in program order.
//! Branches are predicted with a tournament predictor; mispredictions
//! stall fetch until the branch resolves.

use crate::bp::TournamentBp;
use crate::cpu::{fu_latency, TickOutcome};
use crate::dyninst::FunctionalCore;
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::Tick;
use gem5sim_isa::InstClass;

/// The Minor (in-order) CPU model.
#[derive(Debug)]
pub struct MinorCpu {
    /// Shared functional core.
    pub core: FunctionalCore,
    /// Branch predictor.
    pub bp: TournamentBp,
    reg_ready: [Tick; 64],
    fetch_avail: Tick,
    issue_avail: Tick,
    draining: Option<Tick>,
    /// Cycles lost to branch mispredictions (guest ticks).
    pub mispredict_stall_ticks: Tick,
}

impl MinorCpu {
    /// Creates the CPU.
    pub fn new(core: FunctionalCore, btb_entries: usize) -> Self {
        MinorCpu {
            core,
            bp: TournamentBp::new(btb_entries),
            reg_ready: [0; 64],
            fetch_avail: 0,
            issue_avail: 0,
            draining: None,
            mispredict_stall_ticks: 0,
        }
    }

    fn srcs_ready(&self, d: &crate::dyninst::DynInst) -> Tick {
        let mut t = 0;
        for s in d.inst.int_srcs().into_iter().flatten() {
            t = t.max(self.reg_ready[s.index()]);
        }
        // FP sources: approximate by treating the FP register file as the
        // upper half of the scoreboard, keyed by the static instruction.
        if matches!(
            d.class,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv
        ) {
            t = t.max(self.reg_ready[32..].iter().copied().max().unwrap_or(0));
        }
        t
    }

    fn set_dest_ready(&mut self, d: &crate::dyninst::DynInst, at: Tick) {
        if let Some(r) = d.inst.int_dest() {
            self.reg_ready[r.index()] = at;
        }
        if matches!(
            d.class,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv | InstClass::Load
        ) {
            // Conservatively mark one FP slot; precise FP renaming lives in
            // the O3 model.
            if matches!(
                d.class,
                InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv
            ) {
                self.reg_ready[32] = at;
            }
        }
    }

    /// Processes one instruction through the pipeline model.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        if let Some(done) = self.draining.take() {
            let _ = done;
            return TickOutcome { next_at: None };
        }
        let id = self.core.cpu_id;
        let width = sh.cfg.minor_width as u64;
        let slot = sh.period_of(id as usize) / width.max(1);

        // Minor evaluates all pipeline stages every cycle; its evaluate
        // chain is one of the heavier per-event code paths in gem5.
        sh.obs.call(CompClass::CpuMinor, "evaluate", id, 70);
        sh.obs.call(CompClass::CpuMinor, "fetch1_evaluate", id, 30);

        let pc = self.core.arch.pc;
        let fetch_start = now.max(self.fetch_avail);
        let ilat = sh.fetch_access(id as usize, pc, fetch_start);
        let fetch_done = fetch_start + ilat;

        let d = sh.step_core(&mut self.core, now);
        sh.obs.call(CompClass::CpuMinor, "fetch2_evaluate", id, 35);
        sh.obs.call(CompClass::CpuMinor, "decode_evaluate", id, 30);
        sh.obs
            .data(CompClass::CpuMinor, id, (d.seq % 16) as u32 * 48, 48, true);

        // Issue: in order, after decode (2-cycle front), operands ready.
        let ready = self.srcs_ready(&d);
        let issue = (fetch_done + sh.cyc(2)).max(self.issue_avail).max(ready);
        self.issue_avail = issue + slot;
        sh.obs.call(CompClass::CpuMinor, "execute_evaluate", id, 45);

        let mut exec_end = issue + sh.cyc(fu_latency(d.class));
        if let Some(m) = d.mem {
            sh.obs.call(CompClass::CpuMinor, "lsq_issue", id, 30);
            let dlat = sh.data_access(id as usize, m.addr, m.write, issue);
            if !m.write {
                exec_end = issue + dlat;
            }
        }
        if d.is_syscall {
            exec_end += sh.cyc(10);
        }
        self.set_dest_ready(&d, exec_end);
        sh.obs.call(CompClass::CpuMinor, "commit", id, 25);

        // Control flow and fetch pacing.
        let mut next_fetch = fetch_start + slot;
        if let Some(c) = d.control {
            if c.is_cond {
                let pred = self.bp.predict(d.pc, &sh.obs, id);
                let mis = self.bp.update(d.pc, c.taken, c.target, pred, &sh.obs, id);
                if mis {
                    sh.obs
                        .call(CompClass::CpuMinor, "branchMispredict_squash", id, 90);
                    let redirect = exec_end + sh.cyc(2);
                    self.mispredict_stall_ticks += redirect.saturating_sub(next_fetch);
                    next_fetch = redirect;
                }
            } else {
                // Jumps: a BTB miss costs a fetch bubble while the target
                // is computed.
                if self.bp.btb_lookup(d.pc, &sh.obs, id).is_none() {
                    next_fetch = next_fetch.max(fetch_done + sh.cyc(2));
                }
                self.bp.btb_install(d.pc, c.target);
            }
        }
        self.fetch_avail = next_fetch;
        if d.stall_us > 0 {
            self.fetch_avail += d.stall_us * 1_000_000;
        }

        if d.is_halt {
            // One drain event so sim time includes the pipeline tail.
            self.draining = Some(exec_end);
            return TickOutcome {
                next_at: Some(exec_end.max(now)),
            };
        }
        TickOutcome {
            next_at: Some(self.fetch_avail.max(now)),
        }
    }
}
