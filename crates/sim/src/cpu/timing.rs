//! `TimingSimpleCPU`: CPI = 1 plus detailed memory timing.
//!
//! Each instruction performs a timed instruction fetch; loads and stores
//! issue timed requests through the cache hierarchy and the CPU blocks
//! until the response (the real `TimingSimpleCPU` is also blocking).

use crate::cpu::block::BlockModel;
use crate::cpu::TickOutcome;
use crate::dyninst::{DynInst, FunctionalCore};
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::Tick;
use gem5sim_isa::Inst;

/// The timing-simple CPU model.
#[derive(Debug)]
pub struct TimingCpu {
    /// Shared functional core.
    pub core: FunctionalCore,
}

impl TimingCpu {
    /// Creates the CPU.
    pub fn new(core: FunctionalCore) -> Self {
        TimingCpu { core }
    }

    /// Fetches, executes and (for memory ops) waits for the hierarchy;
    /// one instruction per tick event.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        self.exec_one(sh, now, None).1
    }

    /// One instruction's worth of observation, execution and timing —
    /// the shared body of the interp tick and the block tier's
    /// per-instruction hook.
    fn exec_one(
        &mut self,
        sh: &mut Shared,
        now: Tick,
        hint: Option<Inst>,
    ) -> (DynInst, TickOutcome) {
        let id = self.core.cpu_id;
        sh.obs.call(CompClass::CpuTiming, "fetch", id, 45);

        // The fetch itself is a timed access through the I-side.
        let pc = self.core.arch.pc;
        let fetch_lat = sh.fetch_access(id as usize, pc, now);

        let d = sh.step_core_hinted(&mut self.core, now, hint);
        sh.obs.call(CompClass::CpuTiming, "completeIfetch", id, 35);
        sh.obs.call(CompClass::CpuTiming, "executeInst", id, 40);

        let mut lat = fetch_lat.max(sh.period_of(id as usize));
        if let Some(m) = d.mem {
            sh.obs.call(CompClass::CpuTiming, "sendTimingReq", id, 30);
            let dlat = sh.data_access(id as usize, m.addr, m.write, now + lat);
            sh.obs.call(CompClass::CpuTiming, "recvTimingResp", id, 35);
            // Stores retire through the write buffer; loads block.
            if !m.write {
                lat += dlat;
            } else {
                lat += sh.period_of(id as usize);
            }
        }
        if d.is_syscall {
            lat += sh.cyc(10);
        }

        if d.is_halt {
            return (d, TickOutcome { next_at: None });
        }
        let mut next = now + lat;
        if d.stall_us > 0 {
            next += d.stall_us * 1_000_000;
        }
        (
            d,
            TickOutcome {
                next_at: Some(next),
            },
        )
    }
}

impl BlockModel for TimingCpu {
    fn core(&self) -> &FunctionalCore {
        &self.core
    }

    fn after_instruction(
        &mut self,
        sh: &mut Shared,
        now: Tick,
        hint: Option<Inst>,
    ) -> (DynInst, TickOutcome) {
        self.exec_one(sh, now, hint)
    }
}
