//! `TimingSimpleCPU`: CPI = 1 plus detailed memory timing.
//!
//! Each instruction performs a timed instruction fetch; loads and stores
//! issue timed requests through the cache hierarchy and the CPU blocks
//! until the response (the real `TimingSimpleCPU` is also blocking).

use crate::cpu::TickOutcome;
use crate::dyninst::FunctionalCore;
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::Tick;

/// The timing-simple CPU model.
#[derive(Debug)]
pub struct TimingCpu {
    /// Shared functional core.
    pub core: FunctionalCore,
}

impl TimingCpu {
    /// Creates the CPU.
    pub fn new(core: FunctionalCore) -> Self {
        TimingCpu { core }
    }

    /// Fetches, executes and (for memory ops) waits for the hierarchy;
    /// one instruction per tick event.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        let id = self.core.cpu_id;
        sh.obs.call(CompClass::CpuTiming, "fetch", id, 45);

        // The fetch itself is a timed access through the I-side.
        let pc = self.core.arch.pc;
        let fetch_lat = sh.fetch_access(id as usize, pc, now);

        let d = sh.step_core(&mut self.core, now);
        sh.obs.call(CompClass::CpuTiming, "completeIfetch", id, 35);
        sh.obs.call(CompClass::CpuTiming, "executeInst", id, 40);

        let mut lat = fetch_lat.max(sh.period());
        if let Some(m) = d.mem {
            sh.obs.call(CompClass::CpuTiming, "sendTimingReq", id, 30);
            let dlat = sh.data_access(id as usize, m.addr, m.write, now + lat);
            sh.obs.call(CompClass::CpuTiming, "recvTimingResp", id, 35);
            // Stores retire through the write buffer; loads block.
            if !m.write {
                lat += dlat;
            } else {
                lat += sh.period();
            }
        }
        if d.is_syscall {
            lat += sh.cyc(10);
        }

        if d.is_halt {
            return TickOutcome { next_at: None };
        }
        let mut next = now + lat;
        if d.stall_us > 0 {
            next += d.stall_us * 1_000_000;
        }
        TickOutcome {
            next_at: Some(next),
        }
    }
}
