//! `O3CPU`: an out-of-order superscalar loosely based on the Alpha 21264
//! (as gem5's O3 model is).
//!
//! One-pass out-of-order scheduling model: instructions flow in program
//! order through fetch → decode → rename → dispatch, then issue
//! *out of order* as soon as their operands and a functional unit are
//! available, bounded by ROB / load-queue / store-queue capacity, and
//! commit in order. Branches are predicted at fetch with a tournament
//! predictor; a misprediction squashes and redirects fetch at resolve
//! time. This captures the O3 model's timing character while exercising
//! (per instruction) the largest set of simulator handlers of any model —
//! the property the paper's Figs. 2–6 and 15 hinge on.

use crate::bp::TournamentBp;
use crate::cpu::{fu_latency, TickOutcome};
use crate::dyninst::{DynInst, FunctionalCore};
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::Tick;
use gem5sim_isa::InstClass;

/// Functional-unit pools.
#[derive(Debug, Clone)]
struct FuPool {
    /// next-free time per unit, per class pool
    int_units: Vec<Tick>,
    mul_div: Vec<Tick>,
    fp_units: Vec<Tick>,
    mem_ports: Vec<Tick>,
}

impl FuPool {
    fn new() -> Self {
        FuPool {
            int_units: vec![0; 4],
            mul_div: vec![0; 1],
            fp_units: vec![0; 2],
            mem_ports: vec![0; 2],
        }
    }

    /// Reserves the earliest unit of the right pool at or after `at`;
    /// returns the issue time.
    fn reserve(&mut self, class: InstClass, at: Tick, occupancy: Tick) -> Tick {
        let pool = match class {
            InstClass::IntMul | InstClass::IntDiv => &mut self.mul_div,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv => &mut self.fp_units,
            InstClass::Load | InstClass::Store => &mut self.mem_ports,
            _ => &mut self.int_units,
        };
        let unit = pool
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("pools are non-empty");
        let start = at.max(*unit);
        *unit = start + occupancy;
        start
    }
}

/// The O3 (out-of-order) CPU model.
#[derive(Debug)]
pub struct O3Cpu {
    /// Shared functional core.
    pub core: FunctionalCore,
    /// Branch predictor.
    pub bp: TournamentBp,
    reg_ready: [Tick; 64],
    fetch_avail: Tick,
    rename_avail: Tick,
    commit_avail: Tick,
    rob_commit: Vec<Tick>, // ring: commit time per ROB slot
    lq_free: Vec<Tick>,    // ring: when each LQ slot frees
    sq_free: Vec<Tick>,
    lq_head: usize,
    sq_head: usize,
    fu: FuPool,
    draining: Option<Tick>,
    /// Squashes performed (mispredict recoveries).
    pub squashes: u64,
    /// ROB-full dispatch stalls.
    pub rob_stalls: u64,
}

impl O3Cpu {
    /// Creates the CPU with capacities from `cfg`.
    pub fn new(core: FunctionalCore, cfg: &crate::config::SystemConfig) -> Self {
        O3Cpu {
            core,
            bp: TournamentBp::new(cfg.btb_entries),
            reg_ready: [0; 64],
            fetch_avail: 0,
            rename_avail: 0,
            commit_avail: 0,
            rob_commit: vec![0; cfg.rob_entries],
            lq_free: vec![0; cfg.lq_entries],
            sq_free: vec![0; cfg.sq_entries],
            lq_head: 0,
            sq_head: 0,
            fu: FuPool::new(),
            draining: None,
            squashes: 0,
            rob_stalls: 0,
        }
    }

    fn srcs_ready(&self, d: &DynInst) -> Tick {
        let mut t = 0;
        for s in d.inst.int_srcs().into_iter().flatten() {
            t = t.max(self.reg_ready[s.index()]);
        }
        if matches!(
            d.class,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv
        ) {
            // FP dependences tracked through a single renamed chain slot.
            t = t.max(self.reg_ready[33]);
        }
        t
    }

    /// Processes one instruction through the out-of-order model.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        if let Some(done) = self.draining.take() {
            let _ = done;
            return TickOutcome { next_at: None };
        }
        let id = self.core.cpu_id;
        let width = sh.cfg.o3_width as u64;
        let slot = sh.period_of(id as usize) / width.max(1);

        // Front end.
        sh.obs.call(CompClass::CpuO3, "fetch_tick", id, 55);
        let pc = self.core.arch.pc;
        let fetch_start = now.max(self.fetch_avail);
        let ilat = sh.fetch_access(id as usize, pc, fetch_start);
        let fetch_done = fetch_start + ilat;

        let d = sh.step_core(&mut self.core, now);
        sh.obs.call(CompClass::CpuO3, "decode_tick", id, 40);
        sh.obs.call(CompClass::CpuO3, "rename_tick", id, 50);
        sh.obs
            .data(CompClass::CpuO3, id, (d.seq % 128) as u32 * 16, 16, true); // rename map

        // Dispatch: bounded by front-pipe depth, rename bandwidth and a
        // free ROB slot.
        let rob_idx = (d.seq as usize) % self.rob_commit.len();
        let rob_free_at = self.rob_commit[rob_idx];
        let mut dispatch = (fetch_done + sh.cyc(5)).max(self.rename_avail);
        if rob_free_at > dispatch {
            self.rob_stalls += 1;
            dispatch = rob_free_at;
        }
        self.rename_avail = dispatch + slot;
        sh.obs.call(CompClass::CpuO3, "iew_dispatch", id, 45);
        sh.obs
            .data(CompClass::CpuO3, id, rob_idx as u32 * 64, 64, true); // ROB entry

        // Issue out of order: operands + FU.
        let ready = self.srcs_ready(&d);
        let occ = match d.class {
            InstClass::IntDiv | InstClass::FpDiv => sh.cyc(fu_latency(d.class)),
            _ => sh.cyc(1),
        };
        let issue = self
            .fu
            .reserve(d.class, (dispatch + sh.cyc(1)).max(ready), occ);
        sh.obs.call(CompClass::CpuO3, "iew_issue", id, 50);
        sh.obs.data(
            CompClass::CpuO3,
            id,
            8192 + (d.seq % 64) as u32 * 32,
            32,
            true,
        ); // IQ entry

        let mut exec_end = issue + sh.cyc(fu_latency(d.class));
        if let Some(m) = d.mem {
            if m.write {
                // Store: SQ slot until commit; data written back at commit.
                let sq_idx = self.sq_head;
                self.sq_head = (self.sq_head + 1) % self.sq_free.len();
                let slot_ready = self.sq_free[sq_idx];
                let issue_st = issue.max(slot_ready);
                sh.obs.call(CompClass::CpuO3, "lsq_insertStore", id, 40);
                let _ = sh.data_access(id as usize, m.addr, true, issue_st);
                exec_end = issue_st + sh.cyc(1);
                self.sq_free[sq_idx] = exec_end + sh.cyc(2);
            } else {
                let lq_idx = self.lq_head;
                self.lq_head = (self.lq_head + 1) % self.lq_free.len();
                let slot_ready = self.lq_free[lq_idx];
                let issue_ld = issue.max(slot_ready);
                sh.obs.call(CompClass::CpuO3, "lsq_insertLoad", id, 40);
                let dlat = sh.data_access(id as usize, m.addr, false, issue_ld);
                exec_end = issue_ld + dlat;
                self.lq_free[lq_idx] = exec_end;
            }
        }
        sh.obs.call(CompClass::CpuO3, "iew_writeback", id, 35);

        if let Some(r) = d.inst.int_dest() {
            self.reg_ready[r.index()] = exec_end;
        }
        if matches!(
            d.class,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv
        ) {
            self.reg_ready[33] = exec_end;
        }

        // In-order commit.
        let mut commit = (exec_end + sh.cyc(1)).max(self.commit_avail);
        if d.is_syscall {
            // Syscalls serialize: they commit alone after the ROB drains.
            commit = commit.max(self.rename_avail) + sh.cyc(10);
        }
        self.commit_avail = commit + slot;
        self.rob_commit[rob_idx] = commit;
        sh.obs.call(CompClass::CpuO3, "commit_tick", id, 45);

        // Control flow.
        let mut next_fetch = fetch_start + slot;
        if let Some(c) = d.control {
            if c.is_cond {
                let pred = self.bp.predict(d.pc, &sh.obs, id);
                let mis = self.bp.update(d.pc, c.taken, c.target, pred, &sh.obs, id);
                if mis {
                    self.squashes += 1;
                    // Squash is one of the most expensive O3 host paths:
                    // walk the ROB/IQ/LSQ, restore rename maps.
                    sh.obs.call(CompClass::CpuO3, "squashAll", id, 160);
                    sh.obs.data(CompClass::CpuO3, id, 0, 512, true);
                    next_fetch = exec_end + sh.cyc(2);
                }
            } else {
                if self.bp.btb_lookup(d.pc, &sh.obs, id).is_none() {
                    next_fetch = next_fetch.max(fetch_done + sh.cyc(1));
                }
                self.bp.btb_install(d.pc, c.target);
            }
        }
        if d.is_syscall {
            next_fetch = next_fetch.max(commit);
        }
        self.fetch_avail = next_fetch;
        if d.stall_us > 0 {
            self.fetch_avail += d.stall_us * 1_000_000;
        }

        if d.is_halt {
            self.draining = Some(commit);
            return TickOutcome {
                next_at: Some(commit.max(now)),
            };
        }
        TickOutcome {
            next_at: Some(self.fetch_avail.max(now)),
        }
    }
}
