//! `AtomicSimpleCPU`: CPI = 1, atomic memory accesses.
//!
//! Memory accesses complete "atomically" within the instruction — cache
//! and TLB state is updated (so warming works, as in gem5), but no
//! contention or queuing is modeled and latency is a flat CPI of 1.

use crate::cpu::TickOutcome;
use crate::dyninst::FunctionalCore;
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::Tick;

/// The atomic CPU model.
#[derive(Debug)]
pub struct AtomicCpu {
    /// Shared functional core.
    pub core: FunctionalCore,
}

impl AtomicCpu {
    /// Creates the CPU.
    pub fn new(core: FunctionalCore) -> Self {
        AtomicCpu { core }
    }

    /// Executes one instruction per tick.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        let id = self.core.cpu_id;
        sh.obs.call(CompClass::CpuAtomic, "tick", id, 50);

        let d = sh.step_core(&mut self.core, now);

        // Atomic instruction fetch: warms the I-side, returns no timing.
        sh.obs.call(CompClass::CpuAtomic, "atomicFetchInst", id, 24);
        sh.fetch_access_atomic(id as usize, d.pc, now);

        if let Some(m) = d.mem {
            sh.obs.call(CompClass::CpuAtomic, "atomicMemAccess", id, 30);
            sh.data_access_atomic(id as usize, m.addr, m.write, now);
        }

        if d.is_halt {
            return TickOutcome { next_at: None };
        }
        let mut next = now + sh.period();
        if d.stall_us > 0 {
            next += d.stall_us * 1_000_000; // µs in ps
        }
        TickOutcome {
            next_at: Some(next),
        }
    }
}
