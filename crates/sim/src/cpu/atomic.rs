//! `AtomicSimpleCPU`: CPI = 1, atomic memory accesses.
//!
//! Memory accesses complete "atomically" within the instruction — cache
//! and TLB state is updated (so warming works, as in gem5), but no
//! contention or queuing is modeled and latency is a flat CPI of 1.

use crate::cpu::block::BlockModel;
use crate::cpu::TickOutcome;
use crate::dyninst::{DynInst, FunctionalCore};
use crate::observe::CompClass;
use crate::system::Shared;
use gem5sim_event::Tick;
use gem5sim_isa::Inst;

/// The atomic CPU model.
#[derive(Debug)]
pub struct AtomicCpu {
    /// Shared functional core.
    pub core: FunctionalCore,
}

impl AtomicCpu {
    /// Creates the CPU.
    pub fn new(core: FunctionalCore) -> Self {
        AtomicCpu { core }
    }

    /// Executes one instruction per tick.
    pub fn tick(&mut self, sh: &mut Shared, now: Tick) -> TickOutcome {
        self.exec_one(sh, now, None).1
    }

    /// One instruction's worth of observation, execution and timing —
    /// the shared body of the interp tick and the block tier's
    /// per-instruction hook.
    fn exec_one(
        &mut self,
        sh: &mut Shared,
        now: Tick,
        hint: Option<Inst>,
    ) -> (DynInst, TickOutcome) {
        let id = self.core.cpu_id;
        sh.obs.call(CompClass::CpuAtomic, "tick", id, 50);

        let d = sh.step_core_hinted(&mut self.core, now, hint);

        // Atomic instruction fetch: warms the I-side, returns no timing.
        sh.obs.call(CompClass::CpuAtomic, "atomicFetchInst", id, 24);
        sh.fetch_access_atomic(id as usize, d.pc, now);

        if let Some(m) = d.mem {
            sh.obs.call(CompClass::CpuAtomic, "atomicMemAccess", id, 30);
            sh.data_access_atomic(id as usize, m.addr, m.write, now);
        }

        if d.is_halt {
            return (d, TickOutcome { next_at: None });
        }
        let mut next = now + sh.period_of(id as usize);
        if d.stall_us > 0 {
            next += d.stall_us * 1_000_000; // µs in ps
        }
        (
            d,
            TickOutcome {
                next_at: Some(next),
            },
        )
    }
}

impl BlockModel for AtomicCpu {
    fn core(&self) -> &FunctionalCore {
        &self.core
    }

    fn after_instruction(
        &mut self,
        sh: &mut Shared,
        now: Tick,
        hint: Option<Inst>,
    ) -> (DynInst, TickOutcome) {
        self.exec_one(sh, now, hint)
    }
}
