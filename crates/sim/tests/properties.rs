//! Property-based tests of simulator invariants.

use gem5sim::config::{CacheConfig, CpuModel, SimMode, SystemConfig};
use gem5sim::mem::cache::Cache;
use gem5sim::system::System;
use gem5sim_event::{EventQueue, Priority};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::Reg;
use std::cell::RefCell;
use std::rc::Rc;
use testkit::{prop_assert, prop_assert_eq, run_cases};

/// Events fire in (tick, priority, insertion) order for arbitrary
/// schedules.
#[test]
fn event_queue_total_order() {
    run_cases("event_queue_total_order", 64, |g| {
        let events = g.vec(1..100, |g| (g.u64_in(0..1000), g.i64_in(-5..5) as i16));
        let eq = EventQueue::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        for (i, &(t, p)) in events.iter().enumerate() {
            let f = Rc::clone(&fired);
            eq.schedule(t, Priority(p), move |eq| {
                f.borrow_mut().push((eq.cur_tick(), p, i));
            });
        }
        eq.run(None);
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), events.len());
        for w in fired.windows(2) {
            let (t0, p0, i0) = w[0];
            let (t1, p1, i1) = w[1];
            prop_assert!(
                (t0, p0) < (t1, p1) || ((t0, p0) == (t1, p1) && i0 < i1),
                "order violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        Ok(())
    });
}

/// A cache never exceeds its capacity and always hits immediately
/// after an access to the same line.
#[test]
fn cache_capacity_and_rehit() {
    run_cases("cache_capacity_and_rehit", 64, |g| {
        let addrs = g.vec(1..300, |g| g.u64_in(0..1_000_000));
        let cfg = CacheConfig {
            size: 2048,
            assoc: 4,
            line: 64,
            hit_latency: 1,
            mshrs: 4,
        };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a, a % 3 == 0);
            prop_assert!(c.probe(a), "line must be resident right after access");
            prop_assert!(c.valid_lines() <= 32);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        Ok(())
    });
}

/// Loop programs with data-dependent trip counts commit the same
/// instruction count on every CPU model.
#[test]
fn models_agree_on_loops() {
    run_cases("models_agree_on_loops", 64, |g| {
        let n = g.i64_in(1..60);
        let step = g.i64_in(1..5);
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 0)
            .li(Reg::T1, n * step)
            .label("loop")
            .addi(Reg::T0, Reg::T0, step)
            .blt(Reg::T0, Reg::T1, "loop")
            .halt();
        let prog = b.assemble().unwrap();
        let counts: Vec<u64> = CpuModel::ALL
            .iter()
            .map(|&m| {
                let mut sys = System::new(SystemConfig::new(m, SimMode::Se), prog.clone());
                sys.run().committed_insts
            })
            .collect();
        prop_assert!(counts.iter().all(|&c| c == counts[0]), "{:?}", counts);
        prop_assert_eq!(counts[0], 2 + 2 * n as u64 + 1);
        Ok(())
    });
}

/// Guest time is monotone in work: more loop iterations never take
/// fewer simulated ticks (checked per model).
#[test]
fn sim_time_monotone_in_work() {
    run_cases("sim_time_monotone_in_work", 38, |g| {
        let n = g.u64_in(2..40);
        for m in [CpuModel::Timing, CpuModel::O3] {
            let run = |iters: u64| {
                let mut b = ProgramBuilder::new();
                b.li(Reg::T0, iters as i64)
                    .label("l")
                    .addi(Reg::T0, Reg::T0, -1)
                    .bne(Reg::T0, Reg::ZERO, "l")
                    .halt();
                let mut sys = System::new(SystemConfig::new(m, SimMode::Se), b.assemble().unwrap());
                sys.run().sim_ticks
            };
            prop_assert!(run(2 * n) > run(n), "{m:?}");
        }
        Ok(())
    });
}
