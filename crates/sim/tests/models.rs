//! Cross-model integration tests: all four CPU models must compute the
//! same architectural results, while their timing and handler footprints
//! differ in the directions the paper relies on.

use gem5sim::config::{CpuModel, SimMode, SystemConfig};
use gem5sim::observe::{CountingObserver, Obs};
use gem5sim::system::System;
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::{MemSize, Program, Reg};
use std::cell::RefCell;
use std::rc::Rc;

/// A little program with loops, memory traffic, data-dependent branches
/// and a function call: sums of a pseudo-random array, result printed via
/// exit code.
fn workload() -> Program {
    let mut b = ProgramBuilder::new();
    let base = 0x0010_0000i64;
    // Fill 256 words with an LCG.
    b.li(Reg::T0, base)
        .li(Reg::T1, 0) // i
        .li(Reg::T2, 256)
        .li(Reg::S0, 1103515245)
        .li(Reg::S1, 12345)
        .li(Reg::A0, 777) // seed
        .label("fill")
        .mul(Reg::A0, Reg::A0, Reg::S0)
        .add(Reg::A0, Reg::A0, Reg::S1)
        .slli(Reg::T3, Reg::T1, 3)
        .add(Reg::T3, Reg::T3, Reg::T0)
        .sd(Reg::A0, Reg::T3, 0)
        .addi(Reg::T1, Reg::T1, 1)
        .bne(Reg::T1, Reg::T2, "fill")
        // Sum elements, with a data-dependent branch (count odd values).
        .li(Reg::T1, 0)
        .li(Reg::A1, 0) // sum
        .li(Reg::A2, 0) // odd count
        .label("sum")
        .slli(Reg::T3, Reg::T1, 3)
        .add(Reg::T3, Reg::T3, Reg::T0)
        .ld(Reg::T4, Reg::T3, 0)
        .add(Reg::A1, Reg::A1, Reg::T4)
        .andi(Reg::T5, Reg::T4, 1)
        .beq(Reg::T5, Reg::ZERO, "even")
        .addi(Reg::A2, Reg::A2, 1)
        .label("even")
        .addi(Reg::T1, Reg::T1, 1)
        .bne(Reg::T1, Reg::T2, "sum")
        // Call a helper that xors sum and count.
        .call("mix")
        .halt()
        .label("mix")
        .xor(Reg::A0, Reg::A1, Reg::A2)
        .ret();
    b.assemble().unwrap()
}

fn run(model: CpuModel, mode: SimMode) -> gem5sim::system::SimResult {
    let cfg = SystemConfig::new(model, mode);
    let mut sys = System::new(cfg, workload());
    sys.run()
}

#[test]
fn all_models_commit_identical_instruction_counts() {
    let counts: Vec<u64> = CpuModel::ALL
        .iter()
        .map(|&m| run(m, SimMode::Se).committed_insts)
        .collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    assert!(counts[0] > 3000, "workload is non-trivial: {}", counts[0]);
}

#[test]
fn se_and_fs_commit_same_user_work_modulo_irqs() {
    let se = run(CpuModel::Atomic, SimMode::Se);
    let fs = run(CpuModel::Atomic, SimMode::Fs);
    // No interrupt handler in this workload: FS adds TLB costs but not
    // instructions.
    assert_eq!(se.committed_insts, fs.committed_insts);
    assert!(fs.itlb.0 > 0, "FS mode exercises the iTLB");
    assert_eq!(se.itlb.0, 0, "SE mode bypasses the TLB");
    assert!(fs.sim_ticks >= se.sim_ticks, "translation costs time");
}

#[test]
fn detailed_memory_models_are_slower_than_atomic() {
    let atomic = run(CpuModel::Atomic, SimMode::Se);
    let timing = run(CpuModel::Timing, SimMode::Se);
    assert!(
        timing.sim_ticks > atomic.sim_ticks,
        "timing {} vs atomic {}",
        timing.sim_ticks,
        atomic.sim_ticks
    );
}

#[test]
fn o3_is_faster_than_timing_in_guest_time() {
    let timing = run(CpuModel::Timing, SimMode::Se);
    let o3 = run(CpuModel::O3, SimMode::Se);
    assert!(
        o3.sim_ticks < timing.sim_ticks,
        "an 8-wide OoO must beat a blocking 1-wide core: o3={} timing={}",
        o3.sim_ticks,
        timing.sim_ticks
    );
    assert!(
        o3.guest_ipc() > 1.0,
        "OoO IPC {} should exceed 1",
        o3.guest_ipc()
    );
}

#[test]
fn branch_predictor_engages_on_detailed_models() {
    for m in [CpuModel::Minor, CpuModel::O3] {
        let r = run(m, SimMode::Se);
        let (lookups, mispredicts) = r.bp.expect("detailed models have a predictor");
        assert!(lookups > 500, "{m:?}: {lookups}");
        assert!(
            mispredicts > 0,
            "data-dependent branches must miss sometimes"
        );
        assert!(mispredicts < lookups / 2, "predictor must beat a coin flip");
    }
}

#[test]
fn caches_see_traffic_and_reasonable_miss_rates() {
    let r = run(CpuModel::Timing, SimMode::Se);
    assert!(r.l1i.accesses > 1000);
    assert!(r.l1d.accesses > 400);
    assert!(r.l1i.miss_rate() < 0.5);
    assert!(r.l1d.misses > 0, "256-word array does not fit one line");
    assert!(r.dram_accesses > 0);
}

#[test]
fn observer_footprint_grows_with_cpu_detail() {
    let mut calls = Vec::new();
    let mut methods = Vec::new();
    for &m in &CpuModel::ALL {
        let ctr = Rc::new(RefCell::new(CountingObserver::default()));
        let cfg = SystemConfig::new(m, SimMode::Se);
        let mut sys = System::with_observer(cfg, workload(), Obs::new(ctr.clone()));
        sys.run();
        let c = ctr.borrow();
        calls.push(c.calls);
        methods.push(c.methods.len());
    }
    // The paper's central observation: more detailed CPU models touch more
    // simulator code per instruction (Fig. 15: 1602..5209 functions) and
    // run more handler work overall.
    assert!(
        methods.windows(2).all(|w| w[0] < w[1]),
        "distinct methods must grow with detail: {methods:?}"
    );
    assert!(
        calls[0] < calls[3],
        "O3 must execute more handler calls than Atomic: {calls:?}"
    );
}

#[test]
fn fs_timer_interrupts_are_delivered() {
    // Workload with an interrupt handler that counts ticks.
    let mut b = ProgramBuilder::new();
    b.li(Reg::S8, 0x8000) // counter address
        .li(Reg::T0, 200_000)
        .label("spin")
        .addi(Reg::T0, Reg::T0, -1)
        .bne(Reg::T0, Reg::ZERO, "spin")
        .halt()
        .label("__irq_handler")
        .ld(Reg::T6, Reg::S8, 0)
        .addi(Reg::T6, Reg::T6, 1)
        .sd(Reg::T6, Reg::S8, 0)
        .li(Reg::A7, 0x1000)
        .ecall();
    let prog = b.assemble().unwrap();
    let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Fs);
    let mut sys = System::new(cfg, prog);
    let r = sys.run();
    assert!(
        r.irqs_taken > 0,
        "spin loop long enough to catch timer irqs"
    );
}

#[test]
fn multicore_partitions_work() {
    // Each hart writes its id to a distinct slot; hart 0 also spins a bit.
    let mut b = ProgramBuilder::new();
    b.li(Reg::T0, 0x20000)
        .slli(Reg::T1, Reg::TP, 3)
        .add(Reg::T0, Reg::T0, Reg::T1)
        .addi(Reg::T2, Reg::TP, 1)
        .sd(Reg::T2, Reg::T0, 0)
        .halt();
    let prog = b.assemble().unwrap();
    let cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se).with_cpus(4);
    let mut sys = System::new(cfg, prog);
    let r = sys.run();
    assert_eq!(r.committed_insts, 4 * 6);
    assert!(r.sim_ticks > 0);
}

#[test]
fn max_insts_limit_stops_simulation() {
    let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(100);
    let mut sys = System::new(cfg, workload());
    let r = sys.run();
    assert!(r.committed_insts >= 100 && r.committed_insts < 110);
}

#[test]
fn stat_dump_is_complete() {
    let r = run(CpuModel::O3, SimMode::Se);
    let d = r.stat_dump();
    for key in [
        "sim_ticks",
        "sim_insts",
        "system.cpu.ipc",
        "system.l1i.miss_rate",
        "system.cpu.branchPred.lookups",
    ] {
        assert!(d.get(key).is_some(), "missing {key}");
    }
}

#[test]
fn write_syscall_reaches_stdout() {
    let mut b = ProgramBuilder::new();
    let msg_addr = 0x4000i64;
    b.li(Reg::T0, msg_addr)
        .li(Reg::T1, 0x6f6c6c65680i64 >> 4) // "hello" packed
        .sd(Reg::T1, Reg::T0, 0)
        .li(Reg::A7, 64)
        .li(Reg::A0, 1)
        .li(Reg::A1, msg_addr)
        .li(Reg::A2, 5)
        .ecall()
        .halt();
    let prog = b.assemble().unwrap();
    let cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se);
    let mut sys = System::new(cfg, prog);
    let r = sys.run();
    assert_eq!(r.stdout, b"hello");
}

#[test]
fn memory_results_identical_across_models() {
    // Drive each model and compare a memory region via stdout.
    let mut outs = Vec::new();
    for &m in &CpuModel::ALL {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 0x5000)
            .li(Reg::T1, 0)
            .li(Reg::T2, 64)
            .label("w")
            .mul(Reg::T3, Reg::T1, Reg::T1)
            .slli(Reg::T4, Reg::T1, 0)
            .add(Reg::T3, Reg::T3, Reg::T4)
            .andi(Reg::T3, Reg::T3, 0xFF)
            .add(Reg::T5, Reg::T0, Reg::T1)
            .sb(Reg::T3, Reg::T5, 0)
            .addi(Reg::T1, Reg::T1, 1)
            .bne(Reg::T1, Reg::T2, "w")
            .li(Reg::A7, 64)
            .li(Reg::A0, 1)
            .li(Reg::A1, 0x5000)
            .li(Reg::A2, 64)
            .ecall()
            .halt();
        let prog = b.assemble().unwrap();
        let cfg = SystemConfig::new(m, SimMode::Se);
        let mut sys = System::new(cfg, prog);
        outs.push(sys.run().stdout);
    }
    assert!(outs.iter().all(|o| *o == outs[0] && o.len() == 64));
    // And the values are the expected i*i + i mod 256.
    assert_eq!(outs[0][3], ((3 * 3 + 3) % 256) as u8);
    let _ = MemSize::D;
}
