//! Block-tier behavior at the system level: self-modification hygiene,
//! instruction-limit precision, and event accounting.
//!
//! (The byte-identity contract itself is pinned by the repo-level
//! differential harness `tests/exec_tier_diff.rs`; the decoded-block
//! cache mechanics by unit tests in `gem5sim_isa::block`.)

use gem5sim::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use gem5sim::system::{SimResult, System};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::{Program, Reg, TEXT_BASE};

fn run(prog: &Program, cfg: SystemConfig) -> (SimResult, System) {
    let mut sys = System::new(cfg, prog.clone());
    let r = sys.run();
    (r, sys)
}

/// A loop that stores into its own text range. Fetches read the program
/// image (stores land in physical memory), so results are unaffected —
/// but the block cache must drop the overlapping decoded blocks rather
/// than keep serving entries it knows are stale.
#[test]
fn stores_into_text_invalidate_decoded_blocks() {
    let mut b = ProgramBuilder::new();
    // Layout (one inst each): li@0, li@4, sd@8, addi@12, bne@16, halt@20.
    // The store targets offset 8 — the loop body's own block — so every
    // iteration knocks out the block it is executing from.
    b.li(Reg::S2, TEXT_BASE as i64)
        .li(Reg::T0, 5)
        .label("loop")
        .sd(Reg::ZERO, Reg::S2, 8)
        .addi(Reg::T0, Reg::T0, -1)
        .bne(Reg::T0, Reg::ZERO, "loop")
        .halt();
    let prog = b.assemble().unwrap();

    let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se);
    let (interp, _) = run(&prog, cfg.clone().with_exec_tier(ExecTier::Interp));
    let (block, sys) = run(&prog, cfg.with_exec_tier(ExecTier::Block));
    assert_eq!(interp, block, "self-modifying stores changed results");

    let stats = sys.block_stats();
    assert!(
        stats.invalidated >= 5,
        "each of the 5 stores must invalidate the block it overlaps (got {stats:?})"
    );
    assert!(
        stats.compiled >= 5,
        "invalidated blocks recompile on re-entry (got {stats:?})"
    );
}

/// A store just past the text segment must NOT invalidate anything.
#[test]
fn stores_outside_text_leave_the_cache_alone() {
    let mut b = ProgramBuilder::new();
    b.li(Reg::S2, 0x0010_0000) // far from text
        .li(Reg::T0, 5)
        .label("loop")
        .sd(Reg::ZERO, Reg::S2, 0)
        .addi(Reg::T0, Reg::T0, -1)
        .bne(Reg::T0, Reg::ZERO, "loop")
        .halt();
    let prog = b.assemble().unwrap();
    let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_exec_tier(ExecTier::Block);
    let (_, sys) = run(&prog, cfg);
    let stats = sys.block_stats();
    assert_eq!(stats.invalidated, 0, "no text overlap, no invalidation");
    // The whole loop lives inside one decoded block, and the driver
    // indexes into its held block by pc — so a hot single-block loop
    // causes zero cache traffic after the initial compile.
    assert_eq!(
        stats.compiled, 2,
        "loop block + halt block only (got {stats:?})"
    );
    assert_eq!(stats.hits, 0, "no lookups while staying in one block");
}

/// `max_insts` must stop the machine at exactly the same instruction in
/// both tiers, even when the limit lands in the middle of a decoded
/// block — the batch loop checks the limit per instruction, like the
/// event loop does.
#[test]
fn instruction_limit_is_exact_mid_block() {
    let mut b = ProgramBuilder::new();
    for _ in 0..100 {
        b.nop(); // one long straight-line block (cut only by MAX_BLOCK_INSTS)
    }
    b.halt();
    let prog = b.assemble().unwrap();
    for limit in [1, 37, 64, 65, 99] {
        let cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se).with_max_insts(limit);
        let (interp, _) = run(&prog, cfg.clone().with_exec_tier(ExecTier::Interp));
        let (block, _) = run(&prog, cfg.with_exec_tier(ExecTier::Block));
        assert_eq!(interp, block, "limit {limit} diverged");
        assert_eq!(interp.committed_insts, limit, "limit {limit} overshot");
    }
}

/// Batched instructions are credited to the event queue: `host_events`
/// and `sim_ticks` match the interp tier, while the block tier actually
/// services far fewer real events (the whole point of the tier).
#[test]
fn batching_is_credited_not_skipped() {
    // The loop spans two blocks (the `j` is its own block), so every
    // iteration transitions between cached blocks and generates hits.
    let mut b = ProgramBuilder::new();
    b.li(Reg::T0, 400)
        .label("loop")
        .addi(Reg::T0, Reg::T0, -1)
        .beq(Reg::T0, Reg::ZERO, "done")
        .j("loop")
        .label("done")
        .halt();
    let prog = b.assemble().unwrap();
    let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se);
    let (interp, _) = run(&prog, cfg.clone().with_exec_tier(ExecTier::Interp));
    let (block, sys) = run(&prog, cfg.with_exec_tier(ExecTier::Block));
    assert_eq!(interp.host_events, block.host_events);
    assert_eq!(interp.sim_ticks, block.sim_ticks);
    let stats = sys.block_stats();
    assert!(
        stats.hits > 300,
        "a 400-iteration loop must run from the cache (got {stats:?})"
    );
    assert_eq!(stats.evicted, 0, "default capacity must not evict here");
}
