//! Std-only property-testing harness.
//!
//! The build environment is offline, so the workspace cannot depend on
//! `proptest`. This crate provides the small subset the repository's
//! property tests actually need:
//!
//! * [`Gen`] — a seeded, deterministic value generator (SplitMix64);
//! * [`run_cases`] — runs a property closure over many generated cases,
//!   reporting the failing case's seed so it can be replayed exactly;
//! * [`prop_assert!`] / [`prop_assert_eq!`] — assertion macros that
//!   return an error from the property closure instead of panicking, so
//!   the harness can attach case context.
//!
//! There is intentionally no shrinking: generators are seeded and every
//! case prints its replay seed, which for this codebase's deterministic
//! simulations is enough to reproduce and debug a failure.
//!
//! # Example
//!
//! ```
//! use testkit::{prop_assert, prop_assert_eq, run_cases};
//!
//! run_cases("addition_commutes", 64, |g| {
//!     let a = g.u64_in(0..1000);
//!     let b = g.u64_in(0..1000);
//!     prop_assert_eq!(a + b, b + a);
//!     prop_assert!(a + b >= a, "no wrap expected for {a} + {b}");
//!     Ok(())
//! });
//! ```

/// Result type returned by property closures.
pub type PropResult = Result<(), String>;

/// Default base seed; override with the `TESTKIT_SEED` environment
/// variable to explore a different deterministic case stream.
const DEFAULT_SEED: u64 = 0x15A55_2023;

/// A deterministic pseudo-random value generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// Uniform `i64` in `[range.start, range.end)`.
    pub fn i64_in(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as i64
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `u16` in `[range.start, range.end)`.
    pub fn u16_in(&mut self, range: std::ops::Range<u16>) -> u16 {
        self.u64_in(range.start as u64..range.end as u64) as u16
    }

    /// Uniform `u8` in `[range.start, range.end)`.
    pub fn u8_in(&mut self, range: std::ops::Range<u8>) -> u8 {
        self.u64_in(range.start as u64..range.end as u64) as u8
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() % 2 == 0
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.usize_in(0..xs.len())]
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `f`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// The base seed for this process (`TESTKIT_SEED` env var, else fixed).
pub fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Runs `cases` generated cases of the property `f`.
///
/// Each case gets a [`Gen`] seeded deterministically from the base seed
/// and the case index; a failing case panics with the property name, the
/// case index and the exact seed to replay it (`Gen::new(seed)`).
///
/// # Panics
///
/// Panics when a case returns `Err` — this is the test-failure path.
pub fn run_cases(name: &str, cases: u32, f: impl Fn(&mut Gen) -> PropResult) {
    let base = base_seed();
    for i in 0..cases {
        let seed = base
            .wrapping_mul(0x100000001B3)
            .wrapping_add(i as u64)
            .wrapping_mul(0x2545F491_4F6CDD1D);
        let mut g = Gen::new(seed);
        if let Err(msg) = f(&mut g) {
            panic!(
                "property `{name}` failed at case {i}/{cases} \
                 (replay: Gen::new({seed:#x})): {msg}"
            );
        }
    }
}

/// `assert!` for property closures: returns `Err` instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` for property closures: returns `Err` instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): left = {:?}, right = {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{}): left = {:?}, right = {:?}: {}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r,
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(42);
        for _ in 0..1000 {
            let v = g.u64_in(10..20);
            assert!((10..20).contains(&v));
            let i = g.i64_in(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut g = Gen::new(1);
        let seen: std::collections::HashSet<u64> = (0..200).map(|_| g.u64_in(0..16)).collect();
        assert!(seen.len() > 12, "{seen:?}");
    }

    #[test]
    fn vec_and_pick_work() {
        let mut g = Gen::new(3);
        let v = g.vec(5..9, |g| g.u8_in(0..4));
        assert!((5..9).contains(&v.len()));
        let choices = [1, 2, 3];
        assert!(choices.contains(g.pick(&choices)));
    }

    #[test]
    fn run_cases_passes_good_properties() {
        run_cases("tautology", 16, |g| {
            let x = g.u64_in(0..100);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn run_cases_panics_with_replay_seed() {
        run_cases("always_fails", 4, |g| {
            let x = g.u64_in(0..10);
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }
}
