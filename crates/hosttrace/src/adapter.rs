//! The bridge from simulator instrumentation to the host instruction
//! stream.

use crate::profile::CallProfile;
use crate::record::{DataRef, ExecRecord, TraceSink};
use crate::registry::Registry;
use crate::{mix2, mix64};
use gem5sim::observe::{CompClass, ExecutionObserver, HandlerCall};
use std::sync::Arc;

/// Base host virtual address of the simulator's heap-allocated state
/// (SimObject storage). Each component class gets a 256 MB region, each
/// object instance a 1 MB slice.
pub const DATA_SEG_BASE: u64 = 0x10_0000_0000;

/// Translates [`HandlerCall`]s into [`ExecRecord`] streams.
///
/// Every handler invocation becomes: one call of its primary function
/// (entered through virtual dispatch — one indirect branch), followed by a
/// deterministic fan-out of helper calls proportional to the handler's
/// work — parameter checks, packet methods, event (de)scheduling, stat
/// updates, and (30% of the time) allocator/stdlib traffic. This is the
/// call-tree shape VTune observes under each gem5 handler.
#[derive(Debug)]
pub struct TraceAdapter<S> {
    registry: Arc<Registry>,
    sink: S,
    profile: CallProfile,
    /// Per-component work multipliers (the Sec. VI accelerator study:
    /// what if this component's host work were offloaded/specialized?).
    work_scale: [f32; 16],
}

impl<S: TraceSink> TraceAdapter<S> {
    /// Creates the adapter.
    pub fn new(registry: Arc<Registry>, sink: S) -> Self {
        let profile = CallProfile::new(&registry);
        TraceAdapter {
            registry,
            sink,
            profile,
            work_scale: [1.0; 16],
        }
    }

    /// Scales the host work of one component class by `factor` — models
    /// specializing/offloading that component (the paper's Sec. VI
    /// discussion). `factor = 0.1` models a 10x-accelerated component;
    /// values above 1 model de-optimization.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn set_work_scale(&mut self, comp: CompClass, factor: f32) {
        assert!(factor > 0.0, "work scale must be positive");
        self.work_scale[comp as usize] = factor;
    }

    /// The call profile accumulated so far.
    pub fn profile(&self) -> &CallProfile {
        &self.profile
    }

    /// The shared binary model.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Consumes the adapter, returning `(sink, profile)`.
    pub fn into_parts(self) -> (S, CallProfile) {
        (self.sink, self.profile)
    }
}

impl<S: TraceSink> ExecutionObserver for TraceAdapter<S> {
    fn call(&mut self, c: HandlerCall) {
        let scale = self.work_scale[c.comp as usize];
        let scaled = ((c.work as f32 * scale) as u32).clamp(4, u16::MAX as u32);
        let c = HandlerCall {
            work: scaled as u16,
            ..c
        };
        let work = c.work as u32;
        // Primary function: entered via virtual dispatch.
        let pfid = self.registry.primary(c.comp, c.method);
        let variant = self.profile.bump(pfid);
        self.sink.exec(ExecRecord {
            func: pfid,
            uops: c.work.max(8),
            cond_branches: (work / 5).clamp(1, 255) as u8,
            indirect_branches: 1 + (work / 64).min(3) as u8,
            loads: (work / 4).min(255) as u8,
            stores: (work / 7).min(255) as u8,
            variant,
        });

        // Helper fan-out.
        let n_helpers = (work / 18).max(1);
        for i in 0..n_helpers {
            let hfid = self.registry.helper(c.comp, c.method, i, variant);
            let hv = self.profile.bump(hfid);
            let h = mix2(hfid.0 as u64, hv as u64 >> 4);
            let uops = 6 + (h % 18) as u16;
            self.sink.exec(ExecRecord {
                func: hfid,
                uops,
                cond_branches: 1 + (mix64(h) % 3) as u8,
                indirect_branches: (h % 8 == 0) as u8,
                loads: 1 + (uops / 5) as u8,
                stores: (uops / 8) as u8,
                variant: hv,
            });
        }
    }

    fn data(&mut self, comp: CompClass, obj: u16, offset: u32, bytes: u16, write: bool) {
        let addr = DATA_SEG_BASE
            + (comp as u64) * 0x1000_0000
            + (obj as u64) * 0x10_0000
            + (offset as u64);
        self.sink.data(DataRef {
            addr,
            bytes: bytes as u32,
            write,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PageBacking;
    use crate::record::CountingSink;
    use crate::registry::BinaryVariant;

    fn adapter() -> TraceAdapter<CountingSink> {
        let reg = Arc::new(Registry::new(BinaryVariant::Base, PageBacking::Base));
        TraceAdapter::new(reg, CountingSink::default())
    }

    #[test]
    fn handler_calls_fan_out() {
        let mut a = adapter();
        a.call(HandlerCall {
            comp: CompClass::CpuO3,
            method: "fetch_tick",
            obj: 0,
            work: 60,
        });
        // 1 primary + work/18 = 3 helpers
        assert_eq!(a.profile().total_calls(), 4);
        let (sink, profile) = a.into_parts();
        assert_eq!(sink.execs, 4);
        assert!(sink.uops >= 60 + 3 * 6);
        assert!(profile.functions_touched() >= 3);
    }

    #[test]
    fn repeated_calls_touch_more_functions_then_saturate() {
        let mut a = adapter();
        let mut touched = Vec::new();
        for round in 0..6 {
            for _ in 0..200 {
                a.call(HandlerCall {
                    comp: CompClass::Dcache,
                    method: "access",
                    obj: 0,
                    work: 30,
                });
            }
            touched.push(a.profile().functions_touched());
            let _ = round;
        }
        assert!(touched[1] > touched[0]);
        // Growth slows (coverage saturates).
        let d_early = touched[1] - touched[0];
        let d_late = touched[5] - touched[4];
        assert!(d_late < d_early, "{touched:?}");
    }

    #[test]
    fn data_addresses_partition_by_component_and_object() {
        let mut a = adapter();
        a.data(CompClass::Icache, 0, 0, 64, false);
        a.data(CompClass::Icache, 1, 0, 64, false);
        a.data(CompClass::Dram, 0, 0, 64, true);
        let sink = a.into_parts().0;
        assert_eq!(sink.datas, 3);
    }

    #[test]
    fn variants_increment_per_function() {
        let mut a = adapter();
        let call = HandlerCall {
            comp: CompClass::EventQueue,
            method: "serviceOne",
            obj: 0,
            work: 20,
        };
        a.call(call);
        a.call(call);
        // Primary was called twice.
        let reg = Arc::clone(a.registry());
        let pfid = reg.primary(CompClass::EventQueue, "serviceOne");
        let top = a.profile().hottest(&reg, 5);
        let name = reg.name(pfid);
        assert!(top.iter().any(|(n, c, _)| *n == name && *c == 2));
    }
}
