//! The synthetic gem5 binary's text-segment layout and page backing.

/// Size of an x86-64 huge page.
pub const HUGE_PAGE: u64 = 2 * 1024 * 1024;

/// How the text segment is backed by virtual-memory pages — the paper's
/// Figs. 10–11 experiment (Intel iodlr THP remapping vs libhugetlbfs EHP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageBacking {
    /// Base pages only (the host's native page size).
    Base,
    /// Transparent huge pages via runtime remapping: covers a *subset* of
    /// the code segment (iodlr remaps "a subset of gem5's code", per the
    /// paper), given as a percentage.
    Thp {
        /// Percent of the text segment backed by 2 MB pages.
        coverage_pct: u8,
    },
    /// Explicit huge pages: the whole text segment.
    Ehp,
}

impl PageBacking {
    /// Default THP configuration (iodlr remaps a *subset* of the text —
    /// the paper measured a 63% average iTLB-overhead reduction, i.e.
    /// partial coverage).
    pub fn thp() -> Self {
        PageBacking::Thp { coverage_pct: 48 }
    }
}

/// The text segment of the simulator binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextLayout {
    /// Base virtual address of text.
    pub base: u64,
    /// Text size in bytes.
    pub size: u64,
    /// Page backing for text.
    pub backing: PageBacking,
}

impl TextLayout {
    /// Whether `addr` (must be within text) is backed by a huge page.
    pub fn is_huge_backed(&self, addr: u64) -> bool {
        match self.backing {
            PageBacking::Base => false,
            PageBacking::Ehp => true,
            PageBacking::Thp { coverage_pct } => {
                addr < self.base + self.size * coverage_pct as u64 / 100
            }
        }
    }

    /// Whether `addr` lies in the text segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }

    /// The page identifier for `addr` given the host's base page size.
    ///
    /// Huge-backed text collapses 2 MB of addresses onto one page id, so
    /// an iTLB entry covers 512× (4 KB hosts) more code.
    pub fn page_id(&self, addr: u64, host_page: u64) -> u64 {
        if self.contains(addr) && self.is_huge_backed(addr) {
            // Distinguish huge pages from base pages by a high tag bit.
            (addr / HUGE_PAGE) | (1 << 62)
        } else {
            addr / host_page
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(backing: PageBacking) -> TextLayout {
        TextLayout {
            base: 0x40_0000,
            size: 4 * 1024 * 1024,
            backing,
        }
    }

    #[test]
    fn base_pages_split_text_finely() {
        let l = layout(PageBacking::Base);
        assert!(!l.is_huge_backed(0x40_0000));
        assert_ne!(l.page_id(0x40_0000, 4096), l.page_id(0x40_1000, 4096));
    }

    #[test]
    fn ehp_covers_everything() {
        let l = layout(PageBacking::Ehp);
        assert!(l.is_huge_backed(l.base));
        assert!(l.is_huge_backed(l.base + l.size - 1));
        // Two addresses 1 MB apart share a huge page id.
        assert_eq!(
            l.page_id(0x40_0000, 4096),
            l.page_id(0x40_0000 + HUGE_PAGE / 2, 4096)
        );
    }

    #[test]
    fn thp_covers_a_prefix() {
        let l = layout(PageBacking::thp());
        assert!(l.is_huge_backed(l.base));
        assert!(!l.is_huge_backed(l.base + l.size - 1));
    }

    #[test]
    fn larger_host_pages_reduce_page_count() {
        let l = layout(PageBacking::Base);
        let pages_4k: std::collections::HashSet<u64> = (0..l.size)
            .step_by(4096)
            .map(|o| l.page_id(l.base + o, 4096))
            .collect();
        let pages_16k: std::collections::HashSet<u64> = (0..l.size)
            .step_by(4096)
            .map(|o| l.page_id(l.base + o, 16384))
            .collect();
        assert_eq!(pages_4k.len(), 4 * pages_16k.len());
    }

    #[test]
    fn non_text_addresses_use_base_pages_even_with_ehp() {
        let l = layout(PageBacking::Ehp);
        let heap = 0x10_0000_0000u64;
        assert_eq!(l.page_id(heap, 4096), heap / 4096);
    }
}
