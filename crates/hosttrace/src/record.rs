//! The host instruction stream: record types and sinks.

use crate::registry::FunctionId;

/// One host *function invocation* with its block-level character.
///
/// The host microarchitecture model expands this into instruction-cache
/// line touches (from the function's code address/size in the
/// [`Registry`](crate::registry::Registry)), decode traffic, branch events
/// and local data accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Which function ran.
    pub func: FunctionId,
    /// Host µops executed in this invocation.
    pub uops: u16,
    /// Conditional branches executed.
    pub cond_branches: u8,
    /// Indirect calls/jumps (virtual dispatch, function-pointer calls).
    pub indirect_branches: u8,
    /// Loads to function-local data (stack, locals).
    pub loads: u8,
    /// Stores to function-local data.
    pub stores: u8,
    /// Per-function invocation counter; drives deterministic branch
    /// outcome and target streams.
    pub variant: u32,
}

/// A host data reference into simulator state (tag arrays, ROB entries,
/// packet objects…).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRef {
    /// Host virtual address.
    pub addr: u64,
    /// Bytes touched.
    pub bytes: u32,
    /// Whether the touch writes.
    pub write: bool,
}

/// Consumer of the host instruction stream.
pub trait TraceSink {
    /// A function invocation.
    fn exec(&mut self, rec: ExecRecord);
    /// A simulator-state data touch.
    fn data(&mut self, dref: DataRef);
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn exec(&mut self, _rec: ExecRecord) {}
    fn data(&mut self, _dref: DataRef) {}
}

/// Fans one stream out to several sinks — used to evaluate multiple host
/// platforms over a single guest simulation.
#[derive(Debug, Default)]
pub struct FanoutSink<S> {
    /// The downstream sinks.
    pub sinks: Vec<S>,
}

impl<S> FanoutSink<S> {
    /// Wraps the given sinks.
    pub fn new(sinks: Vec<S>) -> Self {
        FanoutSink { sinks }
    }

    /// Unwraps the sinks.
    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: TraceSink> TraceSink for FanoutSink<S> {
    fn exec(&mut self, rec: ExecRecord) {
        for s in &mut self.sinks {
            s.exec(rec);
        }
    }
    fn data(&mut self, dref: DataRef) {
        for s in &mut self.sinks {
            s.data(dref);
        }
    }
}

/// One event of the post-adapter host stream, in order. The unit of
/// guest-trace memoization: a recorded `Vec<TraceEvent>` replays into any
/// number of host engines without re-running the guest simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A function invocation.
    Exec(ExecRecord),
    /// A simulator-state data touch.
    Data(DataRef),
}

/// Records the stream into memory, up to a cap.
///
/// Past `cap` events the recorder stops storing (and remembers that it
/// overflowed) instead of growing without bound — large guest simulations
/// are simply not cached rather than exhausting memory.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
    cap: usize,
    overflowed: bool,
}

impl RecordingSink {
    /// A recorder that keeps at most `cap` events.
    pub fn with_cap(cap: usize) -> Self {
        RecordingSink {
            events: Vec::new(),
            cap,
            overflowed: false,
        }
    }

    /// Whether the stream exceeded the cap (the recording is incomplete
    /// and must not be replayed).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The complete recorded stream, or `None` if it overflowed.
    pub fn into_events(self) -> Option<Vec<TraceEvent>> {
        if self.overflowed {
            None
        } else {
            Some(self.events)
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.overflowed {
            return;
        }
        if self.events.len() >= self.cap {
            self.overflowed = true;
            self.events = Vec::new();
            return;
        }
        self.events.push(ev);
    }
}

impl TraceSink for RecordingSink {
    fn exec(&mut self, rec: ExecRecord) {
        self.push(TraceEvent::Exec(rec));
    }
    fn data(&mut self, dref: DataRef) {
        self.push(TraceEvent::Data(dref));
    }
}

/// Duplicates one stream into two heterogeneous sinks — used to feed host
/// engines live while simultaneously recording the stream for the
/// memoization cache.
#[derive(Debug)]
pub struct TeeSink<A, B> {
    /// First downstream sink.
    pub a: A,
    /// Second downstream sink.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Wraps the two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn exec(&mut self, rec: ExecRecord) {
        self.a.exec(rec);
        self.b.exec(rec);
    }
    fn data(&mut self, dref: DataRef) {
        self.a.data(dref);
        self.b.data(dref);
    }
}

/// Replays a recorded stream into a sink, exactly as it was emitted.
pub fn replay<S: TraceSink>(events: &[TraceEvent], sink: &mut S) {
    for &ev in events {
        match ev {
            TraceEvent::Exec(rec) => sink.exec(rec),
            TraceEvent::Data(dref) => sink.data(dref),
        }
    }
}

/// Counts records (tests and sanity checks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// exec records seen.
    pub execs: u64,
    /// data records seen.
    pub datas: u64,
    /// total µops seen.
    pub uops: u64,
}

impl TraceSink for CountingSink {
    fn exec(&mut self, rec: ExecRecord) {
        self.execs += 1;
        self.uops += rec.uops as u64;
    }
    fn data(&mut self, _dref: DataRef) {
        self.datas += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(uops: u16) -> ExecRecord {
        ExecRecord {
            func: FunctionId(0),
            uops,
            cond_branches: 2,
            indirect_branches: 1,
            loads: 3,
            stores: 1,
            variant: 0,
        }
    }

    #[test]
    fn fanout_duplicates_stream() {
        let mut f = FanoutSink::new(vec![CountingSink::default(); 3]);
        f.exec(rec(10));
        f.data(DataRef {
            addr: 0x1000,
            bytes: 64,
            write: false,
        });
        for s in f.into_inner() {
            assert_eq!(s.execs, 1);
            assert_eq!(s.datas, 1);
            assert_eq!(s.uops, 10);
        }
    }

    #[test]
    fn recording_then_replay_reproduces_the_stream() {
        let mut r = RecordingSink::with_cap(100);
        r.exec(rec(10));
        r.data(DataRef {
            addr: 0x2000,
            bytes: 8,
            write: true,
        });
        r.exec(rec(20));
        let events = r.into_events().expect("under cap");
        assert_eq!(events.len(), 3);
        let mut c = CountingSink::default();
        replay(&events, &mut c);
        assert_eq!((c.execs, c.datas, c.uops), (2, 1, 30));
    }

    #[test]
    fn recorder_overflow_discards_instead_of_growing() {
        let mut r = RecordingSink::with_cap(2);
        for _ in 0..5 {
            r.exec(rec(1));
        }
        assert!(r.overflowed());
        assert!(r.into_events().is_none());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut t = TeeSink::new(CountingSink::default(), RecordingSink::with_cap(10));
        t.exec(rec(7));
        t.data(DataRef {
            addr: 0x40,
            bytes: 4,
            write: false,
        });
        assert_eq!((t.a.execs, t.a.datas), (1, 1));
        assert_eq!(t.b.into_events().unwrap().len(), 2);
    }

    #[test]
    fn null_sink_ignores() {
        let mut n = NullSink;
        n.exec(rec(5));
        n.data(DataRef {
            addr: 0,
            bytes: 1,
            write: true,
        });
    }
}
