//! The host instruction stream: record types and sinks.

use crate::registry::FunctionId;

/// One host *function invocation* with its block-level character.
///
/// The host microarchitecture model expands this into instruction-cache
/// line touches (from the function's code address/size in the
/// [`Registry`](crate::registry::Registry)), decode traffic, branch events
/// and local data accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Which function ran.
    pub func: FunctionId,
    /// Host µops executed in this invocation.
    pub uops: u16,
    /// Conditional branches executed.
    pub cond_branches: u8,
    /// Indirect calls/jumps (virtual dispatch, function-pointer calls).
    pub indirect_branches: u8,
    /// Loads to function-local data (stack, locals).
    pub loads: u8,
    /// Stores to function-local data.
    pub stores: u8,
    /// Per-function invocation counter; drives deterministic branch
    /// outcome and target streams.
    pub variant: u32,
}

/// A host data reference into simulator state (tag arrays, ROB entries,
/// packet objects…).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRef {
    /// Host virtual address.
    pub addr: u64,
    /// Bytes touched.
    pub bytes: u32,
    /// Whether the touch writes.
    pub write: bool,
}

/// Consumer of the host instruction stream.
pub trait TraceSink {
    /// A function invocation.
    fn exec(&mut self, rec: ExecRecord);
    /// A simulator-state data touch.
    fn data(&mut self, dref: DataRef);
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn exec(&mut self, _rec: ExecRecord) {}
    fn data(&mut self, _dref: DataRef) {}
}

/// Fans one stream out to several sinks — used to evaluate multiple host
/// platforms over a single guest simulation.
#[derive(Debug, Default)]
pub struct FanoutSink<S> {
    /// The downstream sinks.
    pub sinks: Vec<S>,
}

impl<S> FanoutSink<S> {
    /// Wraps the given sinks.
    pub fn new(sinks: Vec<S>) -> Self {
        FanoutSink { sinks }
    }

    /// Unwraps the sinks.
    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: TraceSink> TraceSink for FanoutSink<S> {
    fn exec(&mut self, rec: ExecRecord) {
        for s in &mut self.sinks {
            s.exec(rec);
        }
    }
    fn data(&mut self, dref: DataRef) {
        for s in &mut self.sinks {
            s.data(dref);
        }
    }
}

/// Counts records (tests and sanity checks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// exec records seen.
    pub execs: u64,
    /// data records seen.
    pub datas: u64,
    /// total µops seen.
    pub uops: u64,
}

impl TraceSink for CountingSink {
    fn exec(&mut self, rec: ExecRecord) {
        self.execs += 1;
        self.uops += rec.uops as u64;
    }
    fn data(&mut self, _dref: DataRef) {
        self.datas += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(uops: u16) -> ExecRecord {
        ExecRecord {
            func: FunctionId(0),
            uops,
            cond_branches: 2,
            indirect_branches: 1,
            loads: 3,
            stores: 1,
            variant: 0,
        }
    }

    #[test]
    fn fanout_duplicates_stream() {
        let mut f = FanoutSink::new(vec![CountingSink::default(); 3]);
        f.exec(rec(10));
        f.data(DataRef {
            addr: 0x1000,
            bytes: 64,
            write: false,
        });
        for s in f.into_inner() {
            assert_eq!(s.execs, 1);
            assert_eq!(s.datas, 1);
            assert_eq!(s.uops, 10);
        }
    }

    #[test]
    fn null_sink_ignores() {
        let mut n = NullSink;
        n.exec(rec(5));
        n.data(DataRef {
            addr: 0,
            bytes: 1,
            write: true,
        });
    }
}
