//! The synthetic gem5 binary: per-component function pools with code
//! addresses, sizes and branch character.
//!
//! Pool sizes model the relative code mass of gem5's components (the O3
//! model plus its template instantiations dwarfs everything else; the
//! classic caches, DRAM controller and crossbar form the timing memory
//! system; a large common pool stands for libstdc++ / libm / allocator
//! code). They were calibrated once so that the *emergent* functions-
//! touched counts land near the paper's Fig. 15 measurements
//! (1602 / 2557 / 3957 / 5209 for Atomic / Timing / Minor / O3); the
//! *relative* growth with CPU detail is structural, not fitted.

use crate::layout::{PageBacking, TextLayout};
use crate::{mix2, mix64};
use gem5sim::CompClass;

/// Index of a host function in the [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub u32);

/// Which compilation of the binary is running (the paper's Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BinaryVariant {
    /// The default `gem5.opt` build.
    #[default]
    Base,
    /// Recompiled with `-O3`: ~3% smaller code, better intra-component
    /// code clustering.
    O3Flag,
}

/// Static metadata of one host function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncMeta {
    /// Owning component class (`None` for the common libstdc++/libm pool).
    pub comp: Option<CompClass>,
    /// Code address in the text segment.
    pub addr: u64,
    /// Code size in bytes.
    pub size: u32,
    /// Percent of this function's conditional branches that are taken
    /// (drives predictability in the host model).
    pub taken_rate: u8,
    /// Whether this is a primary (handler-entry) function.
    pub is_primary: bool,
}

#[derive(Debug, Clone, Copy)]
struct Pool {
    base: u32,
    primaries: u32,
    helpers: u32,
}

impl Pool {
    fn len(&self) -> u32 {
        self.primaries + self.helpers
    }
}

/// Pool size table: `(component, primaries, helpers)`.
///
/// `Icache`, `Dcache` and `L2` share one pool — in gem5 they are all
/// instances of the same `BaseCache` code.
const POOL_SIZES: &[(PoolKey, u32, u32)] = &[
    (PoolKey::Comp(CompClass::EventQueue), 12, 58),
    (PoolKey::Comp(CompClass::CpuAtomic), 28, 162),
    (PoolKey::Comp(CompClass::CpuTiming), 40, 250),
    (PoolKey::Comp(CompClass::CpuMinor), 110, 1470),
    (PoolKey::Comp(CompClass::CpuO3), 170, 2660),
    (PoolKey::Comp(CompClass::BranchPred), 16, 94),
    (PoolKey::Comp(CompClass::Decoder), 18, 132),
    (PoolKey::Cache, 48, 512),
    (PoolKey::Comp(CompClass::Xbar), 16, 184),
    (PoolKey::Comp(CompClass::Dram), 24, 276),
    (PoolKey::Comp(CompClass::Tlb), 18, 102),
    (PoolKey::Comp(CompClass::Syscall), 22, 78),
    (PoolKey::Comp(CompClass::Device), 14, 56),
    (PoolKey::Comp(CompClass::Stats), 18, 132),
    (PoolKey::Common, 0, 480),
];

/// Pool lookup key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolKey {
    Comp(CompClass),
    /// Shared `BaseCache` code for L1I/L1D/L2.
    Cache,
    /// libstdc++ / libm / allocator.
    Common,
}

fn pool_key(comp: CompClass) -> PoolKey {
    match comp {
        CompClass::Icache | CompClass::Dcache | CompClass::L2 => PoolKey::Cache,
        c => PoolKey::Comp(c),
    }
}

/// The synthetic binary: function table + text layout.
#[derive(Debug, Clone)]
pub struct Registry {
    funcs: Vec<FuncMeta>,
    pools: Vec<(PoolKey, Pool)>,
    layout: TextLayout,
    variant: BinaryVariant,
}

impl Registry {
    /// Builds the binary model for the given compilation variant and text
    /// page backing.
    pub fn new(variant: BinaryVariant, backing: PageBacking) -> Self {
        let text_base = 0x40_0000u64;
        let size_scale_num: u64 = match variant {
            BinaryVariant::Base => 100,
            BinaryVariant::O3Flag => 97,
        };

        // Generate pool descriptors.
        let mut pools = Vec::new();
        let mut next = 0u32;
        for &(key, primaries, helpers) in POOL_SIZES {
            pools.push((
                key,
                Pool {
                    base: next,
                    primaries,
                    helpers,
                },
            ));
            next += primaries + helpers;
        }
        let total = next as usize;

        // Function sizes and branch character, deterministic per id.
        let mut metas: Vec<FuncMeta> = Vec::with_capacity(total);
        for (key, pool) in &pools {
            for i in 0..pool.len() {
                let fid = pool.base + i;
                let h = mix64(fid as u64 ^ 0xC0DE);
                let is_primary = i < pool.primaries;
                // gem5's handler-entry functions are big (templated,
                // inlined-into); helpers are smaller.
                let raw = if is_primary {
                    400 + (h % 1200) as u32
                } else {
                    128 + (h % 384) as u32
                };
                let size = (raw as u64 * size_scale_num / 100) as u32;
                // Mostly well-biased (loop-like) branch sites. Data-
                // dependent (noisy) branches live only in the cold half of
                // each pool: hot steady-state paths are loop-shaped, rare
                // paths carry the unpredictable decisions.
                let in_cold_half = i >= pool.primaries + pool.helpers / 2;
                let taken_rate = if in_cold_half && h % 25 == 0 {
                    55 + (mix64(h) % 30) as u8
                } else {
                    86 + (mix64(h) % 14) as u8
                };
                let comp = match key {
                    PoolKey::Comp(c) => Some(*c),
                    PoolKey::Cache => Some(CompClass::L2),
                    PoolKey::Common => None,
                };
                metas.push(FuncMeta {
                    comp,
                    addr: 0, // assigned below
                    size,
                    taken_rate,
                    is_primary,
                });
            }
        }

        // Lay functions out in the text segment. The base build uses link
        // order that scatters related functions (gem5's many translation
        // units); -O3 keeps each component's code clustered.
        let mut order: Vec<u32> = (0..total as u32).collect();
        match variant {
            BinaryVariant::Base => {
                order.sort_by_key(|&fid| mix64(fid as u64 ^ 0x11AA));
            }
            BinaryVariant::O3Flag => {
                // Cluster by pool, shuffle within.
                order.sort_by_key(|&fid| {
                    let pool_idx = pools
                        .iter()
                        .position(|(_, p)| fid >= p.base && fid < p.base + p.len())
                        .unwrap() as u64;
                    (pool_idx << 32) | (mix64(fid as u64 ^ 0x22BB) & 0xFFFF_FFFF)
                });
            }
        }
        let mut addr = text_base;
        for fid in order {
            let m = &mut metas[fid as usize];
            m.addr = addr;
            addr += m.size as u64 + 16; // alignment padding
        }
        let text_size = addr - text_base;

        Registry {
            funcs: metas,
            pools,
            layout: TextLayout {
                base: text_base,
                size: text_size,
                backing,
            },
            variant,
        }
    }

    /// Number of functions in the binary.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the binary is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Function metadata.
    ///
    /// # Panics
    ///
    /// Panics if `fid` is out of range.
    pub fn meta(&self, fid: FunctionId) -> &FuncMeta {
        &self.funcs[fid.0 as usize]
    }

    /// The text layout.
    pub fn layout(&self) -> &TextLayout {
        &self.layout
    }

    /// The compilation variant.
    pub fn variant(&self) -> BinaryVariant {
        self.variant
    }

    fn pool(&self, key: PoolKey) -> Pool {
        self.pools
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, p)| *p)
            .expect("all pool keys are in the table")
    }

    /// The primary (entry) function for a handler method.
    pub fn primary(&self, comp: CompClass, method: &str) -> FunctionId {
        let pool = self.pool(pool_key(comp));
        debug_assert!(pool.primaries > 0, "{comp:?} has primaries");
        let h = mix2(comp as u64, hash_str(method));
        FunctionId(pool.base + (h % pool.primaries as u64) as u32)
    }

    /// Selects the `i`-th helper called by an invocation of
    /// (`comp`, `method`).
    ///
    /// Selection is *tiered* to reproduce a real program's temporal
    /// locality: 70% of a call site's helper calls always go to the same
    /// function (the steady-state code path), 25% rotate through a small
    /// per-site set (occasional paths: retries, fills, stat flushes), and
    /// 5% are cold draws over the whole pool (error paths, rare events) —
    /// which is what slowly drives the functions-touched count toward the
    /// pool size over a run. Atomic-mode fast paths (`recvAtomic*`) reach
    /// only a prefix of each pool, as in gem5 where the atomic path is a
    /// small subset of the timing machinery.
    pub fn helper(&self, comp: CompClass, method: &str, i: u32, variant: u32) -> FunctionId {
        // A stable identity for this helper call site.
        let slot = mix2(mix2(comp as u64, hash_str(method)), i as u64 + 1);
        let tier = mix2(slot, variant as u64) % 100;
        let diversifier: u64 = if tier < 80 {
            0 // steady path: fixed target
        } else if tier < 93 {
            1 + (variant % 24) as u64 // warm set of ~24 alternatives
        } else {
            0x1_0000 + variant as u64 // cold draw
        };
        let h = mix2(slot, diversifier);

        // 30% of call sites live in the common pool (allocator, stdlib) —
        // decided per *site*, so hot stdlib helpers recur.
        if slot % 10 < 3 {
            let common = self.pool(PoolKey::Common);
            return FunctionId(common.base + skewed_index(h ^ 0xC033, common.helpers as u64));
        }
        let pool = self.pool(pool_key(comp));
        let reach = if method.starts_with("recvAtomic") || method.starts_with("atomic") {
            (pool.helpers as u64 * 25 / 100).max(1)
        } else {
            pool.helpers as u64
        };
        FunctionId(pool.base + pool.primaries + skewed_index(h, reach))
    }

    /// A human-readable name for a function (stable, synthetic).
    pub fn name(&self, fid: FunctionId) -> String {
        let m = self.meta(fid);
        let kind = if m.is_primary { "handler" } else { "fn" };
        match m.comp {
            Some(c) => format!("{c}::{kind}_{}", fid.0),
            None => format!("std::{kind}_{}", fid.0),
        }
    }
}

/// Quadratically-skewed index in `[0, n)`: call trees concentrate on a
/// hot head of each pool with a long cold tail (gem5's real profile).
fn skewed_index(h: u64, n: u64) -> u32 {
    let r1 = mix64(h);
    let r2 = mix64(r1);
    ((r1 % n) * (r2 % n) / n) as u32
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::new(BinaryVariant::Base, PageBacking::Base)
    }

    #[test]
    fn binary_has_thousands_of_functions() {
        let r = reg();
        assert!(r.len() > 5000, "{}", r.len());
        assert!(!r.is_empty());
    }

    #[test]
    fn text_segment_is_megabytes() {
        let r = reg();
        let mb = r.layout().size as f64 / (1024.0 * 1024.0);
        assert!(mb > 1.5 && mb < 8.0, "text = {mb:.1} MB");
    }

    #[test]
    fn primaries_are_stable_and_within_pool() {
        let r = reg();
        let f1 = r.primary(CompClass::CpuO3, "fetch_tick");
        let f2 = r.primary(CompClass::CpuO3, "fetch_tick");
        assert_eq!(f1, f2);
        assert!(r.meta(f1).is_primary);
        assert_eq!(r.meta(f1).comp, Some(CompClass::CpuO3));
    }

    #[test]
    fn cache_components_share_a_pool() {
        let r = reg();
        let fi = r.primary(CompClass::Icache, "access");
        let fd = r.primary(CompClass::Dcache, "access");
        // Same code pool (BaseCache) — possibly even the same function.
        assert_eq!(r.meta(fi).comp, r.meta(fd).comp);
    }

    #[test]
    fn atomic_methods_reach_fewer_helpers() {
        let r = reg();
        let mut atomic_set = std::collections::HashSet::new();
        let mut timing_set = std::collections::HashSet::new();
        for v in 0..2000u32 {
            for i in 0..4 {
                atomic_set.insert(r.helper(CompClass::Dcache, "recvAtomicAccess", i, v));
                timing_set.insert(r.helper(CompClass::Dcache, "access", i, v));
            }
        }
        // Both reach the shared common pool, so the ratio is bounded by
        // the pool-slice restriction, not 38% outright.
        assert!(
            atomic_set.len() * 5 < timing_set.len() * 4,
            "atomic {} vs timing {}",
            atomic_set.len(),
            timing_set.len()
        );
    }

    #[test]
    fn o3_variant_shrinks_and_clusters_text() {
        let base = Registry::new(BinaryVariant::Base, PageBacking::Base);
        let opt = Registry::new(BinaryVariant::O3Flag, PageBacking::Base);
        assert!(opt.layout().size < base.layout().size);
        // Clustering: the spread of addresses within one pool is smaller.
        let spread = |r: &Registry, comp| {
            let addrs: Vec<u64> = (0..r.len() as u32)
                .filter(|&i| r.meta(FunctionId(i)).comp == Some(comp))
                .map(|i| r.meta(FunctionId(i)).addr)
                .collect();
            addrs.iter().max().unwrap() - addrs.iter().min().unwrap()
        };
        assert!(spread(&opt, CompClass::CpuO3) < spread(&base, CompClass::CpuO3));
    }

    #[test]
    fn addresses_do_not_overlap() {
        let r = reg();
        let mut spans: Vec<(u64, u64)> = (0..r.len() as u32)
            .map(|i| {
                let m = r.meta(FunctionId(i));
                (m.addr, m.addr + m.size as u64)
            })
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn names_are_informative() {
        let r = reg();
        let f = r.primary(CompClass::EventQueue, "serviceOne");
        assert!(r.name(f).starts_with("EventQueue::handler_"));
    }
}
