//! Per-function call profiling — the data behind the paper's Fig. 15
//! (CDF of the 50 hottest functions, total functions touched).

use crate::registry::{FunctionId, Registry};

/// Call counts per host function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallProfile {
    counts: Vec<u64>,
    total: u64,
}

impl CallProfile {
    /// Creates a profile sized for `registry`.
    pub fn new(registry: &Registry) -> Self {
        CallProfile {
            counts: vec![0; registry.len()],
            total: 0,
        }
    }

    /// Records a call; returns the function's previous count (used as the
    /// invocation variant).
    pub fn bump(&mut self, fid: FunctionId) -> u32 {
        let c = &mut self.counts[fid.0 as usize];
        let prev = *c;
        *c += 1;
        self.total += 1;
        prev as u32
    }

    /// Total calls recorded.
    pub fn total_calls(&self) -> u64 {
        self.total
    }

    /// Number of distinct functions called at least once — the paper's
    /// "total number of functions called throughout the simulation".
    pub fn functions_touched(&self) -> u64 {
        self.counts.iter().filter(|&&c| c > 0).count() as u64
    }

    /// The `n` hottest functions as `(name, calls, share)` sorted by
    /// descending call count.
    pub fn hottest(&self, registry: &Registry, n: usize) -> Vec<(String, u64, f64)> {
        let mut idx: Vec<usize> = (0..self.counts.len())
            .filter(|&i| self.counts[i] > 0)
            .collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.counts[i]));
        idx.truncate(n);
        idx.into_iter()
            .map(|i| {
                let c = self.counts[i];
                (
                    registry.name(FunctionId(i as u32)),
                    c,
                    c as f64 / self.total.max(1) as f64,
                )
            })
            .collect()
    }

    /// Cumulative distribution of CPU-time share over the `n` hottest
    /// functions (call counts as the time proxy): `cdf[k]` is the share of
    /// the `k+1` hottest functions combined.
    pub fn hottest_cdf(&self, n: usize) -> Vec<f64> {
        let mut counts: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        counts.sort_by_key(|&c| std::cmp::Reverse(c));
        counts.truncate(n);
        let mut acc = 0u64;
        counts
            .into_iter()
            .map(|c| {
                acc += c;
                acc as f64 / self.total.max(1) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PageBacking;
    use crate::registry::BinaryVariant;

    #[test]
    fn bump_counts_and_variants() {
        let reg = Registry::new(BinaryVariant::Base, PageBacking::Base);
        let mut p = CallProfile::new(&reg);
        let f = FunctionId(7);
        assert_eq!(p.bump(f), 0);
        assert_eq!(p.bump(f), 1);
        assert_eq!(p.bump(FunctionId(9)), 0);
        assert_eq!(p.total_calls(), 3);
        assert_eq!(p.functions_touched(), 2);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let reg = Registry::new(BinaryVariant::Base, PageBacking::Base);
        let mut p = CallProfile::new(&reg);
        for i in 0..100u32 {
            for _ in 0..(100 - i) {
                p.bump(FunctionId(i));
            }
        }
        let cdf = p.hottest_cdf(50);
        assert_eq!(cdf.len(), 50);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!(*cdf.last().unwrap() <= 1.0 + 1e-9);
        assert!(cdf[0] > 0.0);
    }

    #[test]
    fn hottest_reports_names_and_shares() {
        let reg = Registry::new(BinaryVariant::Base, PageBacking::Base);
        let mut p = CallProfile::new(&reg);
        for _ in 0..9 {
            p.bump(FunctionId(3));
        }
        p.bump(FunctionId(5));
        let top = p.hottest(&reg, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 9);
        assert!((top[0].2 - 0.9).abs() < 1e-9);
    }
}
