//! Host-execution abstraction for profiling the `gem5sim` simulator.
//!
//! The paper profiles gem5 *as a host application*: which of gem5's ~10⁴
//! functions run, how large the instruction footprint is, how the branch
//! and data behaviour looks to the host CPU. This crate reconstructs that
//! view for our Rust simulator:
//!
//! * [`registry::Registry`] — a synthetic but structurally faithful model
//!   of the *gem5 binary*: per-component function pools (the O3 CPU model
//!   brings over a thousand functions, the event queue a few dozen, plus a
//!   common libstdc++/allocator pool), each function with a code address,
//!   size, µop weight and branch character, laid out in a text segment
//!   (optionally `-O3`-compiled: smaller and better clustered);
//! * [`record::ExecRecord`] / [`record::DataRef`] — the host instruction
//!   stream: one record per host *function invocation*, consumed by the
//!   `hostmodel` crate's microarchitecture model via [`record::TraceSink`];
//! * [`adapter::TraceAdapter`] — the bridge: it implements
//!   [`gem5sim::ExecutionObserver`], translating every simulator handler
//!   invocation into calls of the corresponding primary function plus a
//!   deterministic spread of helper-function calls (parameter checks,
//!   packet methods, stat updates, allocator traffic — gem5's real call
//!   trees), and tallying the per-function call profile the paper's
//!   Fig. 15 reports.
//!
//! The *number of distinct functions touched* and the *flatness of the
//! hot-function CDF* are therefore emergent: more detailed CPU models
//! exercise more handler methods, which fan out into larger pools.

pub mod adapter;
pub mod layout;
pub mod profile;
pub mod record;
pub mod registry;

pub use adapter::TraceAdapter;
pub use layout::{PageBacking, TextLayout, HUGE_PAGE};
pub use profile::CallProfile;
pub use record::{DataRef, ExecRecord, FanoutSink, NullSink, TraceSink};
pub use registry::{BinaryVariant, FuncMeta, FunctionId, Registry};

/// Deterministic 64-bit mixer used for all synthetic-but-stable decisions
/// (helper selection, branch outcome streams, layout shuffling).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes two values.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(1), mix64(2));
        // Low bits should vary for consecutive inputs.
        let bits: std::collections::HashSet<u64> = (0..64).map(|i| mix64(i) & 0xFF).collect();
        assert!(bits.len() > 40);
    }
}
