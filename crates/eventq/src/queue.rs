//! The central event queue.
//!
//! gem5 is an event-driven simulator: every timed action is an event on a
//! single global queue, serviced strictly in (tick, priority, insertion)
//! order. This module reproduces that design. Events are `FnOnce`
//! callbacks, mirroring gem5's member-function-pointer events; handlers may
//! schedule further events and may request simulation exit.
//!
//! The queue hands out `&EventQueue` (not `&mut`) to handlers and keeps its
//! mutable state behind a [`RefCell`], so that simulation objects held in
//! `Rc<RefCell<_>>` can be captured by event closures without borrow
//! conflicts — the queue's internal borrow is always released before a
//! handler runs.

use crate::tick::Tick;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Event priority within a tick; lower values run first (gem5 convention).
///
/// ```
/// use gem5sim_event::Priority;
/// assert!(Priority::CPU_TICK < Priority::DEFAULT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub i16);

impl Priority {
    /// Debug/trace events, run before everything else in a tick.
    pub const DEBUG: Priority = Priority(-100);
    /// CPU tick events (gem5 schedules CPU ticks early in the tick).
    pub const CPU_TICK: Priority = Priority(-50);
    /// Default priority.
    pub const DEFAULT: Priority = Priority(0);
    /// Memory responses.
    pub const MEM_RESPONSE: Priority = Priority(10);
    /// Statistics / bookkeeping, run last in a tick.
    pub const STAT: Priority = Priority(100);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::DEFAULT
    }
}

type EventFn = Box<dyn FnOnce(&EventQueue)>;

struct Scheduled {
    when: Tick,
    prio: Priority,
    seq: u64,
    func: EventFn,
    desc: &'static str,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (tick, prio, seq)
        // is popped first.
        (other.when, other.prio, other.seq).cmp(&(self.when, self.prio, self.seq))
    }
}

/// Why [`EventQueue::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitStatus {
    /// An event called [`EventQueue::exit_simulation`].
    Exited {
        /// Exit reason supplied by the event (e.g. `"m5_exit"`).
        reason: String,
        /// Exit code supplied by the event.
        code: i64,
    },
    /// The queue drained with no events left.
    Drained,
    /// The tick limit passed to [`EventQueue::run`] was reached.
    TickLimit,
}

/// Error returned when scheduling an event in the past.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleError {
    /// Tick the caller asked for.
    pub requested: Tick,
    /// Current simulated tick.
    pub now: Tick,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event scheduled in the past (requested tick {}, now {})",
            self.requested, self.now
        )
    }
}

impl std::error::Error for ScheduleError {}

struct Inner {
    heap: BinaryHeap<Scheduled>,
    cur_tick: Tick,
    seq: u64,
    exit: Option<(String, i64)>,
    events_serviced: u64,
}

/// Events serviced by *all* queues in this process, ever. Each `System`
/// owns its own queue, so this is the observable proof (used by the
/// memoization tests) that a cached profile ran zero guest simulation.
static GLOBAL_EVENTS_SERVICED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total events serviced across every [`EventQueue`] in this process.
pub fn global_events_serviced() -> u64 {
    GLOBAL_EVENTS_SERVICED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Metrics for the drain loop, registered once and then updated with
/// plain atomics (per *drain*, not per event — the per-event hot path
/// stays untouched).
struct DrainMetrics {
    events: std::sync::Arc<gem5prof_obs::Counter>,
    drains: std::sync::Arc<gem5prof_obs::Counter>,
    seconds: std::sync::Arc<gem5prof_obs::Histogram>,
}

fn drain_metrics() -> &'static DrainMetrics {
    static M: std::sync::OnceLock<DrainMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = gem5prof_obs::global();
        DrainMetrics {
            events: r.counter(
                "gem5prof_eventq_events_serviced_total",
                "events serviced by completed event-queue drain loops",
            ),
            drains: r.counter(
                "gem5prof_eventq_drains_total",
                "completed event-queue drain loops",
            ),
            seconds: r.histogram(
                "gem5prof_eventq_drain_seconds",
                "wall time of one event-queue drain loop",
                gem5prof_obs::metrics::duration_buckets(),
            ),
        }
    })
}

/// The global event queue.
///
/// See the [module docs](self) for the design rationale. All methods take
/// `&self`; the queue is intended to be shared via `Rc<EventQueue>`.
pub struct EventQueue {
    inner: RefCell<Inner>,
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("EventQueue")
            .field("cur_tick", &inner.cur_tick)
            .field("pending", &inner.heap.len())
            .field("events_serviced", &inner.events_serviced)
            .finish()
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        EventQueue {
            inner: RefCell::new(Inner {
                heap: BinaryHeap::new(),
                cur_tick: 0,
                seq: 0,
                exit: None,
                events_serviced: 0,
            }),
        }
    }

    /// Current simulated tick.
    pub fn cur_tick(&self) -> Tick {
        self.inner.borrow().cur_tick
    }

    /// Number of events serviced so far.
    pub fn events_serviced(&self) -> u64 {
        self.inner.borrow().events_serviced
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.inner.borrow().heap.len()
    }

    /// `(when, prio)` of the earliest pending event, without servicing it.
    ///
    /// This is the guard the block execution tier batches against: an
    /// instruction "event" at tick `t` may be folded into the current
    /// batch only if it would still be serviced before the queue head —
    /// `t < when`, or `t == when` with a strictly smaller priority (ties
    /// on `(when, prio)` go to the pending event, which was inserted
    /// first and therefore holds the smaller sequence number).
    pub fn peek_next(&self) -> Option<(Tick, Priority)> {
        self.inner.borrow().heap.peek().map(|e| (e.when, e.prio))
    }

    /// Credits `n` event services at `now` without any heap traffic.
    ///
    /// The block execution tier runs a straight-line batch of
    /// instructions inside one serviced event; each batched instruction
    /// stands for a `(schedule, pop, run)` round-trip the interpreter
    /// tier would have performed. Crediting keeps `events_serviced` (and
    /// the process-wide counter the memoization tests read) and
    /// `cur_tick` byte-identical to the per-event path.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `now` does not move time backwards.
    pub fn credit_batched(&self, n: u64, now: Tick) {
        let mut inner = self.inner.borrow_mut();
        debug_assert!(
            now >= inner.cur_tick,
            "batched credit rewinds time ({now} < {})",
            inner.cur_tick
        );
        inner.cur_tick = inner.cur_tick.max(now);
        inner.events_serviced += n;
        GLOBAL_EVENTS_SERVICED.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Schedules `event` to run at tick `when` with `prio`.
    ///
    /// # Panics
    ///
    /// Panics if `when` is before the current tick; use
    /// [`try_schedule`](Self::try_schedule) for a fallible variant.
    pub fn schedule<F>(&self, when: Tick, prio: Priority, event: F)
    where
        F: FnOnce(&EventQueue) + 'static,
    {
        self.try_schedule(when, prio, event)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Schedules a named event (the name shows up in panics/debugging).
    pub fn schedule_named<F>(&self, desc: &'static str, when: Tick, prio: Priority, event: F)
    where
        F: FnOnce(&EventQueue) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        assert!(
            when >= inner.cur_tick,
            "event '{desc}' scheduled in the past ({} < {})",
            when,
            inner.cur_tick
        );
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Scheduled {
            when,
            prio,
            seq,
            func: Box::new(event),
            desc,
        });
    }

    /// Fallible [`schedule`](Self::schedule).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if `when` is before the current tick.
    pub fn try_schedule<F>(&self, when: Tick, prio: Priority, event: F) -> Result<(), ScheduleError>
    where
        F: FnOnce(&EventQueue) + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        if when < inner.cur_tick {
            return Err(ScheduleError {
                requested: when,
                now: inner.cur_tick,
            });
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Scheduled {
            when,
            prio,
            seq,
            func: Box::new(event),
            desc: "anonymous",
        });
        Ok(())
    }

    /// Requests that [`run`](Self::run) stop once the current event returns.
    pub fn exit_simulation(&self, reason: impl Into<String>, code: i64) {
        self.inner.borrow_mut().exit = Some((reason.into(), code));
    }

    /// Services the single earliest event. Returns `false` if the queue is
    /// empty.
    pub fn service_one(&self) -> bool {
        let ev = {
            let mut inner = self.inner.borrow_mut();
            match inner.heap.pop() {
                Some(ev) => {
                    debug_assert!(ev.when >= inner.cur_tick, "event '{}' in past", ev.desc);
                    inner.cur_tick = ev.when;
                    inner.events_serviced += 1;
                    GLOBAL_EVENTS_SERVICED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    ev
                }
                None => return false,
            }
        };
        // The internal borrow is released; the handler may freely call
        // back into the queue.
        (ev.func)(self);
        true
    }

    /// Runs until exit is requested, the queue drains, or `max_tick`
    /// (if given) would be exceeded.
    pub fn run(&self, max_tick: Option<Tick>) -> ExitStatus {
        let _span = gem5prof_obs::span("eventq_drain");
        let started = std::time::Instant::now();
        let serviced_before = self.events_serviced();
        struct Record<'a>(&'a EventQueue, std::time::Instant, u64);
        impl Drop for Record<'_> {
            fn drop(&mut self) {
                let m = drain_metrics();
                m.drains.inc();
                m.events
                    .add(self.0.events_serviced().saturating_sub(self.2));
                m.seconds.observe_duration(self.1.elapsed());
            }
        }
        let _record = Record(self, started, serviced_before);
        loop {
            if let Some((reason, code)) = self.inner.borrow_mut().exit.take() {
                return ExitStatus::Exited { reason, code };
            }
            if let Some(limit) = max_tick {
                let next = self.inner.borrow().heap.peek().map(|e| e.when);
                match next {
                    Some(t) if t > limit => return ExitStatus::TickLimit,
                    None => return ExitStatus::Drained,
                    _ => {}
                }
            }
            if !self.service_one() {
                return ExitStatus::Drained;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;
    use std::rc::Rc;

    fn record_order(events: &[(Tick, Priority)]) -> Vec<usize> {
        let eq = EventQueue::new();
        let order = Rc::new(StdRefCell::new(Vec::new()));
        for (i, &(t, p)) in events.iter().enumerate() {
            let o = Rc::clone(&order);
            eq.schedule(t, p, move |_| o.borrow_mut().push(i));
        }
        eq.run(None);
        Rc::try_unwrap(order).unwrap().into_inner()
    }

    #[test]
    fn events_run_in_tick_order() {
        let order = record_order(&[
            (300, Priority::DEFAULT),
            (100, Priority::DEFAULT),
            (200, Priority::DEFAULT),
        ]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn priority_breaks_ties() {
        let order = record_order(&[
            (100, Priority::STAT),
            (100, Priority::CPU_TICK),
            (100, Priority::DEFAULT),
        ]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn insertion_order_is_stable_for_equal_keys() {
        let order = record_order(&[
            (100, Priority::DEFAULT),
            (100, Priority::DEFAULT),
            (100, Priority::DEFAULT),
        ]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let eq = EventQueue::new();
        let hits = Rc::new(StdRefCell::new(Vec::new()));
        let h = Rc::clone(&hits);
        eq.schedule(10, Priority::DEFAULT, move |eq| {
            h.borrow_mut().push(eq.cur_tick());
            let h2 = Rc::clone(&h);
            eq.schedule(eq.cur_tick() + 5, Priority::DEFAULT, move |eq| {
                h2.borrow_mut().push(eq.cur_tick());
            });
        });
        assert_eq!(eq.run(None), ExitStatus::Drained);
        assert_eq!(*hits.borrow(), vec![10, 15]);
    }

    #[test]
    fn exit_stops_the_loop_and_preserves_pending() {
        let eq = EventQueue::new();
        eq.schedule(1, Priority::DEFAULT, |eq| eq.exit_simulation("m5_exit", 0));
        eq.schedule(2, Priority::DEFAULT, |_| panic!("must not run"));
        match eq.run(None) {
            ExitStatus::Exited { reason, code } => {
                assert_eq!(reason, "m5_exit");
                assert_eq!(code, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(eq.pending(), 1);
    }

    #[test]
    fn tick_limit_stops_before_later_events() {
        let eq = EventQueue::new();
        let ran = Rc::new(StdRefCell::new(0));
        let r = Rc::clone(&ran);
        eq.schedule(100, Priority::DEFAULT, move |_| *r.borrow_mut() += 1);
        eq.schedule(10_000, Priority::DEFAULT, |_| panic!("beyond limit"));
        assert_eq!(eq.run(Some(5000)), ExitStatus::TickLimit);
        assert_eq!(*ran.borrow(), 1);
        assert_eq!(eq.cur_tick(), 100);
    }

    #[test]
    fn scheduling_in_past_errors() {
        let eq = EventQueue::new();
        eq.schedule(100, Priority::DEFAULT, |eq| {
            let err = eq.try_schedule(50, Priority::DEFAULT, |_| ()).unwrap_err();
            assert_eq!(err.requested, 50);
            assert_eq!(err.now, 100);
        });
        eq.run(None);
    }

    #[test]
    fn same_tick_rescheduling_runs_in_same_pass() {
        // An event scheduled for the *current* tick from within a handler
        // must still run (gem5 allows zero-delay events).
        let eq = EventQueue::new();
        let count = Rc::new(StdRefCell::new(0));
        let c = Rc::clone(&count);
        eq.schedule(7, Priority::DEFAULT, move |eq| {
            let c2 = Rc::clone(&c);
            eq.schedule(7, Priority::DEFAULT, move |_| *c2.borrow_mut() += 1);
        });
        eq.run(None);
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn peek_reports_earliest_without_popping() {
        let eq = EventQueue::new();
        assert_eq!(eq.peek_next(), None);
        eq.schedule(200, Priority::DEFAULT, |_| ());
        eq.schedule(100, Priority::STAT, |_| ());
        assert_eq!(eq.peek_next(), Some((100, Priority::STAT)));
        assert_eq!(eq.pending(), 2, "peek must not consume");
    }

    #[test]
    fn credit_batched_advances_counters_and_tick() {
        let eq = EventQueue::new();
        eq.schedule(10, Priority::DEFAULT, |eq| {
            eq.credit_batched(5, 40);
        });
        eq.schedule(50, Priority::DEFAULT, |_| ());
        eq.run(None);
        assert_eq!(eq.events_serviced(), 2 + 5);
        assert_eq!(eq.cur_tick(), 50);
    }

    #[test]
    fn events_serviced_counts() {
        let eq = EventQueue::new();
        for t in 0..50 {
            eq.schedule(t, Priority::DEFAULT, |_| ());
        }
        eq.run(None);
        assert_eq!(eq.events_serviced(), 50);
    }
}
