//! Simulated time.
//!
//! Like gem5, simulated time is expressed in integer *ticks* with a global
//! resolution of 1 ps (10^12 ticks per simulated second). Component clocks
//! are expressed as a [`Frequency`], which converts cycle counts into tick
//! intervals.

/// A point (or span) of simulated time, in picoseconds.
pub type Tick = u64;

/// Number of ticks in one simulated second (1 THz tick rate, like gem5).
pub const TICKS_PER_SEC: Tick = 1_000_000_000_000;

/// A component clock frequency.
///
/// Stores the clock *period* in ticks, so that converting cycles to ticks
/// is a single multiply.
///
/// # Example
///
/// ```
/// use gem5sim_event::Frequency;
/// let f = Frequency::from_ghz(2.0);
/// assert_eq!(f.period_ticks(), 500);
/// assert_eq!(f.cycles_to_ticks(4), 2000);
/// assert_eq!(f.ticks_to_cycles(2000), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frequency {
    period: Tick,
}

impl Frequency {
    /// Creates a frequency from a value in gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive or if the resulting period
    /// would round to zero ticks.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive, got {ghz}");
        let period = (1000.0 / ghz).round() as Tick;
        assert!(period > 0, "frequency {ghz} GHz exceeds tick resolution");
        Frequency { period }
    }

    /// Creates a frequency from a value in megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_ghz(mhz / 1000.0)
    }

    /// The clock period in ticks.
    pub fn period_ticks(self) -> Tick {
        self.period
    }

    /// The frequency in gigahertz (inverse of the stored period).
    pub fn ghz(self) -> f64 {
        1000.0 / self.period as f64
    }

    /// Converts a cycle count into a tick span.
    pub fn cycles_to_ticks(self, cycles: u64) -> Tick {
        cycles * self.period
    }

    /// Converts a tick span into a (floored) cycle count.
    pub fn ticks_to_cycles(self, ticks: Tick) -> u64 {
        ticks / self.period
    }

    /// Rounds `tick` up to the next edge of this clock.
    ///
    /// ```
    /// use gem5sim_event::Frequency;
    /// let f = Frequency::from_ghz(1.0); // period = 1000 ticks
    /// assert_eq!(f.next_edge(0), 0);
    /// assert_eq!(f.next_edge(1), 1000);
    /// assert_eq!(f.next_edge(1000), 1000);
    /// ```
    pub fn next_edge(self, tick: Tick) -> Tick {
        tick.div_ceil(self.period) * self.period
    }
}

impl Default for Frequency {
    /// 1 GHz.
    fn default() -> Self {
        Frequency::from_ghz(1.0)
    }
}

/// Converts ticks to simulated seconds.
pub fn ticks_to_seconds(ticks: Tick) -> f64 {
    ticks as f64 / TICKS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_roundtrip() {
        for ghz in [0.8, 1.0, 1.2, 2.0, 3.1, 3.2, 4.0, 4.1] {
            let f = Frequency::from_ghz(ghz);
            assert!((f.ghz() - ghz).abs() / ghz < 0.01, "{ghz} -> {}", f.ghz());
        }
    }

    #[test]
    fn mhz_matches_ghz() {
        assert_eq!(Frequency::from_mhz(3100.0), Frequency::from_ghz(3.1));
    }

    #[test]
    fn cycle_conversions_are_inverse_on_edges() {
        let f = Frequency::from_ghz(2.5);
        for c in [0u64, 1, 7, 1000, 123_456] {
            assert_eq!(f.ticks_to_cycles(f.cycles_to_ticks(c)), c);
        }
    }

    #[test]
    fn next_edge_is_aligned_and_not_before() {
        let f = Frequency::from_ghz(3.1);
        for t in [0u64, 1, 322, 323, 645, 10_000] {
            let e = f.next_edge(t);
            assert!(e >= t);
            assert_eq!(e % f.period_ticks(), 0);
            assert!(e - t < f.period_ticks());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = Frequency::from_ghz(0.0);
    }

    #[test]
    fn seconds_conversion() {
        assert!((ticks_to_seconds(TICKS_PER_SEC) - 1.0).abs() < 1e-12);
        assert!((ticks_to_seconds(TICKS_PER_SEC / 2) - 0.5).abs() < 1e-12);
    }
}
