//! Minimal statistics framework in the style of gem5's `Stats` package.
//!
//! Simulation objects accumulate [`ScalarStat`]s and [`Histogram`]s and
//! contribute them to a [`StatDump`] at the end of simulation, producing
//! the `stats.txt`-like output users of gem5 are familiar with.

use std::collections::BTreeMap;
use std::fmt;

/// A named scalar statistic (counter or gauge).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalarStat {
    value: f64,
}

impl ScalarStat {
    /// Creates a zeroed stat.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the stat.
    pub fn add(&mut self, v: f64) {
        self.value += v;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.value += 1.0;
    }

    /// Sets the stat to `v` (for gauges).
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    samples: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with `nbuckets` buckets of `bucket_width` each;
    /// values beyond the last bucket are clamped into it.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets` is zero or `bucket_width` is not positive.
    pub fn new(bucket_width: f64, nbuckets: usize) -> Self {
        assert!(nbuckets > 0, "histogram needs at least one bucket");
        assert!(bucket_width > 0.0, "bucket width must be positive");
        Histogram {
            bucket_width,
            buckets: vec![0; nbuckets],
            samples: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn sample(&mut self, v: f64) {
        let idx = ((v / self.bucket_width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.samples += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sum / self.samples as f64)
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Smallest sample seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.max)
    }
}

/// A value recorded in a [`StatDump`].
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// Plain scalar.
    Scalar(f64),
    /// Ratio with an explanatory formula string, e.g. `"misses/accesses"`.
    Formula {
        /// Computed value.
        value: f64,
        /// Human-readable formula.
        formula: String,
    },
}

impl StatValue {
    /// Numeric value regardless of variant.
    pub fn value(&self) -> f64 {
        match self {
            StatValue::Scalar(v) => *v,
            StatValue::Formula { value, .. } => *value,
        }
    }
}

/// An ordered, hierarchical dump of statistics, keyed by dotted paths
/// (`"system.cpu.committedInsts"`), like gem5's `stats.txt`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatDump {
    entries: BTreeMap<String, StatValue>,
}

impl StatDump {
    /// Creates an empty dump.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a scalar under `path`.
    pub fn scalar(&mut self, path: impl Into<String>, v: f64) {
        self.entries.insert(path.into(), StatValue::Scalar(v));
    }

    /// Records a formula value under `path`.
    pub fn formula(&mut self, path: impl Into<String>, value: f64, formula: impl Into<String>) {
        self.entries.insert(
            path.into(),
            StatValue::Formula {
                value,
                formula: formula.into(),
            },
        );
    }

    /// Looks up a value by exact path.
    pub fn get(&self, path: &str) -> Option<f64> {
        self.entries.get(path).map(StatValue::value)
    }

    /// Iterates over `(path, value)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dump is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges `other` into `self` under prefix `prefix.`.
    pub fn merge_under(&mut self, prefix: &str, other: &StatDump) {
        for (k, v) in other.entries.iter() {
            self.entries.insert(format!("{prefix}.{k}"), v.clone());
        }
    }
}

impl fmt::Display for StatDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.entries.iter() {
            match v {
                StatValue::Scalar(x) => writeln!(f, "{k:<60} {x:>16.6}")?,
                StatValue::Formula { value, formula } => {
                    writeln!(f, "{k:<60} {value:>16.6}  # {formula}")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accumulates() {
        let mut s = ScalarStat::new();
        s.inc();
        s.add(2.5);
        assert_eq!(s.value(), 3.5);
        s.set(1.0);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(10.0, 4);
        for v in [1.0, 5.0, 15.0, 25.0, 95.0] {
            h.sample(v);
        }
        assert_eq!(h.samples(), 5);
        assert_eq!(h.buckets(), &[2, 1, 1, 1]); // 95 clamps into last bucket
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(95.0));
        let mean = h.mean().unwrap();
        assert!((mean - 28.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_moments() {
        let h = Histogram::new(1.0, 1);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn dump_paths_sorted_and_merged() {
        let mut inner = StatDump::new();
        inner.scalar("misses", 5.0);
        inner.formula("miss_rate", 0.5, "misses/accesses");
        let mut outer = StatDump::new();
        outer.scalar("sim_ticks", 100.0);
        outer.merge_under("system.l1d", &inner);
        assert_eq!(outer.get("system.l1d.misses"), Some(5.0));
        assert_eq!(outer.get("system.l1d.miss_rate"), Some(0.5));
        assert_eq!(outer.len(), 3);
        let keys: Vec<_> = outer.iter().map(|(k, _)| k.to_string()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn display_contains_formula_comment() {
        let mut d = StatDump::new();
        d.formula("ipc", 1.5, "insts/cycles");
        let out = d.to_string();
        assert!(out.contains("ipc"));
        assert!(out.contains("# insts/cycles"));
    }
}
