//! Discrete-event simulation kernel for the `gem5sim` architectural
//! simulator.
//!
//! This crate provides the same structural skeleton that the real gem5
//! simulator is built around and that the paper *Profiling gem5 Simulator*
//! (ISPASS 2023) identifies as its stable core: a central [`EventQueue`]
//! ordered by simulated [`Tick`]s, events that are callbacks on simulation
//! objects, and a statistics framework ([`stats`]).
//!
//! # Example
//!
//! ```
//! use gem5sim_event::{EventQueue, Priority};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let eq = EventQueue::new();
//! let fired = Rc::new(Cell::new(0u64));
//! let f = Rc::clone(&fired);
//! eq.schedule(100, Priority::DEFAULT, move |eq| {
//!     f.set(eq.cur_tick());
//! });
//! eq.run(None);
//! assert_eq!(fired.get(), 100);
//! ```

pub mod queue;
pub mod stats;
pub mod tick;

pub use queue::{global_events_serviced, EventQueue, ExitStatus, Priority, ScheduleError};
pub use stats::{Histogram, ScalarStat, StatDump, StatValue};
pub use tick::{Frequency, Tick, TICKS_PER_SEC};
