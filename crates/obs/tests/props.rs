//! Property tests for the metrics subsystem: histogram bucket math
//! (monotone CDF, correct bucket placement, merge associativity and
//! commutativity, quantile monotonicity) and Prometheus label escaping.

use gem5prof_obs::prom::{escape_help, escape_label, unescape_label};
use gem5prof_obs::{Histogram, HistogramSnapshot};
use testkit::{prop_assert, prop_assert_eq, run_cases, Gen};

/// Strictly increasing bounds drawn from dyadic rationals, so every
/// bound and every observation is exact in binary and `f64` sums add
/// without rounding (making merge associativity exactly testable).
fn gen_bounds(g: &mut Gen) -> Vec<f64> {
    let len = g.usize_in(1..8);
    let mut cur = 0i64;
    (0..len)
        .map(|_| {
            cur += g.i64_in(1..1000);
            cur as f64 / 1024.0
        })
        .collect()
}

/// An observation landing below, between, or past the bounds.
fn gen_value(g: &mut Gen, bounds: &[f64]) -> f64 {
    let last = *bounds.last().unwrap();
    match g.u8_in(0..4) {
        0 => *g.pick(bounds), // exactly on a bound (the `<=` edge)
        1 => last + g.i64_in(1..1000) as f64 / 1024.0, // +Inf bucket
        _ => g.i64_in(-100..(last * 1024.0) as i64 + 100) as f64 / 1024.0,
    }
}

fn snapshot_of(bounds: &[f64], values: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new(bounds);
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

#[test]
fn cdf_is_monotone_and_ends_at_count() {
    run_cases("obs_hist_cdf_monotone", 256, |g| {
        let bounds = gen_bounds(g);
        let values = g.vec(0..64, |g| gen_value(g, &bounds));
        let snap = snapshot_of(&bounds, &values);
        let cum = snap.cumulative();
        prop_assert_eq!(cum.len(), bounds.len() + 1);
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1]), "CDF must be monotone");
        prop_assert_eq!(*cum.last().unwrap(), values.len() as u64);
        prop_assert_eq!(snap.count(), values.len() as u64);
        Ok(())
    });
}

#[test]
fn observations_land_in_the_first_bucket_whose_bound_admits_them() {
    run_cases("obs_hist_bucket_placement", 256, |g| {
        let bounds = gen_bounds(g);
        let values = g.vec(0..64, |g| gen_value(g, &bounds));
        let snap = snapshot_of(&bounds, &values);
        // Oracle: cumulative `_bucket{le=b}` is |{v : v <= b}|.
        let cum = snap.cumulative();
        for (i, &b) in bounds.iter().enumerate() {
            let expect = values.iter().filter(|&&v| v <= b).count() as u64;
            prop_assert_eq!(cum[i], expect);
        }
        let dyadic_sum: f64 = values.iter().sum();
        prop_assert_eq!(snap.sum, dyadic_sum);
        Ok(())
    });
}

#[test]
fn merge_is_associative_and_commutative() {
    run_cases("obs_hist_merge_assoc", 256, |g| {
        let bounds = gen_bounds(g);
        let mut snaps = (0..3)
            .map(|_| {
                let values = g.vec(0..32, |g| gen_value(g, &bounds));
                snapshot_of(&bounds, &values)
            })
            .collect::<Vec<_>>();
        let (c, b, a) = (
            snaps.pop().unwrap(),
            snaps.pop().unwrap(),
            snaps.pop().unwrap(),
        );

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // Dyadic values of bounded magnitude: f64 addition is exact, so
        // equality is exact, not approximate.
        prop_assert_eq!(&left, &right);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        prop_assert_eq!(left.count(), a.count() + b.count() + c.count());
        Ok(())
    });
}

#[test]
fn quantiles_are_monotone_and_within_range() {
    run_cases("obs_hist_quantile_monotone", 256, |g| {
        let bounds = gen_bounds(g);
        let values = g.vec(1..64, |g| gen_value(g, &bounds));
        let snap = snapshot_of(&bounds, &values);
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let est: Vec<f64> = qs.iter().map(|&q| snap.quantile(q).unwrap()).collect();
        prop_assert!(
            est.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "quantiles must be monotone in q: {est:?}"
        );
        let last = *snap.bounds.last().unwrap();
        for &e in &est {
            prop_assert!(e >= 0.0 && e <= last, "estimate {e} outside [0, {last}]");
        }
        Ok(())
    });
}

/// Arbitrary strings mixing plain text with the characters the escape
/// table special-cases.
fn gen_label(g: &mut Gen) -> String {
    g.vec(0..16, |g| match g.u8_in(0..3) {
        0 => char::from(g.u8_in(0x20..0x7f)),
        1 => *g.pick(&['\\', '"', '\n']),
        _ => *g.pick(&['é', '✓', '\u{1F600}', '\t']),
    })
    .into_iter()
    .collect()
}

#[test]
fn label_escaping_is_lossless_and_single_line() {
    run_cases("obs_prom_escape_roundtrip", 512, |g| {
        let s = gen_label(g);
        let escaped = escape_label(&s);
        prop_assert_eq!(unescape_label(&escaped), s.clone());
        prop_assert!(!escaped.contains('\n'), "escaped labels are single-line");
        // Every `"` left in the escaped form is preceded by a backslash.
        let bytes = escaped.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                prop_assert!(
                    i > 0 && bytes[i - 1] == b'\\',
                    "unescaped quote in {escaped:?}"
                );
            }
        }
        let help = escape_help(&s);
        prop_assert!(!help.contains('\n'), "escaped help is single-line");
        Ok(())
    });
}
