//! `gem5prof-obs` — the repository's self-profiling and metrics
//! subsystem: the paper's lens (*profile the simulator as an ordinary
//! application*) turned on gem5prof itself.
//!
//! Three layers, all std-only:
//!
//! * [`metrics`] — an instrumentation core: a process-wide registry of
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s. The hot
//!   path is atomics only — registration takes a short lock once, after
//!   which callers hold an `Arc` and never touch the registry again.
//!   External counter sets (e.g. cache statistics that already exist
//!   elsewhere) plug in as scrape-time [`Collector`]s, so `/stats` and
//!   `/metrics` report from one source of truth.
//! * [`span`] — lightweight span timers with a thread-local span stack:
//!   nested phases (figure → experiment → workload → event-loop drain)
//!   attribute wall time hierarchically, with per-path call counts,
//!   total time and *self* time (total minus child time). Snapshots
//!   render as a self-time table, a hot-span CDF (mirroring the paper's
//!   "no hot function" Fig. 15 methodology), or a collapsed-stack text
//!   export consumable by flamegraph tooling.
//! * [`prom`] — Prometheus text exposition (version 0.0.4): `# HELP` /
//!   `# TYPE` metadata, label escaping, and `_bucket`/`_sum`/`_count`
//!   series for histograms.
//!
//! The continuous profiling store (`gem5prof-profstore`) captures both
//! layers per window: [`span::snapshot`] + [`span::reset`] delimit a
//! window of span statistics, and [`Registry::flat_values`] flattens
//! the metric registry into the `(series, value)` pairs recorded next
//! to it. [`span::set_inflation`] (env: `GEM5PROF_SPAN_INFLATE=name=ns`)
//! synthetically slows a named span for regression-gate self-tests.
//!
//! # Example
//!
//! ```
//! use gem5prof_obs as obs;
//!
//! let reqs = obs::global().counter("doc_requests_total", "requests served");
//! let lat = obs::global().histogram(
//!     "doc_request_seconds",
//!     "request latency",
//!     obs::metrics::duration_buckets(),
//! );
//! {
//!     let _outer = obs::span("request");
//!     let _inner = obs::span("compute");
//!     reqs.inc();
//!     lat.observe(0.002);
//! }
//! let text = obs::global().render_prometheus();
//! assert!(text.contains("doc_requests_total"));
//! assert!(text.contains("doc_request_seconds_bucket"));
//! let tree = obs::span::snapshot();
//! assert!(tree.iter().any(|n| n.path == ["request", "compute"]));
//! ```

pub mod metrics;
pub mod prom;
pub mod span;

pub use metrics::{
    global, Collector, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry, Sample,
};
pub use span::{span, SpanGuard, SpanNode};
