//! Hierarchical span timers: the self-profiler's data source.
//!
//! [`span`] pushes a named frame onto a thread-local stack and returns a
//! guard; when the guard drops, the elapsed wall time is attributed to
//! the frame's *path* (the stack of enclosing span names), split into
//! total time and *self* time (total minus time spent in child spans).
//! Per-path statistics accumulate thread-locally and flush into a
//! process-wide table whenever a thread's stack empties, so the hot
//! path never takes the global lock mid-phase.
//!
//! Work fanned out by the parallel runner keeps its logical parentage:
//! [`current_path`] captures the caller's stack and [`with_parent`]
//! re-roots a worker thread under it, so `figure → profile → workload`
//! chains survive crossing a thread boundary. (With parallel children a
//! parent's children may sum to more than the parent's wall time; the
//! table reports what each path actually spent.)
//!
//! Snapshots export three ways, mirroring the paper's own artifacts:
//! [`snapshot`] (the raw per-path table), [`render_table`] (per-span
//! self-time table sorted hottest-first), [`hot_span_cdf`] (the Fig. 15
//! "no hot function" CDF methodology applied to our own phases) and
//! [`collapsed`] (collapsed-stack text for flamegraph tooling).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One span path: the names of the enclosing spans, outermost first.
type Path = Vec<&'static str>;

#[derive(Debug, Clone, Copy, Default)]
struct Stat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

#[derive(Default)]
struct ThreadState {
    /// Synthetic ancestry installed by [`with_parent`].
    prefix: Path,
    frames: Vec<Frame>,
    /// Locally accumulated stats, flushed when `frames` empties.
    local: HashMap<Path, Stat>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

fn table() -> &'static Mutex<HashMap<Path, Stat>> {
    static TABLE: OnceLock<Mutex<HashMap<Path, Stat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fast disarm check for the inflation hook: one relaxed load when no
/// inflation is configured, which is every production run.
static INFLATE_ARMED: AtomicBool = AtomicBool::new(false);

fn inflation_cell() -> &'static Mutex<Option<(String, u64)>> {
    static CELL: OnceLock<Mutex<Option<(String, u64)>>> = OnceLock::new();
    CELL.get_or_init(|| {
        // `GEM5PROF_SPAN_INFLATE=name=ns` arms the hook at process
        // start: the profstore regression gate's self-test uses it to
        // make a hot span look slower without burning wall time.
        let parsed = std::env::var("GEM5PROF_SPAN_INFLATE")
            .ok()
            .and_then(|spec| {
                let (name, ns) = spec.split_once('=')?;
                Some((name.trim().to_string(), ns.trim().parse().ok()?))
            });
        if parsed.is_some() {
            INFLATE_ARMED.store(true, Ordering::Release);
        }
        Mutex::new(parsed)
    })
}

/// Test/CI hook: every completed span *named* `name` (any path) gets
/// `ns` of synthetic time added to its total and self time, as if the
/// span had run that much longer. `None` disarms. The same hook arms
/// from the `GEM5PROF_SPAN_INFLATE=name=ns` environment variable so
/// out-of-process daemons (the verify.sh gate self-test) can use it.
pub fn set_inflation(spec: Option<(&str, u64)>) {
    let mut cell = inflation_cell().lock().unwrap_or_else(|e| e.into_inner());
    *cell = spec.map(|(name, ns)| (name.to_string(), ns));
    INFLATE_ARMED.store(cell.is_some(), Ordering::Release);
}

fn inflation_for(name: &str) -> u64 {
    let cell = inflation_cell(); // force the env parse on first use
    if !INFLATE_ARMED.load(Ordering::Acquire) {
        return 0;
    }
    match &*cell.lock().unwrap_or_else(|e| e.into_inner()) {
        Some((target, ns)) if target == name => *ns,
        _ => 0,
    }
}

/// Starts a span named `name`. Drop the guard to end it. Guards must
/// end in LIFO order (the natural result of holding them in scopes);
/// a guard dropped out of order ends the spans nested inside it too.
pub fn span(name: &'static str) -> SpanGuard {
    let depth = STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.frames.push(Frame {
            name,
            start: Instant::now(),
            child_ns: 0,
        });
        s.frames.len()
    });
    SpanGuard {
        depth,
        _not_send: std::marker::PhantomData,
    }
}

/// Ends the innermost span; returns true if the stack is now empty.
fn end_innermost(s: &mut ThreadState) -> bool {
    let Some(frame) = s.frames.pop() else {
        return true;
    };
    let total_ns = frame.start.elapsed().as_nanos() as u64 + inflation_for(frame.name);
    let self_ns = total_ns.saturating_sub(frame.child_ns);
    let mut path: Path = s.prefix.clone();
    path.extend(s.frames.iter().map(|f| f.name));
    path.push(frame.name);
    let stat = s.local.entry(path).or_default();
    stat.count += 1;
    stat.total_ns += total_ns;
    stat.self_ns += self_ns;
    if let Some(parent) = s.frames.last_mut() {
        parent.child_ns += total_ns;
        false
    } else {
        true
    }
}

fn flush_local(s: &mut ThreadState) {
    if s.local.is_empty() {
        return;
    }
    let mut global = table().lock().unwrap_or_else(|e| e.into_inner());
    for (path, stat) in s.local.drain() {
        let g = global.entry(path).or_default();
        g.count += stat.count;
        g.total_ns += stat.total_ns;
        g.self_ns += stat.self_ns;
    }
}

/// Guard returned by [`span`]; ends the span on drop.
#[must_use = "a span guard that is dropped immediately times nothing"]
pub struct SpanGuard {
    /// Stack depth right after this span was pushed; drop pops back to
    /// `depth - 1`, closing any child guards leaked out of order.
    depth: usize,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let mut emptied = false;
            while s.frames.len() >= self.depth {
                emptied = end_innermost(&mut s);
            }
            if emptied {
                flush_local(&mut s);
            }
        });
    }
}

/// The caller's current span path (prefix + live frames), outermost
/// first. Capture this before fanning work out to other threads and
/// re-root them with [`with_parent`].
pub fn current_path() -> Vec<&'static str> {
    STATE.with(|s| {
        let s = s.borrow();
        let mut p = s.prefix.clone();
        p.extend(s.frames.iter().map(|f| f.name));
        p
    })
}

/// Runs `f` with the thread's span ancestry set to `parent`, restoring
/// the previous ancestry afterwards. Spans started inside `f` report
/// paths under `parent`.
pub fn with_parent<R>(parent: &[&'static str], f: impl FnOnce() -> R) -> R {
    let prev = STATE.with(|s| {
        let mut s = s.borrow_mut();
        std::mem::replace(&mut s.prefix, parent.to_vec())
    });
    struct Restore(Path);
    impl Drop for Restore {
        fn drop(&mut self) {
            STATE.with(|s| {
                let mut s = s.borrow_mut();
                s.prefix = std::mem::take(&mut self.0);
                // The prefix change invalidates locally keyed paths only
                // going forward; already-accumulated stats keep the
                // ancestry they ran under, which is what we want.
            });
        }
    }
    let _restore = Restore(prev);
    f()
}

/// One aggregated span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span names, outermost first.
    pub path: Vec<&'static str>,
    /// Times this exact path completed.
    pub count: u64,
    /// Wall time spent in this path, including children.
    pub total_ns: u64,
    /// Wall time spent in this path excluding child spans.
    pub self_ns: u64,
}

/// A snapshot of every completed span path, sorted by path. Includes
/// this thread's not-yet-flushed local spans; spans still running (or
/// local to other threads mid-phase) are not yet visible.
pub fn snapshot() -> Vec<SpanNode> {
    STATE.with(|s| flush_local(&mut s.borrow_mut()));
    let global = table().lock().unwrap_or_else(|e| e.into_inner());
    let mut nodes: Vec<SpanNode> = global
        .iter()
        .map(|(path, stat)| SpanNode {
            path: path.clone(),
            count: stat.count,
            total_ns: stat.total_ns,
            self_ns: stat.self_ns,
        })
        .collect();
    nodes.sort_by(|a, b| a.path.cmp(&b.path));
    nodes
}

/// Clears all accumulated span statistics (tests, and the start of a
/// `--self-profile` run).
pub fn reset() {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.local.clear();
    });
    table().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Collapsed-stack export: one line per path, `a;b;c <self-µs>`,
/// hottest first — directly consumable by `flamegraph.pl` /
/// `inferno-flamegraph`.
pub fn collapsed() -> String {
    let mut nodes = snapshot();
    nodes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let mut out = String::new();
    for n in nodes {
        out.push_str(&n.path.join(";"));
        out.push(' ');
        out.push_str(&(n.self_ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// Hot-span CDF: paths sorted by self time (hottest first) with each
/// one's share and the cumulative share of total self time — the
/// paper's Fig. 15 hot-function-CDF methodology applied to our own
/// phases. Returns `(path, self_ns, share, cumulative_share)`.
pub fn hot_span_cdf() -> Vec<(String, u64, f64, f64)> {
    let mut nodes = snapshot();
    nodes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let total: u64 = nodes.iter().map(|n| n.self_ns).sum();
    let mut cum = 0u64;
    nodes
        .into_iter()
        .map(|n| {
            cum += n.self_ns;
            let share = if total == 0 {
                0.0
            } else {
                n.self_ns as f64 / total as f64
            };
            let cshare = if total == 0 {
                0.0
            } else {
                cum as f64 / total as f64
            };
            (n.path.join(";"), n.self_ns, share, cshare)
        })
        .collect()
}

/// Renders the per-span self-time table, hottest self time first.
pub fn render_table() -> String {
    let mut nodes = snapshot();
    nodes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let total_self: u64 = nodes.iter().map(|n| n.self_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>8} {:>12} {:>12} {:>7}\n",
        "span path", "count", "total ms", "self ms", "self%"
    ));
    for n in &nodes {
        let pct = if total_self == 0 {
            0.0
        } else {
            100.0 * n.self_ns as f64 / total_self as f64
        };
        out.push_str(&format!(
            "{:<52} {:>8} {:>12.3} {:>12.3} {:>6.2}%\n",
            n.path.join(";"),
            n.count,
            n.total_ns as f64 / 1e6,
            n.self_ns as f64 / 1e6,
            pct
        ));
    }
    out.push_str(&format!(
        "{:<52} {:>8} {:>12} {:>12.3} {:>6.2}%\n",
        "(total self)",
        "",
        "",
        total_self as f64 / 1e6,
        100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The span table is process-global; serialize tests that reset it.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn node<'a>(nodes: &'a [SpanNode], path: &[&str]) -> &'a SpanNode {
        nodes
            .iter()
            .find(|n| n.path == path)
            .unwrap_or_else(|| panic!("missing path {path:?} in {nodes:?}"))
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        let _g = serial();
        reset();
        {
            let _a = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _b = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let nodes = snapshot();
        let outer = node(&nodes, &["outer"]);
        let inner = node(&nodes, &["outer", "inner"]);
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns < outer.total_ns,
            "outer self must exclude inner: {outer:?}"
        );
        assert!(inner.self_ns >= 3_000_000);
        assert!(outer.self_ns >= 3_000_000);
        assert!(outer.total_ns >= outer.self_ns + inner.total_ns - 1_000_000);
    }

    #[test]
    fn repeated_spans_accumulate_counts() {
        let _g = serial();
        reset();
        for _ in 0..5 {
            let _s = span("tick");
        }
        let nodes = snapshot();
        assert_eq!(node(&nodes, &["tick"]).count, 5);
    }

    #[test]
    fn parent_propagates_across_threads() {
        let _g = serial();
        reset();
        let parent = {
            let _f = span("figure");
            let p = current_path();
            std::thread::scope(|s| {
                let p2 = p.clone();
                s.spawn(move || {
                    with_parent(&p2, || {
                        let _w = span("work");
                    })
                });
            });
            p
        };
        assert_eq!(parent, vec!["figure"]);
        let nodes = snapshot();
        assert!(nodes.iter().any(|n| n.path == ["figure", "work"]));
        // The worker thread's prefix was restored after with_parent.
        std::thread::scope(|s| {
            s.spawn(|| assert!(current_path().is_empty()));
        });
    }

    #[test]
    fn out_of_order_drop_closes_children() {
        let _g = serial();
        reset();
        let a = span("a");
        let _b = span("b");
        drop(a); // closes b too
        let nodes = snapshot();
        assert_eq!(node(&nodes, &["a"]).count, 1);
        assert_eq!(node(&nodes, &["a", "b"]).count, 1);
    }

    #[test]
    fn inflation_pads_matching_spans_only() {
        let _g = serial();
        reset();
        set_inflation(Some(("slowed", 5_000_000_000)));
        {
            let _a = span("slowed");
        }
        {
            let _b = span("untouched");
        }
        set_inflation(None);
        {
            let _c = span("slowed");
        }
        let nodes = snapshot();
        let slowed = node(&nodes, &["slowed"]);
        assert_eq!(slowed.count, 2);
        assert!(
            (5_000_000_000..6_000_000_000).contains(&slowed.self_ns),
            "exactly one completion inflated: {slowed:?}"
        );
        assert!(node(&nodes, &["untouched"]).self_ns < 1_000_000_000);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let _g = serial();
        reset();
        {
            let _a = span("x");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _a = span("y");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let cdf = hot_span_cdf();
        assert_eq!(cdf.len(), 2);
        assert!(cdf.windows(2).all(|w| w[0].3 <= w[1].3 + 1e-12));
        assert!((cdf.last().unwrap().3 - 1.0).abs() < 1e-9);
        assert!(cdf[0].1 >= cdf[1].1, "sorted hottest first");
        let table = render_table();
        assert!(table.contains("span path"));
        assert!(table.contains('x'));
        let collapsed = collapsed();
        assert!(collapsed.lines().count() == 2);
    }
}
