//! The instrumentation core: counters, gauges, fixed-bucket histograms
//! and the process-wide registry.
//!
//! Hot-path contract: once a metric handle (`Arc<Counter>` etc.) is
//! obtained, every update is a single relaxed atomic operation — no
//! locks, no allocation. The registry's internal mutex is touched only
//! at registration and at scrape time.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (usable standalone, outside any registry).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency/size histogram with lock-free observation.
///
/// Buckets are cumulative-at-scrape, Prometheus style: bucket `i` counts
/// observations `<= bounds[i]`, with an implicit `+Inf` bucket at the
/// end. The running sum is an `f64` maintained with a CAS loop — still
/// lock-free, and contention is negligible at the coarse rates the
/// subsystem observes.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `len() == bounds.len() + 1`,
    /// the last slot being the `+Inf` overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper
    /// bounds (the `+Inf` bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Upper bounds (excluding the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy of counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Plain-value histogram state: the bucket math (CDF, quantiles, merge)
/// lives here so it is testable without atomics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly increasing, `+Inf` implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (`+Inf` last).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative bucket counts, Prometheus `_bucket` style: entry `i`
    /// is the number of observations `<= bounds[i]`, and the final entry
    /// (`+Inf`) equals [`count`](Self::count). Monotone by construction.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Observations beyond the largest bound (the implicit `+Inf`
    /// bucket). A nonzero overflow means every quantile that lands in
    /// the tail is clamped to the last bound — report this next to the
    /// quantiles so a saturated histogram is visible, not silent.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().unwrap_or(&0)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing the target rank, like Prometheus'
    /// `histogram_quantile`. Returns `None` for an empty histogram.
    /// Observations in the `+Inf` bucket clamp to the largest bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) >= rank && c > 0 {
                let hi = match self.bounds.get(i) {
                    Some(&b) => b,
                    None => return Some(*self.bounds.last().unwrap()),
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (rank - prev as f64) / c as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(*self.bounds.last().unwrap())
    }

    /// Merges `other` into `self` (counts and sums add).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

/// Default duration buckets (seconds): 1 µs .. 250 s, log-spaced, with
/// extra resolution through the 0.1–25 ms band where serving latencies
/// live. The old, coarser grid made a saturated tail invisible: with
/// nothing between 5 ms and 10 ms, a p99 interpolating inside that
/// bucket pinned to the 10 ms bound exactly (`BENCH_serving.json`
/// reported `p99: 10000` µs), which reads as a measurement rather than
/// a clamp. Callers that care should also surface
/// [`HistogramSnapshot::overflow`].
pub fn duration_buckets() -> &'static [f64] {
    &[
        1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 1.5e-4, 2.5e-4, 4e-4, 5e-4, 7.5e-4, 1e-3,
        1.5e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6.5e-3, 8e-3, 1e-2, 1.5e-2, 2e-2, 2.5e-2, 5e-2, 0.1, 0.25,
        0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    ]
}

/// What a metric is, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
}

/// One scrape-time value contributed by a [`Collector`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full metric name (e.g. `gem5prof_trace_cache_hits_total`).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs, `(name, value)`.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: f64,
}

impl Sample {
    /// A labelless sample.
    pub fn plain(name: &str, help: &str, kind: MetricKind, value: f64) -> Self {
        Sample {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels: Vec::new(),
            value,
        }
    }
}

/// A scrape-time source of samples: lets counter sets that already live
/// elsewhere (cache statistics, server status counts) surface in
/// `/metrics` without maintaining a second set of counters.
pub type Collector = Box<dyn Fn() -> Vec<Sample> + Send + Sync>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// The metric registry: registration and scraping only — never on the
/// update path.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    collectors: Mutex<Vec<Collector>>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn intern<T, F: FnOnce() -> Instrument>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: F,
        extract: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return extract(&e.instrument).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with a different type")
            });
        }
        let instrument = make();
        let out = extract(&instrument).expect("freshly made instrument matches");
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument,
        });
        out
    }

    /// Registers (or returns the existing) counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A labeled counter; one series per distinct label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.intern(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or returns the existing) gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.intern(
            name,
            help,
            &[],
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or returns the existing) histogram `name`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// A labeled histogram; one series per distinct label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.intern(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Adds a scrape-time [`Collector`].
    pub fn register_collector(&self, c: Collector) {
        self.collectors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(c);
    }

    /// Renders the full Prometheus text exposition (see [`crate::prom`]).
    pub fn render_prometheus(&self) -> String {
        crate::prom::render(self)
    }

    /// Flattens the registry into `(series, value)` pairs for snapshot
    /// capture (the continuous profiling store records these alongside
    /// the span table). Series are keyed `name` or `name{k="v",…}`;
    /// histograms flatten to `_count` and `_sum` (per-bucket detail
    /// stays with `/metrics`); duplicate series — the same counter
    /// surfaced by several collectors — are summed, matching the
    /// Prometheus exposition. Sorted by series name.
    pub fn flat_values(&self) -> Vec<(String, f64)> {
        fn series(name: &str, suffix: &str, labels: &[(String, String)]) -> String {
            let mut out = format!("{name}{suffix}");
            if !labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{k}=\"{}\"", crate::prom::escape_label(v)));
                }
                out.push('}');
            }
            out
        }
        let (scraped, extra) = self.scrape();
        let mut flat = std::collections::BTreeMap::<String, f64>::new();
        for m in &scraped {
            match &m.value {
                ScrapedValue::Counter(v) => {
                    *flat.entry(series(&m.name, "", &m.labels)).or_default() += *v as f64;
                }
                ScrapedValue::Gauge(v) => {
                    *flat.entry(series(&m.name, "", &m.labels)).or_default() += *v as f64;
                }
                ScrapedValue::Histogram(h) => {
                    *flat
                        .entry(series(&m.name, "_count", &m.labels))
                        .or_default() += h.count() as f64;
                    *flat.entry(series(&m.name, "_sum", &m.labels)).or_default() += h.sum;
                }
            }
        }
        for s in &extra {
            *flat.entry(series(&s.name, "", &s.labels)).or_default() += s.value;
        }
        flat.into_iter().collect()
    }

    /// Flat scrape of every registered instrument and collector.
    /// Histograms expand into `_bucket`/`_sum`/`_count` samples in
    /// [`crate::prom`]; here they stay structured.
    pub(crate) fn scrape(&self) -> (Vec<ScrapedMetric>, Vec<Sample>) {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let scraped = entries
            .iter()
            .map(|e| ScrapedMetric {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => ScrapedValue::Counter(c.get()),
                    Instrument::Gauge(g) => ScrapedValue::Gauge(g.get()),
                    Instrument::Histogram(h) => ScrapedValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        let collectors = self.collectors.lock().unwrap_or_else(|e| e.into_inner());
        let extra = collectors.iter().flat_map(|c| c()).collect();
        (scraped, extra)
    }
}

pub(crate) enum ScrapedValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

pub(crate) struct ScrapedMetric {
    pub name: String,
    pub help: String,
    pub labels: Vec<(String, String)>,
    pub value: ScrapedValue,
}

/// The process-wide registry every subsystem reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same instance.
        assert_eq!(r.counter("c_total", "a counter").get(), 5);
        let g = r.gauge("g", "a gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("reqs_total", "by status", &[("status", "200")]);
        let b = r.counter_with("reqs_total", "by status", &[("status", "404")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(
            r.counter_with("reqs_total", "by status", &[("status", "200")])
                .get(),
            2
        );
    }

    #[test]
    fn histogram_observes_into_correct_buckets() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // <=1: {0.5, 1.0}; <=10: {5.0}; <=100: {50.0}; +Inf: {500.0}
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(s.count(), 5);
        assert!((s.sum - 556.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        for _ in 0..50 {
            h.observe(5.0);
        }
        for _ in 0..50 {
            h.observe(15.0);
        }
        let s = h.snapshot();
        // Rank 50 sits exactly at the first bucket's upper bound.
        assert!((s.quantile(0.5).unwrap() - 10.0).abs() < 1e-9);
        // Rank 100 is the end of the second bucket.
        assert!((s.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(Histogram::new(&[1.0]).snapshot().quantile(0.5), None);
    }

    #[test]
    fn quantile_clamps_overflow_to_last_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(99.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), Some(2.0));
        // …but the clamp is visible: the overflow count says how many
        // observations sit beyond every bound.
        assert_eq!(s.overflow(), 1);
        h.observe(0.5);
        assert_eq!(h.snapshot().overflow(), 1);
        assert_eq!(Histogram::new(&[1.0]).snapshot().overflow(), 0);
    }

    #[test]
    fn quantile_edges_never_nan_or_panic() {
        // Empty histogram: every quantile is None, count/overflow zero —
        // consumers that divide (the profile diff report) must see the
        // absence, not a NaN.
        let empty = Histogram::new(&[1.0, 2.0]).snapshot();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.overflow(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }

        // Single sample: all quantiles interpolate inside one bucket and
        // stay finite, including the q=0 corner.
        let one = Histogram::new(&[10.0, 20.0]);
        one.observe(15.0);
        let s = one.snapshot();
        assert_eq!(s.count(), 1);
        for q in [0.0, 0.5, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!(v.is_finite(), "q={q} gave {v}");
            assert!((10.0..=20.0).contains(&v), "q={q} gave {v}");
        }

        // Everything in the +Inf overflow bucket: quantiles clamp to the
        // last bound (finite), and overflow() == count() exposes the
        // saturation.
        let sat = Histogram::new(&[1.0, 2.0]);
        for _ in 0..10 {
            sat.observe(1e9);
        }
        let s = sat.snapshot();
        assert_eq!(s.overflow(), s.count());
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(s.quantile(q), Some(2.0), "q={q} must clamp, not NaN");
        }
    }

    #[test]
    fn flat_values_flatten_sum_and_sort() {
        let r = Registry::new();
        r.counter("c_total", "help").add(3);
        r.gauge("g", "help").set(-2);
        let h = r.histogram("lat_seconds", "help", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(5.0);
        r.counter_with("by_tier_total", "help", &[("tier", "mem")])
            .add(7);
        // Two collectors surfacing the same plain series: values sum.
        for _ in 0..2 {
            r.register_collector(Box::new(|| {
                vec![Sample::plain("ext_total", "ext", MetricKind::Counter, 3.0)]
            }));
        }
        let flat = r.flat_values();
        let get = |name: &str| {
            flat.iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name} in {flat:?}"))
                .1
        };
        assert_eq!(get("c_total"), 3.0);
        assert_eq!(get("g"), -2.0);
        assert_eq!(get("lat_seconds_count"), 2.0);
        assert!((get("lat_seconds_sum") - 5.5).abs() < 1e-9);
        assert_eq!(get("by_tier_total{tier=\"mem\"}"), 7.0);
        assert_eq!(get("ext_total"), 6.0, "duplicate series must sum");
        let names: Vec<&String> = flat.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn duration_buckets_are_strictly_increasing_and_fine_grained() {
        let b = duration_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // The serving band (0.1 ms .. 25 ms) must have sub-2x spacing so
        // tail quantiles interpolate instead of pinning to a bound.
        for w in b.windows(2) {
            if w[0] >= 1e-4 && w[1] <= 2.5e-2 {
                assert!(
                    w[1] / w[0] <= 2.0 + 1e-9,
                    "bucket gap {} -> {} too coarse for serving latencies",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        let b = Histogram::new(&[1.0, 2.0]);
        b.observe(1.5);
        b.observe(9.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counts, vec![1, 1, 1]);
        assert!((m.sum - 11.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn collectors_feed_scrapes() {
        let r = Registry::new();
        r.register_collector(Box::new(|| {
            vec![Sample::plain(
                "ext_total",
                "external",
                MetricKind::Counter,
                3.0,
            )]
        }));
        let (_, extra) = r.scrape();
        assert_eq!(extra.len(), 1);
        assert_eq!(extra[0].value, 3.0);
    }

    #[test]
    fn concurrent_observation_is_lossless() {
        let h = Arc::new(Histogram::new(&[0.5]));
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..10_000 {
                        h.observe(if i % 2 == 0 { 0.25 } else { 1.0 });
                        c.inc();
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), 80_000);
        assert_eq!(s.counts, vec![40_000, 40_000]);
        assert_eq!(c.get(), 80_000);
        assert!((s.sum - (40_000.0 * 0.25 + 40_000.0 * 1.0)).abs() < 1e-6);
    }
}
