//! Prometheus text exposition (format version 0.0.4).
//!
//! Renders every instrument and collector sample in the registry as
//! `# HELP` / `# TYPE` metadata plus one line per series. Histograms
//! expand into cumulative `_bucket{le="…"}` series, `_sum` and
//! `_count`, exactly as scrapers expect.
//!
//! Duplicate series (same name and label set — possible when several
//! short-lived components registered collectors over their lifetimes)
//! are summed rather than emitted twice, since repeated series are a
//! scrape-format violation.

use crate::metrics::{MetricKind, Registry, Sample, ScrapedValue};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escapes a `# HELP` text: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, newline.
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Inverse of [`escape_label`] (used by the property tests to prove the
/// escaping is lossless).
pub fn unescape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Formats a sample value: integral values print without a decimal
/// point, infinities as `+Inf`/`-Inf` (the `le` label convention).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// One flattened series, pre-aggregation.
struct Series {
    labels: Vec<(String, String)>,
    value: f64,
}

struct Family {
    help: String,
    type_name: &'static str,
    series: Vec<Series>,
}

fn push_series(
    families: &mut BTreeMap<String, Family>,
    name: &str,
    help: &str,
    type_name: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
) {
    let fam = families.entry(name.to_string()).or_insert_with(|| Family {
        help: help.to_string(),
        type_name,
        series: Vec::new(),
    });
    // Sum duplicates (same label set) instead of emitting twice.
    if let Some(existing) = fam.series.iter_mut().find(|s| s.labels == labels) {
        existing.value += value;
    } else {
        fam.series.push(Series { labels, value });
    }
}

/// Renders the registry. Families are sorted by name; series within a
/// family keep registration order (with `le` buckets in bound order),
/// so output is deterministic.
pub fn render(registry: &Registry) -> String {
    let (scraped, extra) = registry.scrape();
    let mut families: BTreeMap<String, Family> = BTreeMap::new();

    for m in scraped {
        match m.value {
            ScrapedValue::Counter(v) => push_series(
                &mut families,
                &m.name,
                &m.help,
                "counter",
                m.labels,
                v as f64,
            ),
            ScrapedValue::Gauge(v) => {
                push_series(&mut families, &m.name, &m.help, "gauge", m.labels, v as f64)
            }
            ScrapedValue::Histogram(snap) => {
                let cumulative = snap.cumulative();
                let total = snap.count();
                for (i, cum) in cumulative.iter().enumerate() {
                    let le = snap.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                    let mut labels = m.labels.clone();
                    labels.push(("le".into(), fmt_value(le)));
                    push_series(
                        &mut families,
                        &format!("{}_bucket", m.name),
                        &m.help,
                        "histogram",
                        labels,
                        *cum as f64,
                    );
                }
                push_series(
                    &mut families,
                    &format!("{}_sum", m.name),
                    &m.help,
                    "histogram",
                    m.labels.clone(),
                    snap.sum,
                );
                push_series(
                    &mut families,
                    &format!("{}_count", m.name),
                    &m.help,
                    "histogram",
                    m.labels,
                    total as f64,
                );
            }
        }
    }
    for Sample {
        name,
        help,
        kind,
        labels,
        value,
    } in extra
    {
        let type_name = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        push_series(&mut families, &name, &help, type_name, labels, value);
    }

    // `_bucket`/`_sum`/`_count` belong to one histogram family: emit
    // HELP/TYPE once under the base name when we hit its first part.
    let mut out = String::new();
    let mut histo_meta_done: std::collections::BTreeSet<String> = Default::default();
    for (name, fam) in &families {
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|_| fam.type_name == "histogram");
        match base {
            Some(base) => {
                if histo_meta_done.insert(base.to_string()) {
                    let _ = writeln!(out, "# HELP {base} {}", escape_help(&fam.help));
                    let _ = writeln!(out, "# TYPE {base} histogram");
                }
            }
            None => {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
                let _ = writeln!(out, "# TYPE {name} {}", fam.type_name);
            }
        }
        for s in &fam.series {
            let _ = writeln!(
                out,
                "{name}{} {}",
                fmt_labels(&s.labels),
                fmt_value(s.value)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn escaping_roundtrips() {
        for s in ["plain", "with\"quote", "back\\slash", "new\nline", ""] {
            assert_eq!(unescape_label(&escape_label(s)), s, "{s:?}");
            assert!(!escape_label(s).contains('\n'));
        }
        assert_eq!(escape_help("a\nb\\c"), "a\\nb\\\\c");
    }

    #[test]
    fn renders_counter_gauge_histogram() {
        let r = Registry::new();
        r.counter("reqs_total", "requests").add(3);
        r.gauge("depth", "queue depth").set(-2);
        let h = r.histogram("lat_seconds", "latency", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total 3"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_sum 5.55"));
    }

    #[test]
    fn duplicate_series_are_summed() {
        let r = Registry::new();
        r.register_collector(Box::new(|| {
            vec![Sample::plain("dup_total", "d", MetricKind::Counter, 1.0)]
        }));
        r.register_collector(Box::new(|| {
            vec![Sample::plain("dup_total", "d", MetricKind::Counter, 2.0)]
        }));
        let text = r.render_prometheus();
        assert!(text.contains("dup_total 3"));
        let series_lines = text.lines().filter(|l| l.starts_with("dup_total ")).count();
        assert_eq!(series_lines, 1);
    }

    #[test]
    fn labeled_series_render_with_escapes() {
        let r = Registry::new();
        r.counter_with("odd_total", "odd", &[("k", "a\"b")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("odd_total{k=\"a\\\"b\"} 1"));
    }
}
