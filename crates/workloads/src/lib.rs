//! Guest workloads for the `gem5sim` simulator.
//!
//! The paper simulates nine PARSEC 3.0 / SPLASH-2x applications
//! (`simmedium` inputs), a full-system Boot-Exit run, and — for the
//! FireSim study — a small C++ Sieve of Eratosthenes. We substitute
//! kernels written in the guest ISA that mimic each application's
//! operation mix (see each constructor's docs): what matters for the
//! paper's measurements is the *amount and kind of simulation work per
//! guest instruction*, which is set by the op mix (FP vs integer, memory
//! access pattern, branch behaviour), not by the application's output.
//!
//! # Example
//!
//! ```
//! use gem5sim_workloads::{Scale, Workload};
//! use gem5sim::{config::{CpuModel, SimMode, SystemConfig}, system::System};
//!
//! let prog = Workload::WaterNsquared.program(Scale::Test);
//! let mut sys = System::new(SystemConfig::new(CpuModel::Atomic, SimMode::Se), prog);
//! let r = sys.run();
//! assert!(r.committed_insts > 1000);
//! ```

mod boot;
mod kernels;
mod microbench;
mod sieve;

pub use microbench::{corun_program, Microbench};

use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::{Program, Reg};
use std::fmt;

/// Input scale, analogous to PARSEC's `test` / `simsmall` / `simmedium`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// Tiny (unit tests): a few thousand instructions.
    Test,
    /// Small (benchmark grids): tens of thousands of instructions.
    SimSmall,
    /// Medium (the paper's input size): hundreds of thousands.
    SimMedium,
}

impl Scale {
    /// A multiplicative problem-size factor.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::SimSmall => 6,
            Scale::SimMedium => 24,
        }
    }
}

/// The workloads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Workload {
    Blackscholes,
    Canneal,
    Dedup,
    Streamcluster,
    WaterNsquared,
    WaterSpatial,
    OceanCp,
    OceanNcp,
    Fmm,
    BootExit,
    Sieve,
    /// A checksummed microbenchmark variant (see [`Microbench`]).
    Micro(Microbench),
}

impl Workload {
    /// The nine PARSEC / SPLASH-2x applications used in Fig. 1.
    pub const PARSEC: [Workload; 9] = [
        Workload::Blackscholes,
        Workload::Canneal,
        Workload::Dedup,
        Workload::Streamcluster,
        Workload::WaterNsquared,
        Workload::WaterSpatial,
        Workload::OceanCp,
        Workload::OceanNcp,
        Workload::Fmm,
    ];

    /// The six checksummed microbenchmark variants, in wire order.
    pub const MICRO: [Workload; 6] = [
        Workload::Micro(Microbench::Alu),
        Workload::Micro(Microbench::BranchPred),
        Workload::Micro(Microbench::BranchUnpred),
        Workload::Micro(Microbench::MemSeq),
        Workload::Micro(Microbench::MemStride),
        Workload::Micro(Microbench::CallRet),
    ];

    /// Lower-case name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Blackscholes => "blackscholes",
            Workload::Canneal => "canneal",
            Workload::Dedup => "dedup",
            Workload::Streamcluster => "streamcluster",
            Workload::WaterNsquared => "water_nsquared",
            Workload::WaterSpatial => "water_spatial",
            Workload::OceanCp => "ocean_cp",
            Workload::OceanNcp => "ocean_ncp",
            Workload::Fmm => "fmm",
            Workload::BootExit => "boot_exit",
            Workload::Sieve => "sieve",
            Workload::Micro(m) => m.name(),
        }
    }

    /// Builds the guest program at the given scale.
    pub fn program(self, scale: Scale) -> Program {
        let mut b = ProgramBuilder::new();
        match self {
            Workload::Blackscholes => kernels::blackscholes(&mut b, scale),
            Workload::Canneal => kernels::canneal(&mut b, scale),
            Workload::Dedup => kernels::dedup(&mut b, scale),
            Workload::Streamcluster => kernels::streamcluster(&mut b, scale),
            Workload::WaterNsquared => kernels::water_nsquared(&mut b, scale),
            Workload::WaterSpatial => kernels::water_spatial(&mut b, scale),
            Workload::OceanCp => kernels::ocean(&mut b, scale, false),
            Workload::OceanNcp => kernels::ocean(&mut b, scale, true),
            Workload::Fmm => kernels::fmm(&mut b, scale),
            Workload::BootExit => boot::boot_exit(&mut b, scale),
            Workload::Sieve => sieve::sieve(&mut b, scale),
            Workload::Micro(m) => microbench::emit_single(&mut b, m, scale),
        }
        append_irq_handler(&mut b);
        b.assemble()
            .unwrap_or_else(|e| panic!("workload {self}: {e}"))
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Base address of workload data segments.
pub(crate) const DATA_BASE: i64 = 0x0010_0000;

/// Appends the standard timer-interrupt handler used in FS mode: bump a
/// jiffies counter and return. Uses only the reserved scratch registers
/// `s8`/`t6`, so it never perturbs workload state.
pub(crate) fn append_irq_handler(b: &mut ProgramBuilder) {
    b.label("__irq_handler")
        .li(Reg::S8, DATA_BASE - 64) // jiffies slot below the data segment
        .ld(Reg::T6, Reg::S8, 0)
        .addi(Reg::T6, Reg::T6, 1)
        .sd(Reg::T6, Reg::S8, 0)
        .iret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem5sim::config::{CpuModel, SimMode, SystemConfig};
    use gem5sim::system::System;

    fn run(w: Workload, scale: Scale, model: CpuModel, mode: SimMode) -> gem5sim::SimResult {
        let mut sys = System::new(SystemConfig::new(model, mode), w.program(scale));
        sys.run()
    }

    #[test]
    fn every_workload_assembles_and_terminates() {
        for w in Workload::PARSEC
            .into_iter()
            .chain([Workload::BootExit, Workload::Sieve])
        {
            let r = run(w, Scale::Test, CpuModel::Atomic, SimMode::Se);
            assert!(
                r.committed_insts > 800,
                "{w} too small: {}",
                r.committed_insts
            );
            assert!(
                r.committed_insts < 3_000_000,
                "{w} too large at Test scale: {}",
                r.committed_insts
            );
        }
    }

    #[test]
    fn scales_are_monotonic() {
        for w in [Workload::WaterNsquared, Workload::Canneal, Workload::Sieve] {
            let t = run(w, Scale::Test, CpuModel::Atomic, SimMode::Se).committed_insts;
            let s = run(w, Scale::SimSmall, CpuModel::Atomic, SimMode::Se).committed_insts;
            let m = run(w, Scale::SimMedium, CpuModel::Atomic, SimMode::Se).committed_insts;
            assert!(t < s && s < m, "{w}: {t} {s} {m}");
        }
    }

    #[test]
    fn fp_workloads_differ_from_integer_workloads_in_op_mix() {
        // blackscholes should be slower per instruction on Timing/Minor
        // than dedup (FP latencies), visible as lower guest IPC on O3.
        let bs = run(
            Workload::Blackscholes,
            Scale::Test,
            CpuModel::O3,
            SimMode::Se,
        );
        let dd = run(Workload::Dedup, Scale::Test, CpuModel::O3, SimMode::Se);
        assert!(bs.committed_insts > 0 && dd.committed_insts > 0);
        // Not asserting a strict order on IPC (both are loops), just that
        // both produce sane IPCs.
        assert!(bs.guest_ipc() > 0.2 && bs.guest_ipc() < 8.0);
        assert!(dd.guest_ipc() > 0.2 && dd.guest_ipc() < 8.0);
    }

    #[test]
    fn canneal_has_poor_locality_compared_to_blackscholes() {
        let ca = run(
            Workload::Canneal,
            Scale::SimSmall,
            CpuModel::Timing,
            SimMode::Se,
        );
        let bs = run(
            Workload::Blackscholes,
            Scale::SimSmall,
            CpuModel::Timing,
            SimMode::Se,
        );
        assert!(
            ca.l1d.miss_rate() > bs.l1d.miss_rate(),
            "canneal {} vs blackscholes {}",
            ca.l1d.miss_rate(),
            bs.l1d.miss_rate()
        );
    }

    #[test]
    fn boot_exit_runs_in_fs_mode_with_interrupts() {
        let r = run(
            Workload::BootExit,
            Scale::Test,
            CpuModel::Atomic,
            SimMode::Fs,
        );
        assert!(r.sim_ticks > 0);
        assert!(r.itlb.0 > 0);
        assert!(!r.stdout.is_empty(), "boot prints to the console");
    }

    #[test]
    fn sieve_counts_primes_correctly() {
        // The sieve writes the prime count as its exit code... it halts, so
        // check memory via stdout instead: sieve prints count mod 256.
        let r = run(Workload::Sieve, Scale::Test, CpuModel::Atomic, SimMode::Se);
        // pi(2048) = 309 -> 309 % 256 = 53
        assert_eq!(r.stdout, vec![53]);
    }

    #[test]
    fn all_models_agree_on_workload_results() {
        for w in [Workload::Dedup, Workload::Sieve, Workload::OceanCp] {
            let outs: Vec<_> = CpuModel::ALL
                .iter()
                .map(|&m| {
                    let r = run(w, Scale::Test, m, SimMode::Se);
                    (r.committed_insts, r.stdout)
                })
                .collect();
            assert!(
                outs.iter().all(|o| *o == outs[0]),
                "{w}: models disagree: {outs:?}"
            );
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let mut names: Vec<_> = Workload::PARSEC
            .iter()
            .chain(Workload::MICRO.iter())
            .chain([Workload::BootExit, Workload::Sieve].iter())
            .map(|w| w.name())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 17);
    }
}
