//! Sieve of Eratosthenes — the "simple C++ program" the paper runs on
//! gem5-on-FireSim (Fig. 14), where PARSEC would be too slow.

use crate::{Scale, DATA_BASE};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::Reg;

/// Emits the sieve over `[2, n)` with `n = 2048 * scale`, then prints
/// `count % 256` as a single byte via `write(1, …)`.
pub fn sieve(b: &mut ProgramBuilder, scale: Scale) {
    let n = 2048 * scale.factor() as i64;
    // Clear flags[0..n] (bytes).
    b.li(Reg::S0, DATA_BASE) // flags
        .li(Reg::T0, 0)
        .li(Reg::T1, n)
        .label("sv_clear")
        .add(Reg::T2, Reg::S0, Reg::T0)
        .sb(Reg::ZERO, Reg::T2, 0)
        .addi(Reg::T0, Reg::T0, 8) // clear every 8th; rest stays 0 anyway
        .blt(Reg::T0, Reg::T1, "sv_clear")
        // Outer: p from 2 while p*p < n.
        .li(Reg::S1, 2) // p
        .label("sv_outer")
        .mul(Reg::T0, Reg::S1, Reg::S1)
        .bge(Reg::T0, Reg::T1, "sv_count")
        // if flags[p] != 0, skip
        .add(Reg::T2, Reg::S0, Reg::S1)
        .lbu(Reg::T3, Reg::T2, 0)
        .bne(Reg::T3, Reg::ZERO, "sv_next_p")
        // mark multiples: m = p*p; m += p
        .mul(Reg::S2, Reg::S1, Reg::S1)
        .li(Reg::T4, 1)
        .label("sv_mark")
        .add(Reg::T2, Reg::S0, Reg::S2)
        .sb(Reg::T4, Reg::T2, 0)
        .add(Reg::S2, Reg::S2, Reg::S1)
        .blt(Reg::S2, Reg::T1, "sv_mark")
        .label("sv_next_p")
        .addi(Reg::S1, Reg::S1, 1)
        .j("sv_outer")
        // Count primes in [2, n).
        .label("sv_count")
        .li(Reg::S3, 0) // count
        .li(Reg::S1, 2)
        .label("sv_cnt_loop")
        .add(Reg::T2, Reg::S0, Reg::S1)
        .lbu(Reg::T3, Reg::T2, 0)
        .bne(Reg::T3, Reg::ZERO, "sv_not_prime")
        .addi(Reg::S3, Reg::S3, 1)
        .label("sv_not_prime")
        .addi(Reg::S1, Reg::S1, 1)
        .blt(Reg::S1, Reg::T1, "sv_cnt_loop")
        // Print count % 256 as one byte.
        .andi(Reg::S3, Reg::S3, 255)
        .li(Reg::T0, DATA_BASE - 128)
        .sb(Reg::S3, Reg::T0, 0)
        .li(Reg::A7, 64) // write
        .li(Reg::A0, 1)
        .li(Reg::A1, DATA_BASE - 128)
        .li(Reg::A2, 1)
        .ecall()
        .halt();
}
