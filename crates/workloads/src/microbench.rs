//! Deterministic guest microbenchmarks with checksummed results.
//!
//! Six single-behaviour kernels isolate one microarchitectural axis
//! each — ALU throughput, predictable vs data-dependent branching,
//! streaming vs cache-hostile strided memory, and call/return — so the
//! per-variant guest-MIPS matrix (Fig. 16) localizes *which* kind of
//! simulation work each CPU model pays for, the way the paper's kernel
//! sweep localizes gem5's host hot spots.
//!
//! Every variant folds its observable work into a 64-bit checksum and
//! stores it at `GUEST_CHECKSUM_BASE + 8 * tp` before halting. The
//! checksum is mirrored bit-exactly by [`Microbench::expected_checksum`]
//! on the host, giving each run a correctness guardrail: a simulator
//! change that alters any architectural result flips the checksum, in
//! every CPU model and both execution tiers.
//!
//! [`corun_program`] pairs two variants into one multi-hart program:
//! even harts run the primary variant, odd harts the partner, with
//! disjoint label namespaces and disjoint data arrays so interference
//! happens only where it should — in the shared L2 and DRAM.

use crate::{Scale, DATA_BASE};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::{Program, Reg, GUEST_CHECKSUM_BASE};

/// Sequences-of-64-bit-words length of `mem_seq`'s walk and of the
/// LCG-filled prefix of every memory variant's window: 64 KB, twice the
/// default 32 KB L1D.
const WORDS: u64 = 8192;
/// Words in `mem_stride`'s walk window: 512 KB = 8192 cache lines,
/// eight lines in each of the default L2's 1024 sets *per hart*. One
/// strided hart therefore fits the 16-way shared L2 (cold misses only),
/// two harts exactly fill it, and four harts demand twice its capacity
/// — cyclic LRU then evicts every line before its reuse, so co-running
/// memory-bound harts thrash each other into DRAM. Only the first
/// [`WORDS`] slots are LCG-filled; the rest of the window reads as the
/// zeros guest physical memory is initialised to, which the host mirror
/// reproduces.
const STRIDE_WINDOW: u64 = 65536;
/// Stride (in words) of `mem_stride`'s walk: 65 cache lines. 65 is odd
/// and coprime with the window's 8192 lines, so the walk lands on every
/// line exactly once per 8192 accesses with uniform set coverage — each
/// access touches a new line whose revisit distance (8192 lines) dwarfs
/// the default L1D's 512-line capacity, so once warm every access
/// misses L1.
const STRIDE: u64 = 520;
/// Knuth's MMIX LCG, the same generator the PARSEC-like kernels use.
const LCG_A: u64 = 6364136223846793005;
const LCG_C: u64 = 1442695040888963407;
/// xorshift* output constant — fits in a positive `i64` so it can be an
/// `addi` immediate.
const MIX: u64 = 0x2545_F491_4F6C_DD1D;
const ALU_SEED: u64 = 0x243F_6A88_85A3_08D3;
const BR_SEED: u64 = 0x1319_8A2E_0370_7344;
const MEM_SEQ_SEED: u64 = 9001;
const MEM_STRIDE_SEED: u64 = 777;

/// Data array used by a single-workload (non-co-run) microbench, and by
/// the even-hart slot of a co-run pair. Each hart offsets its array by
/// `tp << 20` (1 MB of spacing, ample for the 512 KB stride window), so
/// co-running memory harts keep *disjoint* footprints — the interference
/// they suffer is shared-L2 capacity and port pressure, never sharing.
const ARR_A: i64 = DATA_BASE;
/// Data array of the odd-hart slot of a co-run pair — disjoint from
/// [`ARR_A`] and from every even hart's offset window, so paired memory
/// variants never read each other's fills.
const ARR_B: i64 = DATA_BASE + 0x40_0000;

/// One guest microbenchmark variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Microbench {
    /// Dependent 64-bit ALU chain (LCG + shift/xor mixing), no memory
    /// traffic beyond instruction fetch.
    Alu,
    /// Nested counted loops: branches taken with a fixed pattern, so
    /// any predictor converges.
    BranchPred,
    /// Branch direction decided by the low bit of an LCG stream:
    /// deterministic but pattern-free, the predictor's worst case.
    BranchUnpred,
    /// Sequential read sweep over a 64 KB array (streaming, one miss
    /// per line).
    MemSeq,
    /// Line-strided read walk over a 512 KB per-hart window whose
    /// revisit distance exceeds L1D capacity (one L1 miss per access
    /// once warm) and whose per-hart L2 footprint — eight lines per set
    /// — makes four co-running harts oversubscribe the 16-way shared L2
    /// and thrash each other into DRAM.
    MemStride,
    /// A tight loop of leaf calls exercising call/return and the RAS.
    CallRet,
}

impl Microbench {
    /// All variants, in fixed wire order.
    pub const ALL: [Microbench; 6] = [
        Microbench::Alu,
        Microbench::BranchPred,
        Microbench::BranchUnpred,
        Microbench::MemSeq,
        Microbench::MemStride,
        Microbench::CallRet,
    ];

    /// Lower-case wire name (also the workload name on `/experiments`).
    pub fn name(self) -> &'static str {
        match self {
            Microbench::Alu => "alu",
            Microbench::BranchPred => "branch_pred",
            Microbench::BranchUnpred => "branch_unpred",
            Microbench::MemSeq => "mem_seq",
            Microbench::MemStride => "mem_stride",
            Microbench::CallRet => "call_ret",
        }
    }

    /// Iteration count at `scale`.
    fn iters(self, scale: Scale) -> u64 {
        let f = scale.factor();
        match self {
            Microbench::Alu => 4000 * f,
            Microbench::BranchPred => 400 * f, // x8 inner iterations
            Microbench::BranchUnpred => 3000 * f,
            Microbench::MemSeq => 6000 * f,
            // Three full orbits of the 8192-line stride window, so the
            // steady-state (post-warmup) miss behaviour dominates.
            Microbench::MemStride => 24576 * f,
            Microbench::CallRet => 2000 * f,
        }
    }

    /// Host-side mirror of the guest checksum: bit-exact wrapping u64
    /// arithmetic over the same sequence the guest executes. Any
    /// simulator defect that perturbs an architectural result makes the
    /// guest-deposited checksum diverge from this value.
    pub fn expected_checksum(self, scale: Scale) -> u64 {
        let n = self.iters(scale);
        let mut chk = 0u64;
        match self {
            Microbench::Alu => {
                let mut x = ALU_SEED;
                for _ in 0..n {
                    x = x.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                    chk = chk.wrapping_add((x >> 29) ^ x);
                }
            }
            Microbench::BranchPred => {
                for i in 0..n {
                    for j in 0..8 {
                        chk = chk.wrapping_add(i ^ j);
                    }
                }
            }
            Microbench::BranchUnpred => {
                let mut x = BR_SEED;
                for _ in 0..n {
                    x = x.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                    // Bit 33: the LCG's low bits cycle with tiny periods
                    // (bit 0 strictly alternates), which any predictor
                    // learns; a high bit is pattern-free.
                    if (x >> 33) & 1 == 1 {
                        chk = chk.wrapping_add(x);
                    } else {
                        chk ^= x;
                    }
                }
            }
            Microbench::MemSeq | Microbench::MemStride => {
                let (seed, stride, window) = if self == Microbench::MemSeq {
                    (MEM_SEQ_SEED, 1, WORDS)
                } else {
                    (MEM_STRIDE_SEED, STRIDE, STRIDE_WINDOW)
                };
                let mut arr = vec![0u64; WORDS as usize];
                let mut s = seed;
                for slot in arr.iter_mut() {
                    s = s.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                    *slot = s;
                }
                let mut idx = 0u64;
                for _ in 0..n {
                    // Beyond the filled prefix the guest reads the zeros
                    // its physical memory is initialised to.
                    let word = if idx < WORDS { arr[idx as usize] } else { 0 };
                    chk = (chk ^ word).wrapping_add(MIX);
                    idx = (idx + stride) & (window - 1);
                }
            }
            Microbench::CallRet => {
                for i in 0..n {
                    chk = chk.wrapping_add(MIX) ^ i;
                }
            }
        }
        chk
    }
}

impl std::fmt::Display for Microbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// LCG fill of `WORDS` slots at this hart's offset window above `base`
/// — the microbench-local twin of the kernels' fill, with a
/// caller-chosen label so two fills can coexist in one co-run program.
/// Clobbers t0..t4, a6.
fn fill(b: &mut ProgramBuilder, label: &str, base: i64, seed: u64) {
    b.li(Reg::T0, base)
        .slli(Reg::T4, Reg::TP, 20)
        .add(Reg::T0, Reg::T0, Reg::T4)
        .li(Reg::T1, 0)
        .li(Reg::T2, WORDS as i64)
        .li(Reg::A6, seed as i64)
        .li(Reg::T3, LCG_A as i64)
        .label(label.to_string())
        .mul(Reg::A6, Reg::A6, Reg::T3)
        .addi(Reg::A6, Reg::A6, LCG_C as i64)
        .sd(Reg::A6, Reg::T0, 0)
        .addi(Reg::T0, Reg::T0, 8)
        .addi(Reg::T1, Reg::T1, 1)
        .bne(Reg::T1, Reg::T2, label.to_string());
}

/// Emits the checksum deposit + halt epilogue: the running checksum in
/// `a0` is stored to this hart's slot at `GUEST_CHECKSUM_BASE + 8*tp`.
fn deposit_and_halt(b: &mut ProgramBuilder) {
    b.slli(Reg::T0, Reg::TP, 3)
        .li(Reg::T1, GUEST_CHECKSUM_BASE as i64)
        .add(Reg::T0, Reg::T0, Reg::T1)
        .sd(Reg::A0, Reg::T0, 0)
        .halt();
}

/// Emits one variant's body with all labels under `prefix` and memory
/// traffic confined to the array at `base`. The body keeps its checksum
/// in `a0` and ends with the deposit/halt epilogue, so a fallthrough
/// never crosses into whatever is emitted next.
///
/// Register use: `a0` checksum, `a1`/`a6` generator state, `s0`/`s1`
/// loop bounds, `t0..t5` scratch — `s8`/`t6` stay reserved for the
/// FS-mode interrupt handler, as everywhere in this crate.
fn emit(b: &mut ProgramBuilder, mb: Microbench, scale: Scale, prefix: &str, base: i64) {
    let n = mb.iters(scale) as i64;
    b.li(Reg::A0, 0);
    match mb {
        Microbench::Alu => {
            let l = format!("{prefix}_alu");
            b.li(Reg::A1, ALU_SEED as i64)
                .li(Reg::S0, 0)
                .li(Reg::S1, n)
                .li(Reg::T3, LCG_A as i64)
                .label(l.clone())
                .mul(Reg::A1, Reg::A1, Reg::T3)
                .addi(Reg::A1, Reg::A1, LCG_C as i64)
                .srli(Reg::T0, Reg::A1, 29)
                .xor(Reg::T0, Reg::T0, Reg::A1)
                .add(Reg::A0, Reg::A0, Reg::T0)
                .addi(Reg::S0, Reg::S0, 1)
                .bne(Reg::S0, Reg::S1, l);
        }
        Microbench::BranchPred => {
            let outer = format!("{prefix}_bp_outer");
            let inner = format!("{prefix}_bp_inner");
            b.li(Reg::S0, 0)
                .li(Reg::S1, n)
                .li(Reg::T5, 8)
                .label(outer.clone())
                .li(Reg::T0, 0)
                .label(inner.clone())
                .xor(Reg::T1, Reg::S0, Reg::T0)
                .add(Reg::A0, Reg::A0, Reg::T1)
                .addi(Reg::T0, Reg::T0, 1)
                .bne(Reg::T0, Reg::T5, inner)
                .addi(Reg::S0, Reg::S0, 1)
                .bne(Reg::S0, Reg::S1, outer);
        }
        Microbench::BranchUnpred => {
            let l = format!("{prefix}_bu");
            let odd = format!("{prefix}_bu_odd");
            let next = format!("{prefix}_bu_next");
            b.li(Reg::A1, BR_SEED as i64)
                .li(Reg::S0, 0)
                .li(Reg::S1, n)
                .li(Reg::T3, LCG_A as i64)
                .label(l.clone())
                .mul(Reg::A1, Reg::A1, Reg::T3)
                .addi(Reg::A1, Reg::A1, LCG_C as i64)
                .srli(Reg::T0, Reg::A1, 33)
                .andi(Reg::T0, Reg::T0, 1)
                // Data-dependent direction: taken iff LCG bit 33 is set.
                .bne(Reg::T0, Reg::ZERO, odd.clone())
                .xor(Reg::A0, Reg::A0, Reg::A1)
                .j(next.clone())
                .label(odd)
                .add(Reg::A0, Reg::A0, Reg::A1)
                .label(next)
                .addi(Reg::S0, Reg::S0, 1)
                .bne(Reg::S0, Reg::S1, l);
        }
        Microbench::MemSeq | Microbench::MemStride => {
            let (seed, stride, window) = if mb == Microbench::MemSeq {
                (MEM_SEQ_SEED, 1, WORDS)
            } else {
                (MEM_STRIDE_SEED, STRIDE, STRIDE_WINDOW)
            };
            let l = format!("{prefix}_mem");
            fill(b, &format!("{prefix}_fill"), base, seed);
            b.li(Reg::S0, 0)
                .li(Reg::S1, n)
                .li(Reg::S4, base)
                .slli(Reg::T1, Reg::TP, 20)
                .add(Reg::S4, Reg::S4, Reg::T1) // per-hart window
                .li(Reg::T0, 0) // word index
                .label(l.clone())
                .slli(Reg::T1, Reg::T0, 3)
                .add(Reg::T1, Reg::T1, Reg::S4)
                .ld(Reg::T2, Reg::T1, 0)
                .xor(Reg::A0, Reg::A0, Reg::T2)
                .addi(Reg::A0, Reg::A0, MIX as i64)
                .addi(Reg::T0, Reg::T0, stride as i64)
                .andi(Reg::T0, Reg::T0, window as i64 - 1)
                .addi(Reg::S0, Reg::S0, 1)
                .bne(Reg::S0, Reg::S1, l);
        }
        Microbench::CallRet => {
            let l = format!("{prefix}_cr");
            let leaf = format!("{prefix}_cr_leaf");
            let done = format!("{prefix}_cr_done");
            b.li(Reg::S0, 0)
                .li(Reg::S1, n)
                .label(l.clone())
                .call(leaf.clone())
                .addi(Reg::S0, Reg::S0, 1)
                .bne(Reg::S0, Reg::S1, l)
                .j(done.clone())
                .label(leaf)
                .addi(Reg::A0, Reg::A0, MIX as i64)
                .xor(Reg::A0, Reg::A0, Reg::S0)
                .ret()
                .label(done);
        }
    }
    deposit_and_halt(b);
}

/// Emits a single-workload microbench (used by `Workload::program`).
pub(crate) fn emit_single(b: &mut ProgramBuilder, mb: Microbench, scale: Scale) {
    emit(b, mb, scale, "mb", ARR_A);
}

/// Builds the combined co-run program: even harts (`tp & 1 == 0`) run
/// `a` against one data array, odd harts run `b` against a disjoint
/// one. Any hart count works — parity decides the slot — so the same
/// program serves 1-, 2- and 4-hart scenarios.
pub fn corun_program(a: Microbench, partner: Microbench, scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    b.andi(Reg::T0, Reg::TP, 1)
        .bne(Reg::T0, Reg::ZERO, "corun_b");
    emit(&mut b, a, scale, "ca", ARR_A);
    b.label("corun_b");
    emit(&mut b, partner, scale, "cb", ARR_B);
    crate::append_irq_handler(&mut b);
    b.assemble()
        .unwrap_or_else(|e| panic!("corun {a}+{partner}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use gem5sim::config::{CpuModel, SimMode, SystemConfig};
    use gem5sim::system::System;

    fn run_micro(mb: Microbench, scale: Scale, model: CpuModel) -> gem5sim::SimResult {
        let prog = Workload::Micro(mb).program(scale);
        let mut sys = System::new(SystemConfig::new(model, SimMode::Se), prog);
        sys.run()
    }

    #[test]
    fn every_variant_matches_its_expected_checksum() {
        for mb in Microbench::ALL {
            let r = run_micro(mb, Scale::Test, CpuModel::Atomic);
            assert_eq!(
                r.guest_checksums,
                vec![mb.expected_checksum(Scale::Test)],
                "{mb}: checksum mismatch"
            );
            assert!(r.committed_insts > 800, "{mb}: {}", r.committed_insts);
            assert!(
                r.committed_insts < 3_000_000,
                "{mb} too large at Test scale: {}",
                r.committed_insts
            );
        }
    }

    #[test]
    fn checksums_are_model_invariant() {
        for mb in [Microbench::Alu, Microbench::MemStride, Microbench::CallRet] {
            let outs: Vec<_> = CpuModel::ALL
                .iter()
                .map(|&m| run_micro(mb, Scale::Test, m).guest_checksums)
                .collect();
            assert!(
                outs.iter().all(|o| *o == outs[0]),
                "{mb}: models disagree: {outs:?}"
            );
        }
    }

    #[test]
    fn checksums_discriminate_variants_and_scales() {
        let mut seen = Vec::new();
        for mb in Microbench::ALL {
            for scale in [Scale::Test, Scale::SimSmall] {
                seen.push(mb.expected_checksum(scale));
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 12, "checksum collision across variants/scales");
    }

    #[test]
    fn branch_variants_differ_in_mispredicts() {
        let prog = |mb: Microbench| Workload::Micro(mb).program(Scale::Test);
        let run = |mb| {
            let mut sys = System::new(SystemConfig::new(CpuModel::O3, SimMode::Se), prog(mb));
            sys.run()
        };
        let pred = run(Microbench::BranchPred);
        let unpred = run(Microbench::BranchUnpred);
        let rate = |r: &gem5sim::SimResult| {
            let (l, m) = r.bp.expect("O3 reports branch stats");
            m as f64 / l.max(1) as f64
        };
        assert!(
            rate(&unpred) > 2.0 * rate(&pred),
            "unpred {:.4} vs pred {:.4}",
            rate(&unpred),
            rate(&pred)
        );
    }

    #[test]
    fn mem_variants_differ_in_locality() {
        let seq = run_micro(Microbench::MemSeq, Scale::Test, CpuModel::Timing);
        let stride = run_micro(Microbench::MemStride, Scale::Test, CpuModel::Timing);
        assert!(
            stride.l1d.miss_rate() > 2.0 * seq.l1d.miss_rate(),
            "stride {:.4} vs seq {:.4}",
            stride.l1d.miss_rate(),
            seq.l1d.miss_rate()
        );
    }

    #[test]
    fn corun_parity_assigns_checksums() {
        let prog = corun_program(Microbench::MemStride, Microbench::Alu, Scale::Test);
        let cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se).with_cpus(4);
        let mut sys = System::new(cfg, prog);
        let r = sys.run();
        let ms = Microbench::MemStride.expected_checksum(Scale::Test);
        let alu = Microbench::Alu.expected_checksum(Scale::Test);
        assert_eq!(r.guest_checksums, vec![ms, alu, ms, alu]);
    }

    #[test]
    fn corun_of_identical_variants_assembles_disjointly() {
        let prog = corun_program(Microbench::MemSeq, Microbench::MemSeq, Scale::Test);
        let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_cpus(2);
        let mut sys = System::new(cfg, prog);
        let r = sys.run();
        let want = Microbench::MemSeq.expected_checksum(Scale::Test);
        assert_eq!(r.guest_checksums, vec![want, want]);
    }
}
