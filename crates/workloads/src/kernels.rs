//! PARSEC / SPLASH-2x-like guest kernels.
//!
//! Each kernel mimics the operation mix of the corresponding application:
//! the FP/integer balance, the memory access pattern (streaming, strided,
//! pointer-chasing), and the branch behaviour (predictable loop bounds vs
//! data-dependent decisions). These are the properties that set how much
//! and what kind of *simulation work per guest instruction* gem5 performs,
//! which is what the host-level profile depends on.
//!
//! Register convention: `s8` and `t6` are reserved for the FS-mode
//! interrupt handler and never used here.

use crate::{Scale, DATA_BASE};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::{FReg, Reg};

const ARR0: i64 = DATA_BASE; // primary array
const ARR1: i64 = DATA_BASE + 0x40_0000; // secondary array
const ARR2: i64 = DATA_BASE + 0x80_0000; // tertiary array

/// Emits a standard LCG fill of `n` 64-bit slots at `base` using `seed`.
/// Clobbers t0..t3, a6.
fn lcg_fill(b: &mut ProgramBuilder, label: &str, base: i64, n: i64, seed: i64) {
    b.li(Reg::T0, base)
        .li(Reg::T1, 0)
        .li(Reg::T2, n)
        .li(Reg::A6, seed)
        .li(Reg::T3, 6364136223846793005)
        .label(label.to_string())
        .mul(Reg::A6, Reg::A6, Reg::T3)
        .addi(Reg::A6, Reg::A6, 1442695040888963407)
        .sd(Reg::A6, Reg::T0, 0)
        .addi(Reg::T0, Reg::T0, 8)
        .addi(Reg::T1, Reg::T1, 1)
        .bne(Reg::T1, Reg::T2, label.to_string());
}

/// `blackscholes`: embarrassingly regular FP option pricing.
///
/// Per option: load three parameters, run a division/sqrt-rich arithmetic
/// chain (standing in for the CNDF evaluation), store the price. Streaming
/// access, perfectly predictable branches, FP-dominated — the "easy" end
/// of PARSEC.
pub fn blackscholes(b: &mut ProgramBuilder, scale: Scale) {
    let n = 48 * scale.factor() as i64;
    lcg_fill(b, "bs_fill", ARR0, 3 * n, 12345);
    b.li(Reg::S0, ARR0) // params
        .li(Reg::S1, ARR1) // prices out
        .li(Reg::S2, 0) // i
        .li(Reg::S3, n)
        .li(Reg::T0, 255)
        .label("bs_loop")
        // Load three params as small positive doubles.
        .ld(Reg::T1, Reg::S0, 0)
        .andi(Reg::T1, Reg::T1, 255)
        .addi(Reg::T1, Reg::T1, 1)
        .fcvt_if(FReg(0), Reg::T1) // S (spot)
        .ld(Reg::T1, Reg::S0, 8)
        .andi(Reg::T1, Reg::T1, 255)
        .addi(Reg::T1, Reg::T1, 1)
        .fcvt_if(FReg(1), Reg::T1) // K (strike)
        .ld(Reg::T1, Reg::S0, 16)
        .andi(Reg::T1, Reg::T1, 63)
        .addi(Reg::T1, Reg::T1, 1)
        .fcvt_if(FReg(2), Reg::T1) // T (time)
        // d1 = (S/K) / sqrt(T); d2 = d1 - sqrt(T); price = S*d1 - K*d2
        .fdiv(FReg(3), FReg(0), FReg(1))
        .fsqrt(FReg(4), FReg(2))
        .fdiv(FReg(5), FReg(3), FReg(4))
        .fsub(FReg(6), FReg(5), FReg(4))
        .fmul(FReg(7), FReg(0), FReg(5))
        .fmul(FReg(8), FReg(1), FReg(6))
        .fsub(FReg(9), FReg(7), FReg(8))
        .fsd(FReg(9), Reg::S1, 0)
        .addi(Reg::S0, Reg::S0, 24)
        .addi(Reg::S1, Reg::S1, 8)
        .addi(Reg::S2, Reg::S2, 1)
        .bne(Reg::S2, Reg::S3, "bs_loop")
        .halt();
}

/// `canneal`: cache-hostile pointer chasing with data-dependent branches.
///
/// Walks a permutation cycle over a large element array (simulated
/// annealing's random element picks), swap-accepting based on element
/// parity. The array exceeds L1D by design.
pub fn canneal(b: &mut ProgramBuilder, scale: Scale) {
    let n: i64 = 16 * 1024; // elements (128 KB) — larger than L1D
    let steps = 700 * scale.factor() as i64;
    // perm[i] = (i * 9973 + 7) mod n  (9973 coprime with 2^14)
    b.li(Reg::S0, ARR0)
        .li(Reg::T0, 0)
        .li(Reg::T1, n)
        .li(Reg::T2, 9973)
        .label("ca_fill")
        .mul(Reg::T3, Reg::T0, Reg::T2)
        .addi(Reg::T3, Reg::T3, 7)
        .andi(Reg::T3, Reg::T3, n - 1)
        .slli(Reg::T4, Reg::T0, 3)
        .add(Reg::T4, Reg::T4, Reg::S0)
        .slli(Reg::T3, Reg::T3, 3)
        .add(Reg::T3, Reg::T3, Reg::S0)
        .sd(Reg::T3, Reg::T4, 0) // store *address* of successor
        .addi(Reg::T0, Reg::T0, 1)
        .bne(Reg::T0, Reg::T1, "ca_fill")
        // Chase: cur = *cur; accept/reject on address parity bit 3.
        .mv(Reg::S1, Reg::S0) // cur
        .li(Reg::S2, 0) // accepted
        .li(Reg::S3, 0) // step
        .li(Reg::S4, steps)
        .label("ca_chase")
        .ld(Reg::S1, Reg::S1, 0) // pointer chase (serialized loads)
        .andi(Reg::T0, Reg::S1, 8)
        .beq(Reg::T0, Reg::ZERO, "ca_reject")
        .addi(Reg::S2, Reg::S2, 1)
        .sd(Reg::S2, Reg::S1, 0x2000) // swap write near the element
        .label("ca_reject")
        .addi(Reg::S3, Reg::S3, 1)
        .bne(Reg::S3, Reg::S4, "ca_chase")
        .halt();
}

/// `dedup`: integer hashing pipeline (rolling hash + hash-table probes).
///
/// Byte-granular loads, multiply/xor hashing, and hash-table stores with
/// hit/miss branches — integer- and branch-heavy.
pub fn dedup(b: &mut ProgramBuilder, scale: Scale) {
    let nbytes = 1400 * scale.factor() as i64;
    lcg_fill(b, "dd_fill", ARR0, nbytes / 8 + 1, 999);
    b.li(Reg::S0, ARR0) // input
        .li(Reg::S1, ARR1) // hash table (2^10 buckets)
        .li(Reg::S2, 0) // i
        .li(Reg::S3, nbytes)
        .li(Reg::S4, 0) // h
        .li(Reg::S5, 0) // dupes
        .li(Reg::S6, 31)
        .label("dd_loop")
        .add(Reg::T0, Reg::S0, Reg::S2)
        .lbu(Reg::T1, Reg::T0, 0)
        .mul(Reg::S4, Reg::S4, Reg::S6)
        .add(Reg::S4, Reg::S4, Reg::T1)
        .andi(Reg::T2, Reg::S2, 63)
        .bne(Reg::T2, Reg::ZERO, "dd_next") // chunk boundary every 64 B
        // probe table[h % 1024]
        .andi(Reg::T3, Reg::S4, 1023)
        .slli(Reg::T3, Reg::T3, 3)
        .add(Reg::T3, Reg::T3, Reg::S1)
        .ld(Reg::T4, Reg::T3, 0)
        .bne(Reg::T4, Reg::S4, "dd_insert")
        .addi(Reg::S5, Reg::S5, 1) // duplicate chunk
        .j("dd_next")
        .label("dd_insert")
        .sd(Reg::S4, Reg::T3, 0)
        .label("dd_next")
        .addi(Reg::S2, Reg::S2, 1)
        .bne(Reg::S2, Reg::S3, "dd_loop")
        .halt();
}

/// `streamcluster`: k-means-style distance kernel.
///
/// For each point, compute squared distances to 4 centers over 8
/// dimensions and pick the argmin — FP multiply-add streams with
/// short data-dependent comparison branches.
pub fn streamcluster(b: &mut ProgramBuilder, scale: Scale) {
    let npoints = 30 * scale.factor() as i64;
    let dims: i64 = 8;
    let k: i64 = 4;
    lcg_fill(b, "sc_fillp", ARR0, npoints * dims, 77);
    lcg_fill(b, "sc_fillc", ARR1, k * dims, 33);
    b.li(Reg::S0, ARR0)
        .li(Reg::S1, 0) // point index
        .li(Reg::S2, npoints)
        .label("sc_point")
        .li(Reg::S3, 0) // center index
        .li(Reg::S4, -1) // best center
        .li(Reg::T4, 0) // best dist bits (init below)
        .fcvt_if(FReg(10), Reg::ZERO)
        .li(Reg::T0, 1 << 30)
        .fcvt_if(FReg(11), Reg::T0) // best = huge
        .label("sc_center")
        .fcvt_if(FReg(0), Reg::ZERO) // acc = 0
        .li(Reg::S5, 0) // dim
        .label("sc_dim")
        // load point[dim], center[dim] as small doubles from int bits
        .mul(Reg::T1, Reg::S1, Reg::ZERO) // t1 = 0 (filler op, rename pressure)
        .slli(Reg::T1, Reg::S5, 3)
        .add(Reg::T2, Reg::S0, Reg::T1)
        .ld(Reg::T3, Reg::T2, 0)
        .andi(Reg::T3, Reg::T3, 1023)
        .fcvt_if(FReg(1), Reg::T3)
        .li(Reg::T2, ARR1)
        .add(Reg::T2, Reg::T2, Reg::T1)
        .ld(Reg::T3, Reg::T2, 0)
        .andi(Reg::T3, Reg::T3, 1023)
        .fcvt_if(FReg(2), Reg::T3)
        .fsub(FReg(3), FReg(1), FReg(2))
        .fmul(FReg(4), FReg(3), FReg(3))
        .fadd(FReg(0), FReg(0), FReg(4))
        .addi(Reg::S5, Reg::S5, 1)
        .slti(Reg::T5, Reg::S5, dims)
        .bne(Reg::T5, Reg::ZERO, "sc_dim")
        // if acc < best { best = acc; bestc = c }
        .flt(Reg::T5, FReg(0), FReg(11))
        .beq(Reg::T5, Reg::ZERO, "sc_skip")
        .fadd(FReg(11), FReg(0), FReg(10))
        .mv(Reg::S4, Reg::S3)
        .label("sc_skip")
        .addi(Reg::S3, Reg::S3, 1)
        .slti(Reg::T5, Reg::S3, k)
        .bne(Reg::T5, Reg::ZERO, "sc_center")
        // store assignment
        .slli(Reg::T0, Reg::S1, 3)
        .li(Reg::T1, ARR2)
        .add(Reg::T0, Reg::T0, Reg::T1)
        .sd(Reg::S4, Reg::T0, 0)
        .addi(Reg::S0, Reg::S0, 8 * dims)
        .addi(Reg::S1, Reg::S1, 1)
        .bne(Reg::S1, Reg::S2, "sc_point")
        .halt();
}

fn water_n(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 16,
        Scale::SimSmall => 40,
        Scale::SimMedium => 84,
    }
}

/// `water_nsquared`: O(N²) pairwise molecular forces.
///
/// The paper's representative workload for the Top-Down study. Nested
/// loops over all molecule pairs: FP subtract/multiply/divide chains with
/// fully predictable inner branches and streaming loads of the position
/// arrays.
pub fn water_nsquared(b: &mut ProgramBuilder, scale: Scale) {
    let n = water_n(scale);
    lcg_fill(b, "wn_fill", ARR0, 3 * n, 4242);
    b.li(Reg::S0, 0) // i
        .li(Reg::S1, n)
        .label("wn_i")
        .addi(Reg::S2, Reg::S0, 1) // j = i+1
        .label("wn_j")
        .bge(Reg::S2, Reg::S1, "wn_j_done")
        // load positions (3 coords each) as small doubles
        .li(Reg::T0, ARR0)
        .slli(Reg::T1, Reg::S0, 3)
        .add(Reg::T1, Reg::T1, Reg::T0)
        .ld(Reg::T2, Reg::T1, 0)
        .andi(Reg::T2, Reg::T2, 511)
        .fcvt_if(FReg(0), Reg::T2)
        .slli(Reg::T1, Reg::S2, 3)
        .add(Reg::T1, Reg::T1, Reg::T0)
        .ld(Reg::T2, Reg::T1, 0)
        .andi(Reg::T2, Reg::T2, 511)
        .fcvt_if(FReg(1), Reg::T2)
        .fsub(FReg(2), FReg(0), FReg(1)) // dx
        .fmul(FReg(3), FReg(2), FReg(2)) // dx^2
        .li(Reg::T2, 1)
        .fcvt_if(FReg(4), Reg::T2)
        .fadd(FReg(3), FReg(3), FReg(4)) // r2 + 1 (avoid div by 0)
        .fdiv(FReg(5), FReg(4), FReg(3)) // 1/r2
        .fsqrt(FReg(6), FReg(5))
        .fadd(FReg(20), FReg(20), FReg(6)) // accumulate potential
        .addi(Reg::S2, Reg::S2, 1)
        .j("wn_j")
        .label("wn_j_done")
        .addi(Reg::S0, Reg::S0, 1)
        .bne(Reg::S0, Reg::S1, "wn_i")
        .halt();
}

/// `water_spatial`: the cell-list variant of `water_nsquared`.
///
/// First bins molecules into cells (integer index arithmetic + scattered
/// stores), then computes forces only within a cell — less FP per
/// molecule, more irregular memory traffic.
pub fn water_spatial(b: &mut ProgramBuilder, scale: Scale) {
    let n = 2 * water_n(scale);
    let cells: i64 = 16;
    let cell_cap: i64 = 32;
    lcg_fill(b, "ws_fill", ARR0, n, 31337);
    // Bin: cell = pos & 15; counts at ARR2, slots at ARR1.
    b.li(Reg::S0, 0)
        .li(Reg::S1, n)
        .label("ws_bin")
        .li(Reg::T0, ARR0)
        .slli(Reg::T1, Reg::S0, 3)
        .add(Reg::T1, Reg::T1, Reg::T0)
        .ld(Reg::T2, Reg::T1, 0)
        .andi(Reg::T3, Reg::T2, cells - 1) // cell index
        .slli(Reg::T4, Reg::T3, 3)
        .li(Reg::T0, ARR2)
        .add(Reg::T4, Reg::T4, Reg::T0)
        .ld(Reg::T5, Reg::T4, 0) // count
        .slti(Reg::A6, Reg::T5, cell_cap)
        .beq(Reg::A6, Reg::ZERO, "ws_bin_skip")
        // slot = ARR1 + (cell*cap + count)*8
        .mul(Reg::A6, Reg::T3, Reg::ZERO)
        .li(Reg::A6, cell_cap)
        .mul(Reg::A6, Reg::T3, Reg::A6)
        .add(Reg::A6, Reg::A6, Reg::T5)
        .slli(Reg::A6, Reg::A6, 3)
        .li(Reg::T0, ARR1)
        .add(Reg::A6, Reg::A6, Reg::T0)
        .sd(Reg::T2, Reg::A6, 0)
        .addi(Reg::T5, Reg::T5, 1)
        .sd(Reg::T5, Reg::T4, 0)
        .label("ws_bin_skip")
        .addi(Reg::S0, Reg::S0, 1)
        .bne(Reg::S0, Reg::S1, "ws_bin")
        // Per-cell pairwise forces (cap pairs by count^2, count <= 32).
        .li(Reg::S0, 0) // cell
        .label("ws_cell")
        .slli(Reg::T0, Reg::S0, 3)
        .li(Reg::T1, ARR2)
        .add(Reg::T0, Reg::T0, Reg::T1)
        .ld(Reg::S2, Reg::T0, 0) // count
        .li(Reg::S3, 0) // a
        .label("ws_a")
        .bge(Reg::S3, Reg::S2, "ws_a_done")
        .li(Reg::S4, 0) // b
        .label("ws_b")
        .bge(Reg::S4, Reg::S2, "ws_b_done")
        .li(Reg::T0, cell_cap)
        .mul(Reg::T1, Reg::S0, Reg::T0)
        .add(Reg::T2, Reg::T1, Reg::S3)
        .slli(Reg::T2, Reg::T2, 3)
        .li(Reg::T0, ARR1)
        .add(Reg::T2, Reg::T2, Reg::T0)
        .ld(Reg::T3, Reg::T2, 0)
        .andi(Reg::T3, Reg::T3, 255)
        .fcvt_if(FReg(0), Reg::T3)
        .fmul(FReg(1), FReg(0), FReg(0))
        .fadd(FReg(21), FReg(21), FReg(1))
        .addi(Reg::S4, Reg::S4, 1)
        .j("ws_b")
        .label("ws_b_done")
        .addi(Reg::S3, Reg::S3, 1)
        .j("ws_a")
        .label("ws_a_done")
        .addi(Reg::S0, Reg::S0, 1)
        .slti(Reg::T5, Reg::S0, cells)
        .bne(Reg::T5, Reg::ZERO, "ws_cell")
        .halt();
}

/// `ocean_cp` / `ocean_ncp`: red-black-style 5-point stencil relaxation.
///
/// `contiguous = false` (ncp) walks the grid column-major so successive
/// accesses stride by a full row — the non-contiguous-partitions variant's
/// worse locality, as in SPLASH-2x.
pub fn ocean(b: &mut ProgramBuilder, scale: Scale, non_contiguous: bool) {
    let (n, iters): (i64, i64) = match scale {
        Scale::Test => (16, 1),
        Scale::SimSmall => (40, 2),
        Scale::SimMedium => (80, 3),
    };
    lcg_fill(b, "oc_fill", ARR0, n * n, 55);
    b.li(Reg::S5, 0) // iter
        .li(Reg::S6, iters)
        .label("oc_iter")
        .li(Reg::S0, 1) // outer = 1..n-1
        .label("oc_outer")
        .li(Reg::S1, 1) // inner = 1..n-1
        .label("oc_inner");
    // idx = cp ? outer*n+inner : inner*n+outer
    if non_contiguous {
        b.li(Reg::T0, n)
            .mul(Reg::T1, Reg::S1, Reg::T0)
            .add(Reg::T1, Reg::T1, Reg::S0);
    } else {
        b.li(Reg::T0, n)
            .mul(Reg::T1, Reg::S0, Reg::T0)
            .add(Reg::T1, Reg::T1, Reg::S1);
    }
    b.slli(Reg::T1, Reg::T1, 3)
        .li(Reg::T2, ARR0)
        .add(Reg::T1, Reg::T1, Reg::T2)
        // 5-point neighbourhood
        .fld(FReg(0), Reg::T1, 0)
        .fld(FReg(1), Reg::T1, 8)
        .fld(FReg(2), Reg::T1, -8)
        .fld(FReg(3), Reg::T1, 8 * n)
        .fld(FReg(4), Reg::T1, -8 * n)
        .fadd(FReg(5), FReg(1), FReg(2))
        .fadd(FReg(6), FReg(3), FReg(4))
        .fadd(FReg(5), FReg(5), FReg(6))
        .li(Reg::T3, 4)
        .fcvt_if(FReg(7), Reg::T3)
        .fdiv(FReg(8), FReg(5), FReg(7))
        .fsd(FReg(8), Reg::T1, 0)
        .addi(Reg::S1, Reg::S1, 1)
        .slti(Reg::T5, Reg::S1, n - 1)
        .bne(Reg::T5, Reg::ZERO, "oc_inner")
        .addi(Reg::S0, Reg::S0, 1)
        .slti(Reg::T5, Reg::S0, n - 1)
        .bne(Reg::T5, Reg::ZERO, "oc_outer")
        .addi(Reg::S5, Reg::S5, 1)
        .bne(Reg::S5, Reg::S6, "oc_iter")
        .halt();
}

/// `fmm`: fast-multipole-like tree walks.
///
/// Descends an implicit binary tree with data-dependent left/right
/// decisions (hard-to-predict branches), evaluating a short FP
/// "multipole" chain at each node — a mix of irregular control flow and
/// dependent loads.
pub fn fmm(b: &mut ProgramBuilder, scale: Scale) {
    let walks = 48 * scale.factor() as i64;
    let depth: i64 = 10;
    let tree_nodes: i64 = 1 << (depth + 1);
    lcg_fill(b, "fm_fill", ARR0, tree_nodes, 616);
    b.li(Reg::S0, 0) // walk
        .li(Reg::S1, walks)
        .label("fm_walk")
        .li(Reg::S2, 1) // node index (1-based heap)
        .li(Reg::S3, 0) // level
        .label("fm_desc")
        .slli(Reg::T0, Reg::S2, 3)
        .li(Reg::T1, ARR0)
        .add(Reg::T0, Reg::T0, Reg::T1)
        .ld(Reg::T2, Reg::T0, 0) // node payload
        // multipole-ish FP evaluation
        .andi(Reg::T3, Reg::T2, 127)
        .addi(Reg::T3, Reg::T3, 1)
        .fcvt_if(FReg(0), Reg::T3)
        .fmul(FReg(1), FReg(0), FReg(0))
        .fdiv(FReg(2), FReg(0), FReg(1))
        .fadd(FReg(22), FReg(22), FReg(2))
        // descend: direction = payload xor walk parity (data dependent)
        .xor(Reg::T4, Reg::T2, Reg::S0)
        .andi(Reg::T4, Reg::T4, 1)
        .slli(Reg::S2, Reg::S2, 1)
        .add(Reg::S2, Reg::S2, Reg::T4)
        .addi(Reg::S3, Reg::S3, 1)
        .slti(Reg::T5, Reg::S3, depth)
        .bne(Reg::T5, Reg::ZERO, "fm_desc")
        .addi(Reg::S0, Reg::S0, 1)
        .bne(Reg::S0, Reg::S1, "fm_walk")
        .halt();
}
