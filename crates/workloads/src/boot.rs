//! The Boot-Exit workload: boot a (stylized) kernel in FS mode and exit
//! immediately, as the paper does to measure pure-boot simulation cost.

use crate::{Scale, DATA_BASE};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::Reg;

const FW_DELAY: i64 = 0x2000;
const FW_PUTCHAR: i64 = 0x2001;

fn print(b: &mut ProgramBuilder, msg: &str) {
    for ch in msg.bytes() {
        b.li(Reg::A7, FW_PUTCHAR).li(Reg::A0, ch as i64).ecall();
    }
}

/// Emits the boot sequence: console banner, BSS clearing, page-table
/// population, device probes (with firmware delays), a scheduler warm-up
/// loop, and immediate exit — the phases a real Linux boot spends its
/// time in, at vastly reduced scale.
pub fn boot_exit(b: &mut ProgramBuilder, scale: Scale) {
    let f = scale.factor() as i64;
    print(b, "Booting Linux...\n");

    // Phase 1: clear BSS (streaming stores).
    let bss_words = 1024 * f;
    b.li(Reg::T0, DATA_BASE)
        .li(Reg::T1, 0)
        .li(Reg::T2, bss_words)
        .label("bz_loop")
        .sd(Reg::ZERO, Reg::T0, 0)
        .addi(Reg::T0, Reg::T0, 8)
        .addi(Reg::T1, Reg::T1, 1)
        .bne(Reg::T1, Reg::T2, "bz_loop");

    // Phase 2: populate page tables (strided stores with computed PTEs).
    let ptes = 512 * f;
    b.li(Reg::T0, DATA_BASE + 0x20_0000)
        .li(Reg::T1, 0)
        .li(Reg::T2, ptes)
        .label("pt_loop")
        .slli(Reg::T3, Reg::T1, 12) // page frame
        .addi(Reg::T3, Reg::T3, 0x7) // V|R|W bits
        .sd(Reg::T3, Reg::T0, 0)
        .addi(Reg::T0, Reg::T0, 8)
        .addi(Reg::T1, Reg::T1, 1)
        .bne(Reg::T1, Reg::T2, "pt_loop");
    print(b, "mm: page tables up\n");

    // Phase 3: device probes — firmware delays model device wait time.
    for (i, dev) in ["virtio-blk", "virtio-net", "uart", "rtc"]
        .iter()
        .enumerate()
    {
        print(b, &format!("probe {dev}\n"));
        b.li(Reg::A7, FW_DELAY)
            .li(Reg::A0, 20 + 10 * i as i64) // microseconds
            .ecall();
    }

    // Phase 4: scheduler warm-up — short branchy loops ("calibrating").
    b.li(Reg::S0, 0)
        .li(Reg::S1, 400 * f)
        .li(Reg::S2, 0)
        .label("cal_loop")
        .andi(Reg::T0, Reg::S0, 7)
        .beq(Reg::T0, Reg::ZERO, "cal_skip")
        .addi(Reg::S2, Reg::S2, 3)
        .label("cal_skip")
        .addi(Reg::S0, Reg::S0, 1)
        .bne(Reg::S0, Reg::S1, "cal_loop");
    print(b, "init: exiting\n");

    // Boot-Exit: exit immediately after boot (the m5 exit pseudo-op).
    b.halt();
}
