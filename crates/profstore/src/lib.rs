//! `gem5prof-profstore` — the continuous profiling store.
//!
//! The paper's method is longitudinal: profile the simulator, land a
//! win, and keep profiling so the win cannot silently decay. This crate
//! is that loop as infrastructure. It persists per-window span profiles
//! and metrics snapshots into a bounded, checksummed on-disk ring of
//! `G5PS` segments (same durability discipline as the server's disk
//! warm tier: magic + version + FNV-1a checksum, temp-write + rename,
//! corrupt/stale segments counted and skipped), diffs any two snapshots
//! by per-call self time, and gates named hot spans against a blessed
//! baseline.
//!
//! ```text
//! capture ──► ProfStore::store ──► in-memory index (immediately queryable)
//!                   │
//!                   └─► writer thread (write-behind, off the request path)
//!                            └─► snap-<id>.g5ps  (ring-pruned at capacity)
//! ```
//!
//! Persistence is **write-behind**: `store` indexes the snapshot in
//! memory and returns its id at once; a dedicated writer thread encodes
//! and lands the segment afterwards, so a snapshot capture never puts
//! filesystem latency on a request path. [`ProfStore::flush`] drains
//! the writer (graceful shutdown calls it), and the
//! `profstore.disk_write` chaos point can tear a segment mid-write —
//! the torn file is counted `corrupt` and skipped at the next open,
//! costing history, never wrong diffs.

pub mod diff;
pub mod ring;

pub use diff::{
    collapsed, gate, DiffReport, DiffRow, GateCheck, GateResult, DEFAULT_HOT_SPANS,
    DEFAULT_MIN_DELTA_NS, DEFAULT_THRESHOLD_PCT,
};

use gem5prof_chaos as chaos;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// One aggregated span path inside a snapshot window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `;`-joined span path, outermost first.
    pub path: String,
    /// Completions of this path within the window.
    pub count: u64,
    /// Wall time including children, summed over the window.
    pub total_ns: u64,
    /// Wall time excluding children, summed over the window.
    pub self_ns: u64,
}

/// One flattened metric series value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Series name, labels inline (`name{k="v"}`).
    pub name: String,
    /// Value at capture time.
    pub value: f64,
}

/// One profiling window: the span table and metrics as they stood at
/// capture time. The capturer resets the span table afterwards, so
/// consecutive snapshots are disjoint windows.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotonically increasing id, unique within one store directory.
    pub id: u64,
    /// Capture wall-clock time, milliseconds since the Unix epoch.
    pub taken_unix_ms: u64,
    /// Caller-supplied label (`baseline`, `bench`, `soak`, …).
    pub label: String,
    /// Identity of the daemon that captured the window.
    pub node_id: String,
    /// The span table of the window.
    pub spans: Vec<SpanRow>,
    /// Flattened metric values at capture time.
    pub metrics: Vec<MetricRow>,
}

impl Snapshot {
    /// Total self time across the window's spans.
    pub fn total_self_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.self_ns).sum()
    }
}

/// Atomic counters for the store, shared with scrape-time collectors.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Snapshots captured (indexed in memory).
    pub snapshots: AtomicU64,
    /// Segments persisted to disk.
    pub writes: AtomicU64,
    /// Failed persists (the snapshot stays memory-only).
    pub write_errors: AtomicU64,
    /// Segments ignored at open for failing magic/length/checksum.
    pub corrupt: AtomicU64,
    /// Segments ignored at open for an older schema version.
    pub stale: AtomicU64,
}

/// Point-in-time store counters for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub snapshots: u64,
    pub writes: u64,
    pub write_errors: u64,
    pub corrupt: u64,
    pub stale: u64,
}

impl StoreStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            snapshots: self.snapshots.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }
}

/// Name of the blessed-baseline marker file inside the store directory.
const BLESSED_FILE: &str = "blessed";

enum Msg {
    Write(Arc<Snapshot>),
    Flush(mpsc::Sender<()>),
}

struct Inner {
    /// Snapshots by id, ascending — the queryable window history.
    index: BTreeMap<u64, Arc<Snapshot>>,
    /// Next id to assign.
    next_id: u64,
    /// Blessed baseline id, if one was marked (may point at an
    /// already-pruned snapshot; resolution checks the index).
    blessed: Option<u64>,
}

/// The continuous profiling store: a bounded ring of snapshot segments
/// under one directory, with an in-memory index for queries.
pub struct ProfStore {
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<Inner>,
    stats: Arc<StoreStats>,
    tx: mpsc::Sender<Msg>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("snap-{id:016x}.{}", ring::EXT))
}

/// Parses `snap-<16 hex>.g5ps` back to an id.
fn segment_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name
        .strip_prefix("snap-")?
        .strip_suffix(&format!(".{}", ring::EXT))?;
    u64::from_str_radix(hex, 16).ok()
}

/// Persists one segment; on an injected `profstore.disk_write` fault
/// the write is *torn* — half the segment lands at the final path — so
/// the recovery path (checksum rejection at the next open) is the one
/// that actually runs under chaos, not just a clean error return.
fn persist(dir: &Path, snap: &Snapshot, stats: &StoreStats) {
    let bytes = ring::encode(snap);
    let path = segment_path(dir, snap.id);
    let result = (|| -> io::Result<()> {
        if let Some(e) = chaos::io_error("profstore.disk_write") {
            let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
            return Err(e);
        }
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)
    })();
    match result {
        Ok(()) => {
            stats.writes.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            stats.write_errors.fetch_add(1, Ordering::Relaxed);
            if chaos::is_chaos_error(&e) {
                chaos::recovered("profstore.disk_write");
            }
        }
    }
}

/// Deletes the oldest segment files beyond `capacity` (by filename id).
fn prune_disk(dir: &Path, capacity: usize) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut ids: Vec<(u64, PathBuf)> = rd
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let p = e.path();
            segment_id(&p).map(|id| (id, p))
        })
        .collect();
    if ids.len() <= capacity {
        return;
    }
    ids.sort_by_key(|(id, _)| *id);
    let excess = ids.len() - capacity;
    for (_, path) in ids.into_iter().take(excess) {
        let _ = std::fs::remove_file(path);
    }
}

impl ProfStore {
    /// Opens (creating if needed) the store directory, decoding every
    /// valid segment into the index. Corrupt and stale segments are
    /// counted and skipped; their ids still advance `next_id` so a torn
    /// newest segment can never cause id reuse.
    pub fn open(dir: &Path, capacity: usize) -> io::Result<Arc<ProfStore>> {
        let capacity = capacity.max(1);
        std::fs::create_dir_all(dir)?;
        let stats = Arc::new(StoreStats::default());
        let mut index = BTreeMap::new();
        let mut max_id = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(file_id) = segment_id(&path) else {
                continue;
            };
            max_id = max_id.max(file_id);
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            match ring::decode(&bytes) {
                Ok(snap) => {
                    max_id = max_id.max(snap.id);
                    index.insert(snap.id, Arc::new(snap));
                }
                Err(ring::Reject::Corrupt) => {
                    stats.corrupt.fetch_add(1, Ordering::Relaxed);
                }
                Err(ring::Reject::Stale) => {
                    stats.stale.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let blessed = std::fs::read_to_string(dir.join(BLESSED_FILE))
            .ok()
            .and_then(|s| s.trim().parse().ok());

        let (tx, rx) = mpsc::channel::<Msg>();
        let writer_dir = dir.to_path_buf();
        let writer_stats = Arc::clone(&stats);
        let writer = std::thread::Builder::new()
            .name("profstore-writer".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Write(snap) => {
                            persist(&writer_dir, &snap, &writer_stats);
                            prune_disk(&writer_dir, capacity);
                        }
                        Msg::Flush(done) => {
                            let _ = done.send(());
                        }
                    }
                }
            })?;

        Ok(Arc::new(ProfStore {
            dir: dir.to_path_buf(),
            capacity,
            inner: Mutex::new(Inner {
                index,
                next_id: max_id + 1,
                blessed,
            }),
            stats,
            tx,
            writer: Mutex::new(Some(writer)),
        }))
    }

    /// Captures one window: assigns the next id, indexes the snapshot
    /// (immediately queryable), prunes the memory ring, and hands the
    /// segment to the writer thread. Returns the assigned id without
    /// waiting for the disk.
    pub fn store(
        &self,
        label: &str,
        node_id: &str,
        spans: Vec<SpanRow>,
        metrics: Vec<MetricRow>,
    ) -> u64 {
        let taken_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = inner.next_id;
        inner.next_id += 1;
        let snap = Arc::new(Snapshot {
            id,
            taken_unix_ms,
            label: label.to_string(),
            node_id: node_id.to_string(),
            spans,
            metrics,
        });
        inner.index.insert(id, Arc::clone(&snap));
        while inner.index.len() > self.capacity {
            let oldest = *inner.index.keys().next().expect("non-empty index");
            inner.index.remove(&oldest);
        }
        drop(inner);
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(Msg::Write(snap));
        id
    }

    /// Blocks until every snapshot handed to the writer so far has been
    /// persisted (or counted as a write error). Graceful shutdown calls
    /// this so a drained daemon leaves no segment behind in the queue.
    pub fn flush(&self) {
        let (done_tx, done_rx) = mpsc::channel();
        if self.tx.send(Msg::Flush(done_tx)).is_ok() {
            let _ = done_rx.recv();
        }
    }

    /// Marks snapshot `id` as the blessed baseline, persisting the
    /// marker (temp-write + rename) so the baseline survives restarts.
    /// Fails if the id is not in the index.
    pub fn bless(&self, id: u64) -> io::Result<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.index.contains_key(&id) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("unknown snapshot `{id}`"),
            ));
        }
        let path = self.dir.join(BLESSED_FILE);
        let tmp = self
            .dir
            .join(format!("{BLESSED_FILE}.tmp{}", std::process::id()));
        std::fs::write(&tmp, id.to_string())?;
        std::fs::rename(&tmp, &path)?;
        inner.blessed = Some(id);
        Ok(id)
    }

    /// The blessed baseline id, if one is marked *and* still indexed.
    pub fn blessed(&self) -> Option<u64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.blessed.filter(|id| inner.index.contains_key(id))
    }

    /// Resolves a snapshot selector: `latest`, `blessed`, or a decimal
    /// id. Returns `None` when nothing matches (empty store, no blessed
    /// marker, pruned or unknown id).
    pub fn resolve(&self, selector: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match selector {
            "latest" => inner.index.keys().next_back().copied(),
            "blessed" => inner.blessed.filter(|id| inner.index.contains_key(id)),
            digits => digits
                .parse()
                .ok()
                .filter(|id| inner.index.contains_key(id)),
        }
    }

    /// The snapshot with the given id, if still in the ring.
    pub fn get(&self, id: u64) -> Option<Arc<Snapshot>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .index
            .get(&id)
            .cloned()
    }

    /// Every indexed snapshot, ascending by id.
    pub fn history(&self) -> Vec<Arc<Snapshot>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .index
            .values()
            .cloned()
            .collect()
    }

    /// Indexed snapshot count.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .index
            .len()
    }

    /// True when no snapshot is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (snapshots kept, memory and disk).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Store counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The live counter set, for scrape-time metric collectors. The
    /// `Arc` keeps counts visible after the store itself is dropped,
    /// so summed series stay monotone.
    pub fn stats_handle(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }
}

impl Drop for ProfStore {
    fn drop(&mut self) {
        // Closing the channel ends the writer loop; join so every
        // queued segment lands before the store is gone.
        let (dead_tx, _) = mpsc::channel();
        let tx = std::mem::replace(&mut self.tx, dead_tx);
        drop(tx);
        if let Some(handle) = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Chaos arming is process-global; serialize tests that persist.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gem5prof-profstore-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rows(n: u64) -> Vec<SpanRow> {
        vec![SpanRow {
            path: "profile;dedup;guest_sim".into(),
            count: n,
            total_ns: n * 1_000,
            self_ns: n * 900,
        }]
    }

    #[test]
    fn store_flush_reopen_round_trips() {
        let _g = serial();
        let dir = tmpdir("reopen");
        {
            let store = ProfStore::open(&dir, 8).unwrap();
            let id1 = store.store("baseline", "n1", rows(2), Vec::new());
            let id2 = store.store(
                "second",
                "n1",
                rows(3),
                vec![MetricRow {
                    name: "x_total".into(),
                    value: 5.0,
                }],
            );
            assert_eq!((id1, id2), (1, 2));
            store.bless(id1).unwrap();
            store.flush();
            assert_eq!(store.stats().writes, 2);
        }
        let store = ProfStore::open(&dir, 8).unwrap();
        assert_eq!(store.len(), 2, "segments must survive the restart");
        assert_eq!(store.resolve("latest"), Some(2));
        assert_eq!(store.resolve("blessed"), Some(1));
        assert_eq!(store.resolve("2"), Some(2));
        assert_eq!(store.resolve("99"), None);
        assert_eq!(store.get(2).unwrap().metrics[0].value, 5.0);
        assert_eq!(store.get(1).unwrap().label, "baseline");
        // Ids keep advancing past what the directory already holds.
        assert_eq!(store.store("third", "n2", rows(1), Vec::new()), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_is_bounded_in_memory_and_on_disk() {
        let _g = serial();
        let dir = tmpdir("ring");
        let store = ProfStore::open(&dir, 3).unwrap();
        for i in 0..6 {
            store.store(&format!("w{i}"), "n", rows(i + 1), Vec::new());
        }
        store.flush();
        assert_eq!(store.len(), 3);
        assert_eq!(store.resolve("latest"), Some(6));
        assert_eq!(store.get(1), None, "oldest snapshots pruned");
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| segment_id(&e.unwrap().path()))
            .count();
        assert_eq!(on_disk, 3, "disk ring pruned to capacity");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_stale_segments_are_counted_and_skipped() {
        let _g = serial();
        let dir = tmpdir("corrupt");
        {
            let store = ProfStore::open(&dir, 8).unwrap();
            for i in 0..3 {
                store.store(&format!("s{i}"), "n", rows(1), Vec::new());
            }
            store.flush();
        }
        // Tear segment 2 and downgrade segment 3's version byte.
        let p2 = segment_path(&dir, 2);
        let bytes = std::fs::read(&p2).unwrap();
        std::fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        let p3 = segment_path(&dir, 3);
        let mut old = std::fs::read(&p3).unwrap();
        old[4] = ring::SEGMENT_FORMAT_VERSION.wrapping_add(1);
        std::fs::write(&p3, old).unwrap();

        let store = ProfStore::open(&dir, 8).unwrap();
        assert_eq!(store.len(), 1, "only the intact segment survives");
        assert_eq!(store.stats().corrupt, 1);
        assert_eq!(store.stats().stale, 1);
        // Damaged ids still advance the counter: no id reuse.
        assert_eq!(store.store("fresh", "n", rows(1), Vec::new()), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_tears_writes_and_recovery_skips_them() {
        let _g = serial();
        let dir = tmpdir("chaos");
        {
            let store = ProfStore::open(&dir, 8).unwrap();
            store.store("intact", "n", rows(1), Vec::new());
            store.flush();
            chaos::arm(
                chaos::Plan::new(42)
                    .with_prob(0.0)
                    .with_point("profstore.disk_write", 1.0),
            );
            store.store("torn", "n", rows(2), Vec::new());
            store.flush();
            chaos::disarm();
            let stats = store.stats();
            assert_eq!(stats.writes, 1);
            assert_eq!(stats.write_errors, 1, "injected tear must be counted");
            // The torn snapshot is still queryable from memory.
            assert_eq!(store.len(), 2);
        }
        // …but after a restart only the intact segment loads, and the
        // torn one is visible as `corrupt`, not silently absent.
        let store = ProfStore::open(&dir, 8).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1).unwrap().label, "intact");
        assert_eq!(store.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bless_rejects_unknown_ids() {
        let _g = serial();
        let dir = tmpdir("bless");
        let store = ProfStore::open(&dir, 4).unwrap();
        assert!(store.bless(1).is_err(), "nothing to bless yet");
        let id = store.store("only", "n", rows(1), Vec::new());
        assert_eq!(store.bless(id).unwrap(), id);
        assert_eq!(store.blessed(), Some(id));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
