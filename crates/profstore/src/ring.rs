//! The on-disk segment format: one self-describing, checksummed file
//! per snapshot, same durability discipline as the server's disk warm
//! tier (`G5PC` entries).
//!
//! ```text
//! magic "G5PS" | version u8 | payload_len u32 LE | fnv1a64(payload) u64 LE | payload
//! ```
//!
//! The payload is a flat little-endian encoding of one [`Snapshot`]:
//!
//! ```text
//! id u64 | taken_unix_ms u64 | label str | node_id str |
//! span_count u32 | (path str, count u64, total_ns u64, self_ns u64)* |
//! metric_count u32 | (name str, value f64-bits u64)*
//! ```
//!
//! where `str` is `len u32 LE | utf8 bytes`. The version byte is the
//! **segment schema version**: any layout change bumps
//! [`SEGMENT_FORMAT_VERSION`] and older segments are ignored (counted
//! `stale`) rather than misread. Truncated or bit-flipped segments fail
//! the checksum and are ignored as `corrupt`. Either way the snapshot
//! is simply absent from the index — a damaged ring can cost history,
//! never wrong diffs.

use crate::{MetricRow, Snapshot, SpanRow};

/// Schema version of the segment layout; bump on any payload change.
pub const SEGMENT_FORMAT_VERSION: u8 = 1;

/// File magic: a stray file in the profile dir is never parsed.
const MAGIC: &[u8; 4] = b"G5PS";

/// Extension for snapshot segment files.
pub const EXT: &str = "g5ps";

/// Header bytes before the payload: magic + version + len + checksum.
const HEADER: usize = 4 + 1 + 4 + 8;

/// FNV-1a over the payload, the same hash the warm tier uses.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a segment was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// Wrong magic, impossible lengths, failed checksum, or a payload
    /// that does not decode.
    Corrupt,
    /// Valid layout and checksum, but an older schema version.
    Stale,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes one snapshot to the segment layout.
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + 48 * snap.spans.len() + 24 * snap.metrics.len());
    payload.extend_from_slice(&snap.id.to_le_bytes());
    payload.extend_from_slice(&snap.taken_unix_ms.to_le_bytes());
    put_str(&mut payload, &snap.label);
    put_str(&mut payload, &snap.node_id);
    payload.extend_from_slice(&(snap.spans.len() as u32).to_le_bytes());
    for s in &snap.spans {
        put_str(&mut payload, &s.path);
        payload.extend_from_slice(&s.count.to_le_bytes());
        payload.extend_from_slice(&s.total_ns.to_le_bytes());
        payload.extend_from_slice(&s.self_ns.to_le_bytes());
    }
    payload.extend_from_slice(&(snap.metrics.len() as u32).to_le_bytes());
    for m in &snap.metrics {
        put_str(&mut payload, &m.name);
        payload.extend_from_slice(&m.value.to_bits().to_le_bytes());
    }

    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(SEGMENT_FORMAT_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A little-endian cursor over the payload; every read is bounds-checked
/// so a short payload is a decode error, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], Reject> {
        let end = self.pos.checked_add(n).ok_or(Reject::Corrupt)?;
        if end > self.bytes.len() {
            return Err(Reject::Corrupt);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, Reject> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, Reject> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, Reject> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Reject::Corrupt)
    }
}

/// Parses a segment file back into a snapshot.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, Reject> {
    if bytes.len() < HEADER || &bytes[0..4] != MAGIC {
        return Err(Reject::Corrupt);
    }
    let version = bytes[4];
    let payload_len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
    // Validate layout + checksum before the version, so a truncated
    // segment of any version is corrupt, not stale.
    if bytes.len() != HEADER + payload_len {
        return Err(Reject::Corrupt);
    }
    let payload = &bytes[HEADER..];
    if fnv1a(payload) != checksum {
        return Err(Reject::Corrupt);
    }
    if version != SEGMENT_FORMAT_VERSION {
        return Err(Reject::Stale);
    }

    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let id = c.u64()?;
    let taken_unix_ms = c.u64()?;
    let label = c.str()?;
    let node_id = c.str()?;
    let span_count = c.u32()? as usize;
    let mut spans = Vec::with_capacity(span_count.min(1 << 16));
    for _ in 0..span_count {
        spans.push(SpanRow {
            path: c.str()?,
            count: c.u64()?,
            total_ns: c.u64()?,
            self_ns: c.u64()?,
        });
    }
    let metric_count = c.u32()? as usize;
    let mut metrics = Vec::with_capacity(metric_count.min(1 << 16));
    for _ in 0..metric_count {
        metrics.push(MetricRow {
            name: c.str()?,
            value: f64::from_bits(c.u64()?),
        });
    }
    if c.pos != payload.len() {
        // Trailing garbage that still checksummed means the writer and
        // reader disagree about the layout: treat as corrupt.
        return Err(Reject::Corrupt);
    }
    Ok(Snapshot {
        id,
        taken_unix_ms,
        label,
        node_id,
        spans,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            id: 7,
            taken_unix_ms: 1_700_000_000_123,
            label: "baseline".into(),
            node_id: "node-1".into(),
            spans: vec![
                SpanRow {
                    path: "http_request".into(),
                    count: 10,
                    total_ns: 5_000,
                    self_ns: 4_000,
                },
                SpanRow {
                    path: "serve_compute;profile;dedup;guest_sim".into(),
                    count: 2,
                    total_ns: 9_000_000,
                    self_ns: 8_500_000,
                },
            ],
            metrics: vec![
                MetricRow {
                    name: "gem5prof_served_requests_total".into(),
                    value: 12.0,
                },
                MetricRow {
                    name: "served_tier_lookup_seconds_sum{tier=\"mem\"}".into(),
                    value: 0.25,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn decode_rejects_corruption_and_stale_versions() {
        let bytes = encode(&sample());
        // Truncation anywhere — header or payload — is corrupt.
        assert_eq!(decode(&bytes[..bytes.len() - 1]), Err(Reject::Corrupt));
        assert_eq!(decode(&bytes[..3]), Err(Reject::Corrupt));
        assert_eq!(decode(&[]), Err(Reject::Corrupt));
        // Wrong magic is corrupt.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic), Err(Reject::Corrupt));
        // A flipped payload byte fails the checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert_eq!(decode(&flipped), Err(Reject::Corrupt));
        // A version bump makes the segment stale, not corrupt (the
        // version byte sits outside the checksum).
        let mut old = bytes.clone();
        old[4] = SEGMENT_FORMAT_VERSION.wrapping_add(1);
        assert_eq!(decode(&old), Err(Reject::Stale));
    }

    #[test]
    fn trailing_bytes_inside_a_valid_checksum_are_corrupt() {
        let snap = sample();
        let mut payload_plus = encode(&snap);
        // Rebuild the segment with one extra payload byte and a fixed-up
        // header: checksum passes, cursor position does not.
        let payload_len = payload_plus.len() - 17;
        let mut payload = payload_plus.split_off(17);
        payload.push(0xAB);
        let mut out = Vec::new();
        out.extend_from_slice(b"G5PS");
        out.push(SEGMENT_FORMAT_VERSION);
        out.extend_from_slice(&((payload_len + 1) as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        assert_eq!(decode(&out), Err(Reject::Corrupt));
    }
}
