//! Self-time diffing between two snapshots, and the hot-span
//! regression gate built on top of it.
//!
//! Snapshots are *windows*: the server resets the span table at every
//! capture, so two snapshots taken around identical workloads compare
//! cleanly no matter how long the daemon has been running. Because the
//! two windows may still contain different call counts (a longer burst,
//! a retried request), every comparison is made on **per-call self
//! time** (`self_ns / count`), which is invariant under window length.
//!
//! All divisions are guarded: a path with `count == 0` contributes a
//! per-call time of zero, a path missing from the baseline has no
//! defined regression (`delta_pct == None`, rendered as JSON `null`),
//! and an empty snapshot diffs to an empty table — no `NaN`, no panic,
//! whatever the histograms and span tables held.

use crate::Snapshot;
use std::collections::BTreeMap;

/// Hot spans the regression gate watches by default: the event-queue
/// drain and guest simulation loops the paper's speedups protect, plus
/// the server's per-request compute span. Matching is by path *leaf*,
/// so `serve_compute;profile;dedup;guest_sim` counts toward `guest_sim`.
pub const DEFAULT_HOT_SPANS: &[&str] = &["eventq_drain", "guest_sim", "serve_compute"];

/// Default regression threshold: a watched span failing with more than
/// this much per-call self-time growth fails the gate.
pub const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// Default absolute floor: a watched span must also grow by at least
/// this many nanoseconds per call to regress. Hot spans whose *self*
/// time is tiny (their children hold the real time — `guest_sim` self
/// runs sub-microsecond while `eventq_drain` below it holds
/// milliseconds) would otherwise trip the relative threshold on
/// scheduler noise alone; a regression smaller than 100 µs per call is
/// not actionable at this system's scale.
pub const DEFAULT_MIN_DELTA_NS: f64 = 100_000.0;

/// One span path's before/after self-time comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// `;`-joined span path.
    pub path: String,
    /// Completions in the baseline window (0 when absent).
    pub a_count: u64,
    /// Baseline self time, summed over the window.
    pub a_self_ns: u64,
    /// Completions in the compared window.
    pub b_count: u64,
    /// Compared self time.
    pub b_self_ns: u64,
    /// `a_self_ns / a_count`, 0.0 when the window has no completions.
    pub a_self_per_call_ns: f64,
    /// `b_self_ns / b_count`, 0.0 when the window has no completions.
    pub b_self_per_call_ns: f64,
    /// Per-call self-time change in percent, positive = regression.
    /// `None` when the baseline per-call time is zero (new or absent
    /// path): there is nothing to regress against.
    pub delta_pct: Option<f64>,
}

/// The per-span delta table between two snapshots, worst regression
/// first.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Baseline snapshot id.
    pub a_id: u64,
    /// Compared snapshot id.
    pub b_id: u64,
    /// One row per span path present in either window, sorted by
    /// `delta_pct` descending; rows with no defined delta sort last,
    /// by compared self time descending.
    pub rows: Vec<DiffRow>,
}

fn per_call(self_ns: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        self_ns as f64 / count as f64
    }
}

/// Per-call growth in percent; `None` when there is no baseline.
fn delta_pct(a: f64, b: f64) -> Option<f64> {
    if a > 0.0 {
        Some(100.0 * (b - a) / a)
    } else {
        None
    }
}

/// Builds the per-span delta table between baseline `a` and compared
/// snapshot `b`.
pub fn diff(a: &Snapshot, b: &Snapshot) -> DiffReport {
    let mut paths: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for s in &a.spans {
        let e = paths.entry(s.path.as_str()).or_default();
        e.0 += s.count;
        e.1 += s.self_ns;
    }
    for s in &b.spans {
        let e = paths.entry(s.path.as_str()).or_default();
        e.2 += s.count;
        e.3 += s.self_ns;
    }
    let mut rows: Vec<DiffRow> = paths
        .into_iter()
        .map(|(path, (a_count, a_self_ns, b_count, b_self_ns))| {
            let a_per = per_call(a_self_ns, a_count);
            let b_per = per_call(b_self_ns, b_count);
            DiffRow {
                path: path.to_string(),
                a_count,
                a_self_ns,
                b_count,
                b_self_ns,
                a_self_per_call_ns: a_per,
                b_self_per_call_ns: b_per,
                delta_pct: delta_pct(a_per, b_per),
            }
        })
        .collect();
    rows.sort_by(|x, y| match (x.delta_pct, y.delta_pct) {
        (Some(dx), Some(dy)) => dy.partial_cmp(&dx).unwrap_or(std::cmp::Ordering::Equal),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => y.b_self_ns.cmp(&x.b_self_ns),
    });
    DiffReport {
        a_id: a.id,
        b_id: b.id,
        rows,
    }
}

/// Collapsed-stack delta export: one line per path, hottest compared
/// self time first — `path <baseline-self-µs> <compared-self-µs>`, the
/// two-column "difffolded" format flamegraph differential tooling
/// consumes.
pub fn collapsed(report: &DiffReport, top: usize) -> String {
    let mut rows: Vec<&DiffRow> = report.rows.iter().collect();
    rows.sort_by(|x, y| {
        y.b_self_ns
            .cmp(&x.b_self_ns)
            .then_with(|| x.path.cmp(&y.path))
    });
    let mut out = String::new();
    for r in rows.into_iter().take(top) {
        out.push_str(&r.path);
        out.push(' ');
        out.push_str(&(r.a_self_ns / 1_000).to_string());
        out.push(' ');
        out.push_str(&(r.b_self_ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// One watched hot span's verdict. Per-call times aggregate every path
/// whose leaf equals the watched name, so the check is insensitive to
/// where in the tree the span ran.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// The watched span name (path leaf).
    pub span: String,
    /// Aggregated baseline per-call self time (0.0 when never seen).
    pub a_self_per_call_ns: f64,
    /// Aggregated compared per-call self time.
    pub b_self_per_call_ns: f64,
    /// Per-call growth in percent; `None` without a baseline.
    pub delta_pct: Option<f64>,
    /// Whether this span regressed beyond the threshold.
    pub regressed: bool,
}

/// The regression-gate verdict for one diff.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// The relative threshold the checks ran against.
    pub threshold_pct: f64,
    /// The absolute per-call floor the checks ran against.
    pub min_delta_ns: f64,
    /// One verdict per watched span, in the order given.
    pub checks: Vec<GateCheck>,
    /// True when no watched span regressed beyond the threshold.
    pub pass: bool,
}

fn leaf(path: &str) -> &str {
    path.rsplit(';').next().unwrap_or(path)
}

/// Sums (count, self_ns) over every path whose leaf is `span`.
fn aggregate(snap: &Snapshot, span: &str) -> (u64, u64) {
    snap.spans
        .iter()
        .filter(|s| leaf(&s.path) == span)
        .fold((0, 0), |(c, n), s| (c + s.count, n + s.self_ns))
}

/// Runs the hot-span regression gate: for each watched span, the
/// aggregated per-call self time in `b` must not exceed the one in `a`
/// by more than `threshold_pct` percent AND `min_delta_ns` nanoseconds
/// — both conditions, so sub-floor noise on a tiny span never fails the
/// gate no matter how large it is relatively. Spans with no baseline
/// (never seen, or zero self time in `a`) cannot regress — a gate
/// against an empty baseline always passes, by design: the bless flow
/// exists precisely to establish a meaningful one.
pub fn gate(
    a: &Snapshot,
    b: &Snapshot,
    spans: &[String],
    threshold_pct: f64,
    min_delta_ns: f64,
) -> GateResult {
    let checks: Vec<GateCheck> = spans
        .iter()
        .map(|span| {
            let (a_count, a_self) = aggregate(a, span);
            let (b_count, b_self) = aggregate(b, span);
            let a_per = per_call(a_self, a_count);
            let b_per = per_call(b_self, b_count);
            let delta = delta_pct(a_per, b_per);
            GateCheck {
                span: span.clone(),
                a_self_per_call_ns: a_per,
                b_self_per_call_ns: b_per,
                delta_pct: delta,
                regressed: delta.is_some_and(|d| d > threshold_pct)
                    && (b_per - a_per) > min_delta_ns,
            }
        })
        .collect();
    let pass = checks.iter().all(|c| !c.regressed);
    GateResult {
        threshold_pct,
        min_delta_ns,
        checks,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRow;

    fn snap(id: u64, spans: &[(&str, u64, u64)]) -> Snapshot {
        Snapshot {
            id,
            taken_unix_ms: 0,
            label: format!("snap{id}"),
            node_id: "test".into(),
            spans: spans
                .iter()
                .map(|&(path, count, self_ns)| SpanRow {
                    path: path.into(),
                    count,
                    total_ns: self_ns,
                    self_ns,
                })
                .collect(),
            metrics: Vec::new(),
        }
    }

    #[test]
    fn diff_is_per_call_and_window_length_invariant() {
        // Same per-call cost, 3x the calls: no regression.
        let a = snap(1, &[("x;guest_sim", 2, 2_000)]);
        let b = snap(2, &[("x;guest_sim", 6, 6_000)]);
        let report = diff(&a, &b);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.a_self_per_call_ns, 1_000.0);
        assert_eq!(row.b_self_per_call_ns, 1_000.0);
        assert_eq!(row.delta_pct, Some(0.0));
    }

    #[test]
    fn diff_guards_every_division() {
        // Zero counts, zero self times, missing paths on both sides:
        // nothing may NaN or panic.
        let a = snap(1, &[("gone", 1, 500), ("zeroed", 0, 0), ("warm", 4, 400)]);
        let b = snap(2, &[("new", 3, 900), ("zeroed", 0, 0), ("warm", 4, 800)]);
        let report = diff(&a, &b);
        for row in &report.rows {
            assert!(row.a_self_per_call_ns.is_finite(), "{row:?}");
            assert!(row.b_self_per_call_ns.is_finite(), "{row:?}");
            if let Some(d) = row.delta_pct {
                assert!(d.is_finite(), "{row:?}");
            }
        }
        let by_path = |p: &str| report.rows.iter().find(|r| r.path == p).unwrap();
        assert_eq!(by_path("new").delta_pct, None, "no baseline, no delta");
        assert_eq!(by_path("zeroed").delta_pct, None);
        assert_eq!(by_path("warm").delta_pct, Some(100.0));
        // The worst defined regression sorts first; undefined rows last.
        assert_eq!(report.rows[0].path, "warm");
        assert!(report.rows.last().unwrap().delta_pct.is_none());
        // Empty-vs-empty diffs to an empty table.
        assert!(diff(&snap(3, &[]), &snap(4, &[])).rows.is_empty());
    }

    #[test]
    fn gate_matches_leaves_and_aggregates_across_paths() {
        let a = snap(
            1,
            &[
                ("serve_compute;profile;dedup;guest_sim", 2, 2_000_000),
                ("profile;ferret;guest_sim", 2, 2_000_000),
                ("eventq_drain", 10, 1_000_000),
            ],
        );
        // guest_sim: aggregated per-call 1ms -> 2ms (+100%, +1ms —
        // over both the threshold and the absolute floor);
        // eventq_drain unchanged per call.
        let b = snap(
            2,
            &[
                ("serve_compute;profile;dedup;guest_sim", 2, 6_000_000),
                ("profile;ferret;guest_sim", 2, 2_000_000),
                ("eventq_drain", 20, 2_000_000),
            ],
        );
        let spans: Vec<String> = DEFAULT_HOT_SPANS.iter().map(|s| s.to_string()).collect();
        let result = gate(&a, &b, &spans, DEFAULT_THRESHOLD_PCT, DEFAULT_MIN_DELTA_NS);
        assert!(!result.pass);
        let check = |name: &str| result.checks.iter().find(|c| c.span == name).unwrap();
        assert!(check("guest_sim").regressed);
        assert_eq!(check("guest_sim").delta_pct, Some(100.0));
        assert!(!check("eventq_drain").regressed);
        assert_eq!(check("eventq_drain").delta_pct, Some(0.0));
        // serve_compute appears in neither window: no baseline, passes.
        assert!(!check("serve_compute").regressed);
        assert_eq!(check("serve_compute").delta_pct, None);

        // Identical windows pass at any threshold.
        assert!(gate(&a, &a, &spans, 0.0, 0.0).pass);
        // An empty baseline cannot fail the gate.
        assert!(gate(&snap(9, &[]), &b, &spans, DEFAULT_THRESHOLD_PCT, 0.0).pass);
    }

    #[test]
    fn gate_floor_ignores_relative_noise_on_tiny_spans() {
        // guest_sim self doubles (+100%) but only by 800 ns per call —
        // far under the 100 µs floor. This is exactly the scheduler
        // noise a thin parent span shows between identical runs; the
        // gate must not flake on it.
        let a = snap(1, &[("x;guest_sim", 1, 800)]);
        let b = snap(2, &[("x;guest_sim", 1, 1_600)]);
        let spans: Vec<String> = DEFAULT_HOT_SPANS.iter().map(|s| s.to_string()).collect();
        let result = gate(&a, &b, &spans, DEFAULT_THRESHOLD_PCT, DEFAULT_MIN_DELTA_NS);
        assert!(result.pass, "{result:?}");
        // With the floor disabled the same growth fails: the floor, not
        // the threshold, is what saved it.
        assert!(!gate(&a, &b, &spans, DEFAULT_THRESHOLD_PCT, 0.0).pass);
    }

    #[test]
    fn collapsed_is_two_column_difffolded() {
        let a = snap(1, &[("x;y", 1, 5_000), ("x", 1, 2_000)]);
        let b = snap(2, &[("x;y", 1, 9_000), ("x", 1, 1_000)]);
        let text = collapsed(&diff(&a, &b), 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["x;y 5 9", "x 2 1"]);
        assert_eq!(collapsed(&diff(&a, &b), 1).lines().count(), 1);
    }
}
