//! `gem5prof-chaos` — a deterministic, seeded fault-injection harness.
//!
//! Production code declares **named fault points** (`"http.read"`,
//! `"engine.job_panic"`, …) at the places where the serving and runner
//! layers can fail. When the harness is *disarmed* (the default) every
//! hook is a single relaxed atomic load — production builds pay nothing.
//! When *armed* from a seeded [`Plan`], each visit to a point draws a
//! deterministic decision and, on injection, the call site turns it into
//! the matching failure: an I/O error, a short read, a torn write, an
//! artificial delay, a panicking job, or a poisoned result.
//!
//! # Determinism contract
//!
//! The decision for the *k*-th visit of point *p* is a pure function of
//! `(plan.seed, p, k)` — no wall clock, no global RNG. Replaying the
//! same request sequence against the same seed reproduces the same
//! fault schedule, which is what makes a failing `soak` seed a one-line
//! repro instead of a flake.
//!
//! # Accounting
//!
//! Every injected fault increments `chaos_injected_total{point=…}` and
//! every fault the system survived (connection closed cleanly, panic
//! caught, poisoned entry discarded, delay absorbed) increments
//! `chaos_recovered_total{point=…}` in the `gem5prof-obs` registry, so
//! `/metrics` shows the harness at work. [`report`] returns the same
//! numbers per point since the last [`arm`].
//!
//! # Arming
//!
//! Programmatic: `chaos::arm(Plan::new(42).with_prob(0.1))`. From the
//! environment (the served daemon does this at startup):
//!
//! ```text
//! GEM5PROF_CHAOS="seed=42"                       # all points at the default probability
//! GEM5PROF_CHAOS="7"                             # bare integer = seed
//! GEM5PROF_CHAOS="seed=7,prob=0.2,engine.job_panic=1.0,http.read=0"
//! ```

use std::any::Any;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fast path: is the harness armed at all?
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-lifetime totals (monotone across re-arms).
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);
static RECOVERED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// A seeded scenario: which points fire, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Seed for the per-point decision stream.
    pub seed: u64,
    /// Injection probability for points without an override.
    pub default_prob: f64,
    /// Per-point probability overrides (`0.0` disables a point).
    overrides: Vec<(String, f64)>,
}

impl Plan {
    /// A plan firing every point at the default 5% probability.
    pub fn new(seed: u64) -> Plan {
        Plan {
            seed,
            default_prob: 0.05,
            overrides: Vec::new(),
        }
    }

    /// Sets the default injection probability (clamped to `0.0..=1.0`).
    pub fn with_prob(mut self, p: f64) -> Plan {
        self.default_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Overrides one point's probability (clamped to `0.0..=1.0`).
    pub fn with_point(mut self, point: &str, p: f64) -> Plan {
        self.overrides.push((point.to_string(), p.clamp(0.0, 1.0)));
        self
    }

    /// Probability for a point under this plan.
    pub fn prob_for(&self, point: &str) -> f64 {
        self.overrides
            .iter()
            .rev()
            .find(|(name, _)| name == point)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_prob)
    }

    /// Parses the `GEM5PROF_CHAOS` format: either a bare seed (`"42"`)
    /// or comma-separated `k=v` pairs where `k` is `seed`, `prob`, or a
    /// fault-point name (anything containing a `.`).
    pub fn parse(spec: &str) -> Result<Plan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty chaos spec".into());
        }
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(Plan::new(seed));
        }
        let mut plan = Plan::new(0);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos spec item `{part}` (want k=v)"))?;
            match k {
                "seed" => {
                    plan.seed = v
                        .parse()
                        .map_err(|_| format!("bad chaos seed `{v}` (want u64)"))?;
                }
                "prob" => {
                    let p: f64 = v
                        .parse()
                        .map_err(|_| format!("bad chaos prob `{v}` (want 0.0..=1.0)"))?;
                    plan = plan.with_prob(p);
                }
                point if point.contains('.') => {
                    let p: f64 = v
                        .parse()
                        .map_err(|_| format!("bad probability `{v}` for point `{point}`"))?;
                    plan = plan.with_point(point, p);
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Per-point state since the last [`arm`].
struct PointState {
    hits: u64,
    injected: u64,
    recovered: u64,
    prob: f64,
    obs_injected: Arc<gem5prof_obs::Counter>,
    obs_recovered: Arc<gem5prof_obs::Counter>,
}

struct State {
    plan: Plan,
    points: HashMap<&'static str, PointState>,
}

fn state() -> &'static Mutex<Option<State>> {
    static STATE: Mutex<Option<State>> = Mutex::new(None);
    &STATE
}

/// Arms the harness with `plan`, resetting every point's decision
/// stream to visit zero (so the same plan replays the same schedule).
pub fn arm(plan: Plan) {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(State {
        plan,
        points: HashMap::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarms the harness. Per-point accounting from the last armed window
/// stays readable via [`report`].
pub fn disarm() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the harness is currently armed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms from the `GEM5PROF_CHAOS` environment variable, if set.
/// Returns the parsed plan on success; a malformed spec is reported on
/// stderr and ignored (the harness stays disarmed — a typo must not
/// silently run chaos against a production daemon).
pub fn arm_from_env() -> Option<Plan> {
    let spec = std::env::var("GEM5PROF_CHAOS").ok()?;
    match Plan::parse(&spec) {
        Ok(plan) => {
            arm(plan.clone());
            Some(plan)
        }
        Err(e) => {
            eprintln!("warning: ignoring malformed GEM5PROF_CHAOS `{spec}`: {e}");
            None
        }
    }
}

/// SplitMix64: the per-visit decision hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the point name, so each point gets its own stream.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Visits a fault point and returns the decision word if the plan
/// injects a fault at this visit (`None` otherwise, including whenever
/// the harness is disarmed).
fn decide(point: &'static str) -> Option<u64> {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    let st = guard.as_mut()?;
    let seed = st.plan.seed;
    let prob = st.plan.prob_for(point);
    let ps = st.points.entry(point).or_insert_with(|| {
        let r = gem5prof_obs::global();
        PointState {
            hits: 0,
            injected: 0,
            recovered: 0,
            prob,
            obs_injected: r.counter_with(
                "chaos_injected_total",
                "faults injected by the chaos harness, by fault point",
                &[("point", point)],
            ),
            obs_recovered: r.counter_with(
                "chaos_recovered_total",
                "injected faults the system survived, by fault point",
                &[("point", point)],
            ),
        }
    });
    let k = ps.hits;
    ps.hits += 1;
    let word = splitmix64(seed ^ fnv1a(point) ^ k.wrapping_mul(0x2545_F491_4F6C_DD1D));
    // Top 53 bits → uniform in [0, 1).
    let draw = (word >> 11) as f64 / (1u64 << 53) as f64;
    if draw < ps.prob {
        ps.injected += 1;
        ps.obs_injected.inc();
        INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
        Some(word)
    } else {
        None
    }
}

/// Should a fault fire at `point` on this visit? Zero-cost when
/// disarmed. The caller turns `true` into its failure mode (panic,
/// poisoned body, dropped connection, …).
#[inline]
pub fn inject(point: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    decide(point).is_some()
}

/// An injected I/O error at `point`, if the plan fires. The message
/// carries the `chaos:` marker [`is_chaos_error`] recognizes, so
/// recovery sites can attribute the failure.
#[inline]
pub fn io_error(point: &'static str) -> Option<io::Error> {
    if !enabled() {
        return None;
    }
    decide(point).map(|_| io::Error::other(format!("chaos: injected I/O error at {point}")))
}

/// An injected delay at `point`, if the plan fires: 1–20 ms derived
/// from the decision word (deterministic per visit).
#[inline]
pub fn delay(point: &'static str) -> Option<Duration> {
    if !enabled() {
        return None;
    }
    decide(point).map(|word| Duration::from_millis(1 + splitmix64(word) % 20))
}

/// Records that an injected fault at `point` was survived.
pub fn recovered(point: &'static str) {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(st) = guard.as_mut() {
        if let Some(ps) = st.points.get_mut(point) {
            ps.recovered += 1;
            ps.obs_recovered.inc();
            RECOVERED_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Silences the default panic report for injected panics — they are
/// expected, caught, and accounted as recovered, so the backtrace spam
/// only obscures real failures. Non-chaos panics still reach the
/// previously installed hook untouched. Idempotent.
pub fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.contains("chaos:")) {
                return;
            }
            prev(info);
        }));
    });
}

/// Is this error one the harness injected?
pub fn is_chaos_error(e: &io::Error) -> bool {
    e.to_string().contains("chaos:")
}

/// Is this caught panic payload one the harness injected?
pub fn is_chaos_panic(payload: &(dyn Any + Send)) -> bool {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.contains("chaos:"))
        .or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(|s| s.contains("chaos:"))
        })
        .unwrap_or(false)
}

/// Faults injected over the process lifetime (across re-arms).
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Injected faults survived over the process lifetime.
pub fn recovered_total() -> u64 {
    RECOVERED_TOTAL.load(Ordering::Relaxed)
}

/// Per-point accounting since the last [`arm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointReport {
    /// Fault-point name.
    pub point: &'static str,
    /// Visits to the point.
    pub hits: u64,
    /// Faults injected.
    pub injected: u64,
    /// Injected faults survived.
    pub recovered: u64,
}

/// Accounting for every point visited since the last [`arm`], sorted by
/// point name for stable output.
pub fn report() -> Vec<PointReport> {
    let guard = state().lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<PointReport> = guard
        .as_ref()
        .map(|st| {
            st.points
                .iter()
                .map(|(&point, ps)| PointReport {
                    point,
                    hits: ps.hits,
                    injected: ps.injected,
                    recovered: ps.recovered,
                })
                .collect()
        })
        .unwrap_or_default();
    v.sort_by_key(|r| r.point);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chaos state is process-global; tests that arm it must not
    /// interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _g = serial();
        disarm();
        for _ in 0..1000 {
            assert!(!inject("test.never"));
            assert!(io_error("test.never").is_none());
            assert!(delay("test.never").is_none());
        }
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let _g = serial();
        let run = |seed: u64| -> Vec<bool> {
            arm(Plan::new(seed).with_prob(0.3));
            let got = (0..200).map(|_| inject("test.replay")).collect();
            disarm();
            got
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        assert_ne!(a, c, "different seeds must differ somewhere in 200 draws");
        assert!(a.iter().any(|&x| x), "p=0.3 over 200 draws must fire");
        assert!(!a.iter().all(|&x| x), "p=0.3 over 200 draws must also pass");
    }

    #[test]
    fn per_point_overrides_and_accounting() {
        let _g = serial();
        arm(Plan::new(7)
            .with_prob(0.0)
            .with_point("test.always", 1.0)
            .with_point("test.off", 0.0));
        for _ in 0..10 {
            assert!(inject("test.always"));
            assert!(!inject("test.off"));
        }
        recovered("test.always");
        recovered("test.always");
        let rep = report();
        let always = rep.iter().find(|r| r.point == "test.always").unwrap();
        assert_eq!(
            (always.hits, always.injected, always.recovered),
            (10, 10, 2)
        );
        let off = rep.iter().find(|r| r.point == "test.off").unwrap();
        assert_eq!((off.hits, off.injected), (10, 0));
        disarm();
    }

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let _g = serial();
        arm(Plan::new(9).with_prob(1.0));
        let a: Vec<Duration> = (0..50).map(|_| delay("test.delay").unwrap()).collect();
        arm(Plan::new(9).with_prob(1.0));
        let b: Vec<Duration> = (0..50).map(|_| delay("test.delay").unwrap()).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|d| (1..=20).contains(&d.as_millis())));
        disarm();
    }

    #[test]
    fn plan_parsing() {
        assert_eq!(Plan::parse("42").unwrap(), Plan::new(42));
        let p = Plan::parse("seed=7,prob=0.2,engine.job_panic=1.0,http.read=0").unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.default_prob - 0.2).abs() < 1e-12);
        assert_eq!(p.prob_for("engine.job_panic"), 1.0);
        assert_eq!(p.prob_for("http.read"), 0.0);
        assert!((p.prob_for("engine.job_delay") - 0.2).abs() < 1e-12);
        for bad in ["", "seed=x", "prob=nope", "wat=1", "loose"] {
            assert!(Plan::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn error_and_panic_markers() {
        let _g = serial();
        arm(Plan::new(1).with_prob(1.0));
        let e = io_error("test.err").unwrap();
        assert!(is_chaos_error(&e));
        assert!(!is_chaos_error(&io::Error::other("disk on fire")));
        let payload: Box<dyn Any + Send> = Box::new("chaos: injected job panic".to_string());
        assert!(is_chaos_panic(payload.as_ref()));
        let other: Box<dyn Any + Send> = Box::new("index out of bounds");
        assert!(!is_chaos_panic(other.as_ref()));
        disarm();
    }
}
