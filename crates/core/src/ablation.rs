//! Ablation and acceleration studies — quantifying the paper's Sec. VI
//! discussion ("Discussion of Future Work") and the host-model design
//! choices DESIGN.md calls out.
//!
//! Two families:
//!
//! * [`accelerator_study`] — the paper argues there is no killer function
//!   to put in an off-chip accelerator, so acceleration must be
//!   fine-grained and CPU-coupled. We quantify that argument: offload one
//!   *whole component class* at a time (10× less host work for its
//!   handlers and call trees) and measure the end-to-end speedup. The
//!   flat profile means no single component buys much — exactly the
//!   paper's point.
//! * [`host_mechanism_ablation`] — knock out one host-microarchitecture
//!   mechanism at a time (stride prefetcher, loop predictor, µop cache,
//!   BTB capacity) and show which mechanisms the simulation-speed story
//!   actually rests on.

use crate::experiment::{GuestSpec, HostSetup};
use crate::report::Table;
use gem5sim::config::{CpuModel, SimMode, SystemConfig};
use gem5sim::observe::{CompClass, ExecutionObserver, Obs};
use gem5sim::system::System;
use gem5sim_workloads::Workload;
use hostmodel::HostEngine;
use hosttrace::record::FanoutSink;
use hosttrace::{BinaryVariant, PageBacking, Registry, TraceAdapter};
use platforms::intel_xeon;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use crate::figures::Fidelity;

/// Runs one guest simulation with per-component work scaling applied to
/// the adapter, returning host seconds on the Xeon.
fn run_scaled(guest: &GuestSpec, scaled: Option<(CompClass, f32)>) -> f64 {
    let reg = Arc::new(Registry::new(BinaryVariant::Base, PageBacking::Base));
    let engine = HostEngine::new(intel_xeon().config, Arc::clone(&reg));
    let mut adapter = TraceAdapter::new(Arc::clone(&reg), FanoutSink::new(vec![engine]));
    if let Some((comp, factor)) = scaled {
        adapter.set_work_scale(comp, factor);
    }
    let adapter = Rc::new(RefCell::new(adapter));
    let obs = Obs::new(Rc::clone(&adapter) as Rc<RefCell<dyn ExecutionObserver>>);
    let mut sys = System::with_observer(
        SystemConfig::new(guest.cpu, guest.mode),
        guest.workload.program(guest.scale),
        obs,
    );
    sys.run();
    drop(sys);
    let adapter = Rc::try_unwrap(adapter).ok().expect("unique").into_inner();
    let (fanout, _) = adapter.into_parts();
    let stats = fanout
        .into_inner()
        .into_iter()
        .next()
        .expect("one engine")
        .finish();
    stats.seconds()
}

/// Sec. VI: speedup from 10x-accelerating each component class alone.
pub fn accelerator_study(f: Fidelity) -> Table {
    let guest = GuestSpec::new(
        Workload::WaterNsquared,
        f.scale(),
        CpuModel::O3,
        SimMode::Fs,
    );
    let base = run_scaled(&guest, None);
    let mut t = Table::new(
        "Sec. VI study: end-to-end speedup from 10x-accelerating one component (O3, water_nsquared)",
        ["Speedup%"].map(String::from).to_vec(),
    );
    let candidates = [
        CompClass::EventQueue,
        CompClass::CpuO3,
        CompClass::Icache,
        CompClass::Dcache,
        CompClass::L2,
        CompClass::Dram,
        CompClass::Tlb,
        CompClass::BranchPred,
        CompClass::Decoder,
        CompClass::Stats,
    ];
    let secs =
        crate::runner::parallel_map(&candidates, |&comp| run_scaled(&guest, Some((comp, 0.1))));
    for (comp, s) in candidates.iter().zip(secs) {
        t.push(format!("{comp}"), vec![100.0 * (base / s - 1.0)]);
    }
    t.note("paper Sec. VI: 'there is no killer function ... accelerating even several gem5 functions in hardware would not provide a significant performance improvement'");
    t
}

/// Host-mechanism knockout: how much each modeled mechanism contributes.
pub fn host_mechanism_ablation(f: Fidelity) -> Table {
    let guest = GuestSpec::new(
        Workload::WaterNsquared,
        f.scale(),
        CpuModel::O3,
        SimMode::Fs,
    );
    let base_platform = intel_xeon();
    let mk = |mutate: &dyn Fn(&mut hostmodel::HostConfig)| {
        let mut c = base_platform.config.clone();
        mutate(&mut c);
        HostSetup::raw(c)
    };
    let setups = vec![
        mk(&|_| {}),
        mk(&|c| c.prefetch_factor = 1.0), // no stride prefetcher
        mk(&|c| c.loop_reach = 0),        // no loop predictor
        mk(&|c| c.dsb_uops = 0),          // no uop cache
        mk(&|c| c.btb_entries = 256),     // tiny BTB
        mk(&|c| c.itlb_entries = 16),     // tiny iTLB
        mk(&|c| c.stlb_entries = 0),      // no second-level TLB
    ];
    let labels = [
        "baseline",
        "no prefetcher",
        "no loop predictor",
        "no uop cache",
        "BTB 256",
        "iTLB 16",
        "no STLB",
    ];
    let run = crate::experiment::profile(&guest, &setups);
    let base = run.hosts[0].seconds();
    let mut t = Table::new(
        "Host-mechanism ablation (O3, water_nsquared): slowdown when removed",
        ["Slowdown%"].map(String::from).to_vec(),
    );
    for (label, h) in labels.iter().zip(&run.hosts) {
        t.push(*label, vec![100.0 * (h.seconds() / base - 1.0)]);
    }
    t.note("ablations justify the model's moving parts: each mechanism carries measurable weight");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_narrow_component_acceleration_is_a_silver_bullet() {
        let t = accelerator_study(Fidelity::Quick);
        // Accelerating any *narrow* subsystem (event queue, caches, DRAM,
        // TLB, predictor, decoder, stats) is futile — the paper's
        // no-killer-function argument. The only large win is offloading
        // the CPU-model class itself, i.e. the whole simulator: exactly
        // why the paper rejects off-chip accelerators.
        for row in &t.rows {
            let s = row.values[0];
            assert!(s > -3.0, "{}: {s:.2}%", row.label);
            if row.label != "CpuO3" {
                assert!(s < 15.0, "{} should not dominate: {s:.2}%", row.label);
            }
        }
        let o3 = t.get("CpuO3", "Speedup%").unwrap();
        assert!(
            o3 > 30.0,
            "the CPU model is the bulk of the simulator: {o3:.1}%"
        );
    }

    #[test]
    fn every_host_mechanism_carries_weight() {
        let t = host_mechanism_ablation(Fidelity::Quick);
        assert_eq!(t.get("baseline", "Slowdown%"), Some(0.0));
        // Mechanisms gem5's own profile rests on. (The stride prefetcher
        // matters for SPEC streams, not for gem5's pointer-heavy state —
        // see `prefetcher_matters_for_spec_streams`. The loop predictor
        // only exists on the M1 [reach 600 vs the Xeon's 48], so its
        // knockout is a no-op here and is asserted on the M1 below.)
        for row in ["no uop cache", "iTLB 16", "BTB 256"] {
            let s = t.get(row, "Slowdown%").unwrap();
            assert!(s > 0.3, "{row}: removing it must cost, got {s:.2}%");
        }
    }

    #[test]
    fn loop_predictor_matters_on_m1() {
        let guest = GuestSpec::new(
            Workload::WaterNsquared,
            Fidelity::Quick.scale(),
            CpuModel::O3,
            SimMode::Fs,
        );
        let m1 = platforms::m1_pro().config;
        let mut no_loop = m1.clone();
        no_loop.loop_reach = 0;
        let run =
            crate::experiment::profile(&guest, &[HostSetup::raw(m1), HostSetup::raw(no_loop)]);
        assert!(
            run.hosts[1].branch_mispredict_rate > 2.0 * run.hosts[0].branch_mispredict_rate,
            "M1's long-history predictor should matter: {} vs {}",
            run.hosts[1].branch_mispredict_rate,
            run.hosts[0].branch_mispredict_rate
        );
    }

    #[test]
    fn prefetcher_matters_for_spec_streams() {
        use crate::experiment::profile_spec;
        use specgen::SpecBenchmark;
        let base = HostSetup::raw(intel_xeon().config);
        let mut no_pref_cfg = intel_xeon().config;
        no_pref_cfg.prefetch_factor = 1.0;
        let no_pref = HostSetup::raw(no_pref_cfg);
        let stats = profile_spec(SpecBenchmark::X264, &[base, no_pref], 30_000);
        assert!(
            stats[1].seconds() > 1.1 * stats[0].seconds(),
            "x264 streams must rely on the prefetcher: {} vs {}",
            stats[1].seconds(),
            stats[0].seconds()
        );
    }
}
