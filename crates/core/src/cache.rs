//! Reusable cache instrumentation and a bounded LRU map.
//!
//! Two consumers share this module: the guest-trace memoization cache in
//! [`crate::runner`] (unbounded map, entries capped by event count) and
//! the serving layer's result cache (`gem5prof-served`), which stores
//! rendered responses keyed by canonicalized experiment spec. Both report
//! through [`CacheStats`] — a set of atomic counters with a consistent
//! [`snapshot`](CacheStats::snapshot) — so tools like `/stats` can print
//! every cache in the process in the same shape.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic hit/miss/insertion/eviction counters for one cache.
///
/// `const`-constructible so caches can embed it in a `static`; cheap to
/// bump from any thread; read via [`snapshot`](CacheStats::snapshot).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// A zeroed counter set.
    pub const fn new() -> Self {
        CacheStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Records a lookup that was served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that missed.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a new entry entering the cache.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an entry leaving the cache to make room.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value counters captured by [`CacheStats::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hits over total lookups, in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// This snapshot as metric samples named `<prefix>_{hits,misses,
    /// insertions,evictions}_total` — the bridge that lets every cache
    /// surface in `/metrics` from the same counters `/stats` reads,
    /// rather than maintaining a parallel counter set.
    pub fn metric_samples(&self, prefix: &str) -> Vec<gem5prof_obs::Sample> {
        use gem5prof_obs::{MetricKind, Sample};
        [
            ("hits_total", "lookups served from the cache", self.hits),
            ("misses_total", "lookups that missed", self.misses),
            ("insertions_total", "entries inserted", self.insertions),
            (
                "evictions_total",
                "entries evicted to make room",
                self.evictions,
            ),
        ]
        .into_iter()
        .map(|(suffix, help, v)| {
            Sample::plain(
                &format!("{prefix}_{suffix}"),
                help,
                MetricKind::Counter,
                v as f64,
            )
        })
        .collect()
    }
}

/// A bounded least-recently-used map with embedded [`CacheStats`].
///
/// Recency is tracked with a monotone tick per access; eviction scans for
/// the minimum tick. That is O(len) per eviction, which is fine at the
/// few-hundred-entry capacities the serving layer uses — simplicity and
/// zero dependencies beat an intrusive list here.
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "LruCache capacity must be positive");
        LruCache {
            cap,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::new(),
        }
    }

    /// Looks up `key`, refreshing its recency. Records a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((t, v)) => {
                *t = self.tick;
                self.stats.record_hit();
                Some(v.clone())
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// the cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.stats.record_eviction();
            }
        }
        if self.map.insert(key, (self.tick, value)).is_none() {
            self.stats.record_insertion();
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The cache's counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_tracks_counters() {
        let s = CacheStats::new();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insertion();
        s.record_eviction();
        let snap = s.snapshot();
        assert_eq!(
            snap,
            CacheSnapshot {
                hits: 2,
                misses: 1,
                insertions: 1,
                evictions: 1,
            }
        );
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        let snap = c.stats().snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.insertions, 3);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 3);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(7, 1);
        c.insert(7, 2);
        assert_eq!(c.get(&7), Some(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().snapshot().evictions, 0);
        assert_eq!(c.stats().snapshot().insertions, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }
}
