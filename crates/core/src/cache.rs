//! Reusable cache instrumentation and a bounded LRU map.
//!
//! Two consumers share this module: the guest-trace memoization cache in
//! [`crate::runner`] (unbounded map, entries capped by event count) and
//! the serving layer's result cache (`gem5prof-served`), which stores
//! rendered responses keyed by canonicalized experiment spec. Both report
//! through [`CacheStats`] — a set of atomic counters with a consistent
//! [`snapshot`](CacheStats::snapshot) — so tools like `/stats` can print
//! every cache in the process in the same shape.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Atomic hit/miss/insertion/eviction counters for one cache.
///
/// `const`-constructible so caches can embed it in a `static`; cheap to
/// bump from any thread; read via [`snapshot`](CacheStats::snapshot).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// A zeroed counter set.
    pub const fn new() -> Self {
        CacheStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Records a lookup that was served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that missed.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a new entry entering the cache.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an entry leaving the cache to make room.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value counters captured by [`CacheStats::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hits over total lookups, in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another snapshot's counters into this one (used to
    /// aggregate per-shard snapshots into a cache-wide view).
    pub fn merge(&mut self, other: &CacheSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }

    /// This snapshot as metric samples named `<prefix>_{hits,misses,
    /// insertions,evictions}_total` — the bridge that lets every cache
    /// surface in `/metrics` from the same counters `/stats` reads,
    /// rather than maintaining a parallel counter set.
    pub fn metric_samples(&self, prefix: &str) -> Vec<gem5prof_obs::Sample> {
        use gem5prof_obs::{MetricKind, Sample};
        [
            ("hits_total", "lookups served from the cache", self.hits),
            ("misses_total", "lookups that missed", self.misses),
            ("insertions_total", "entries inserted", self.insertions),
            (
                "evictions_total",
                "entries evicted to make room",
                self.evictions,
            ),
        ]
        .into_iter()
        .map(|(suffix, help, v)| {
            Sample::plain(
                &format!("{prefix}_{suffix}"),
                help,
                MetricKind::Counter,
                v as f64,
            )
        })
        .collect()
    }
}

/// A bounded least-recently-used map with embedded [`CacheStats`].
///
/// Recency is tracked with a monotone tick per access; eviction scans for
/// the minimum tick. That is O(len) per eviction, which is fine at the
/// few-hundred-entry capacities the serving layer uses — simplicity and
/// zero dependencies beat an intrusive list here.
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "LruCache capacity must be positive");
        LruCache {
            cap,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::new(),
        }
    }

    /// Looks up `key`, refreshing its recency. Records a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((t, v)) => {
                *t = self.tick;
                self.stats.record_hit();
                Some(v.clone())
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// the cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.stats.record_eviction();
            }
        }
        if self.map.insert(key, (self.tick, value)).is_none() {
            self.stats.record_insertion();
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The cache's counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Visits every resident entry (recency untouched, no hit/miss
    /// accounting). Iteration order is unspecified.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for (k, (_, v)) in &self.map {
            f(k, v);
        }
    }

    /// Empties the cache. Counters keep their running totals and the
    /// removed entries do not count as evictions (nothing was displaced
    /// to make room).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

// ---------------------------------------------------------------------
// Sharded LRU
// ---------------------------------------------------------------------

/// Picks a shard count for a cache of `cap` entries: one shard per
/// available core, rounded up to a power of two, capped at 64 and never
/// more than `cap` (every shard must be able to hold at least one
/// entry). More shards than cores only adds memory overhead; fewer
/// serializes independent lookups behind one mutex.
pub fn default_shards(cap: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.next_power_of_two().min(64).min(cap).max(1)
}

/// A concurrent LRU: `N` independently-mutexed [`LruCache`] shards,
/// keys distributed by hash. A lookup or insert locks exactly one
/// shard, so the single-`Mutex<LruCache>` convoy the serving layer's
/// result cache used to bottleneck on becomes per-shard contention
/// only between keys that actually collide.
///
/// Capacity is partitioned across shards (summing exactly to `cap`),
/// so the total resident count can never exceed `cap`. Eviction is
/// per-shard LRU: a skewed key distribution can evict from a full
/// shard while another has room, which is the standard sharding
/// trade-off — bounded memory and bounded lock hold times in exchange
/// for approximate global recency.
///
/// With one shard this is behaviorally identical to [`LruCache`]
/// (the property suite in `crates/core/tests/cache_props.rs` pins
/// that, plus the capacity and stats-aggregation invariants).
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache of at most `cap` entries across `shards` shards.
    /// `shards` is clamped to `[1, cap]`; capacity is split as evenly
    /// as possible (the first `cap % shards` shards hold one extra).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(shards: usize, cap: usize) -> Self {
        assert!(cap > 0, "ShardedLru capacity must be positive");
        let n = shards.clamp(1, cap);
        let shards = (0..n)
            .map(|i| {
                let shard_cap = cap / n + usize::from(i < cap % n);
                Mutex::new(LruCache::new(shard_cap))
            })
            .collect();
        ShardedLru { shards, cap }
    }

    /// Creates a cache with [`default_shards`] shards.
    pub fn with_default_shards(cap: usize) -> Self {
        Self::new(default_shards(cap), cap)
    }

    /// The shard `key` lives in. SipHash via the std default hasher,
    /// deterministically keyed, so shard assignment is stable for the
    /// process lifetime (which is all the disk tier's promote path and
    /// the property tests need).
    fn shard(&self, key: &K) -> MutexGuard<'_, LruCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() % self.shards.len() as u64) as usize;
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up `key`, refreshing its recency within its shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).get(key)
    }

    /// Inserts `key → value`, evicting within the key's shard if full.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).insert(key, value);
    }

    /// Entries resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (the sum of per-shard capacities).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cache-wide counters: the sum of every shard's [`CacheStats`].
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for s in &self.shards {
            total.merge(
                &s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .stats()
                    .snapshot(),
            );
        }
        total
    }

    /// Per-shard snapshots, in shard order (for tests and debugging).
    pub fn shard_snapshots(&self) -> Vec<CacheSnapshot> {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .stats()
                    .snapshot()
            })
            .collect()
    }

    /// Visits every resident entry across all shards (recency and
    /// counters untouched). Shards are locked one at a time.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).for_each(&mut f);
        }
    }

    /// Empties every shard (counters keep running totals).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_tracks_counters() {
        let s = CacheStats::new();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insertion();
        s.record_eviction();
        let snap = s.snapshot();
        assert_eq!(
            snap,
            CacheSnapshot {
                hits: 2,
                misses: 1,
                insertions: 1,
                evictions: 1,
            }
        );
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        let snap = c.stats().snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.insertions, 3);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 3);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(7, 1);
        c.insert(7, 2);
        assert_eq!(c.get(&7), Some(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().snapshot().evictions, 0);
        assert_eq!(c.stats().snapshot().insertions, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn sharded_capacity_partitions_exactly() {
        for (shards, cap) in [(1, 1), (4, 10), (8, 8), (16, 7), (64, 100)] {
            let c: ShardedLru<u64, u64> = ShardedLru::new(shards, cap);
            assert_eq!(c.capacity(), cap, "shards={shards} cap={cap}");
            assert!(c.shard_count() <= cap, "a shard must hold ≥ 1 entry");
            assert_eq!(c.shard_count(), shards.min(cap));
        }
    }

    #[test]
    fn sharded_get_insert_and_aggregate_stats() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 64);
        for k in 0..32u64 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.len(), 32);
        for k in 0..32u64 {
            assert_eq!(c.get(&k), Some(k * 10));
        }
        assert_eq!(c.get(&999), None);
        let snap = c.snapshot();
        assert_eq!(snap.hits, 32);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.insertions, 32);
        assert_eq!(snap.evictions, 0);
        // The aggregate is exactly the sum of the per-shard snapshots.
        let mut summed = CacheSnapshot::default();
        for s in c.shard_snapshots() {
            summed.merge(&s);
        }
        assert_eq!(snap, summed);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.snapshot().insertions, 32, "counters survive clear");
    }

    #[test]
    fn sharded_len_never_exceeds_capacity() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 10);
        for k in 0..1000u64 {
            c.insert(k, k);
            assert!(c.len() <= c.capacity(), "len {} > cap {}", c.len(), 10);
        }
        let snap = c.snapshot();
        assert_eq!(snap.insertions - snap.evictions, c.len() as u64);
    }

    #[test]
    fn default_shard_heuristic_is_bounded() {
        for cap in [1, 2, 7, 256, 100_000] {
            let n = default_shards(cap);
            assert!((1..=64).contains(&n));
            assert!(n <= cap);
        }
    }
}
