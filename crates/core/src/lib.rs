//! `gem5prof` — the profiling harness reproducing *Profiling gem5
//! Simulator* (ISPASS 2023).
//!
//! This crate composes the full stack:
//!
//! ```text
//! guest workload ──► gem5sim (the simulator under profile)
//!                       │ ExecutionObserver (every handler)
//!                       ▼
//!                  hosttrace::TraceAdapter (synthetic gem5 binary)
//!                       │ host instruction stream (fanout)
//!                       ▼
//!          hostmodel::HostEngine × N host platforms / knob settings
//!                       │
//!                       ▼
//!            Top-Down profiles, miss rates, "host seconds"
//! ```
//!
//! [`experiment::profile`] runs one guest simulation and evaluates it on
//! any number of host setups simultaneously; [`figures`] regenerates every
//! figure of the paper as a [`report::Table`].
//!
//! # Example
//!
//! ```
//! use gem5prof::experiment::{profile, GuestSpec, HostSetup};
//! use gem5sim::config::{CpuModel, SimMode};
//! use gem5sim_workloads::{Scale, Workload};
//!
//! let guest = GuestSpec::new(Workload::Dedup, Scale::Test, CpuModel::Atomic, SimMode::Se);
//! let host = HostSetup::platform(&platforms::intel_xeon());
//! let run = profile(&guest, std::slice::from_ref(&host));
//! let (retiring, frontend, _, _) = run.hosts[0].topdown.level1_pct();
//! assert!(retiring > 0.0 && frontend > 0.0);
//! ```

pub mod ablation;
pub mod cache;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod runner;
pub mod spec;

pub use cache::{CacheSnapshot, CacheStats, LruCache, ShardedLru};
pub use experiment::{profile, profile_spec, GuestSpec, HostSetup, ProfileRun};
pub use report::{geomean, Table};
pub use runner::{
    exec_tier, parallel_map, set_exec_tier, set_threads, threads, with_exec_tier, with_threads,
};
pub use spec::ExperimentSpec;
