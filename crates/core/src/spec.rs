//! Parameterized experiment specs with canonical cache keys.
//!
//! The serving layer (`gem5prof-served`) accepts experiments as data —
//! platform, workload, input scale, CPU model, simulation mode, and a
//! system-knob string — rather than as code. [`ExperimentSpec`] is that
//! description, [`ExperimentSpec::canonical_key`] is its normalized
//! identity (two specs that mean the same experiment produce the same
//! key, whatever casing or knob-token order the client used), and
//! [`ExperimentSpec::run`] executes it on the memoized [`profile`]
//! pipeline.
//!
//! The string parsers here ([`parse_workload`] & friends) are the single
//! place where wire names map onto the experiment enums; both the daemon
//! and any future CLI front-end go through them.

use crate::experiment::{profile, GuestSpec, HostSetup, ProfileRun};
use crate::figures::Fidelity;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::{Microbench, Scale, Workload};
use hostmodel::CorunScenario;
use hosttrace::{BinaryVariant, PageBacking};
use platforms::{PlatformId, SystemKnobs};

/// Every workload, in a fixed order (for parsing and enumeration).
pub const ALL_WORKLOADS: [Workload; 17] = [
    Workload::Blackscholes,
    Workload::Canneal,
    Workload::Dedup,
    Workload::Streamcluster,
    Workload::WaterNsquared,
    Workload::WaterSpatial,
    Workload::OceanCp,
    Workload::OceanNcp,
    Workload::Fmm,
    Workload::BootExit,
    Workload::Sieve,
    Workload::Micro(Microbench::Alu),
    Workload::Micro(Microbench::BranchPred),
    Workload::Micro(Microbench::BranchUnpred),
    Workload::Micro(Microbench::MemSeq),
    Workload::Micro(Microbench::MemStride),
    Workload::Micro(Microbench::CallRet),
];

/// Parses a workload by its paper name (case-insensitive; `-` ≡ `_`).
pub fn parse_workload(s: &str) -> Option<Workload> {
    let norm = s.trim().to_ascii_lowercase().replace('-', "_");
    ALL_WORKLOADS.into_iter().find(|w| w.name() == norm)
}

/// Parses a microbenchmark variant by wire name (case-insensitive;
/// `-` ≡ `_`) — the co-run `corun` field accepts only these.
pub fn parse_microbench(s: &str) -> Option<Microbench> {
    let norm = s.trim().to_ascii_lowercase().replace('-', "_");
    Microbench::ALL.into_iter().find(|m| m.name() == norm)
}

/// Parses an input scale: `test`, `simsmall`, or `simmedium`.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s.trim().to_ascii_lowercase().as_str() {
        "test" => Some(Scale::Test),
        "simsmall" | "small" => Some(Scale::SimSmall),
        "simmedium" | "medium" => Some(Scale::SimMedium),
        _ => None,
    }
}

/// Parses a CPU model: `atomic`, `timing`, `minor`, or `o3`.
pub fn parse_cpu(s: &str) -> Option<CpuModel> {
    match s.trim().to_ascii_lowercase().as_str() {
        "atomic" => Some(CpuModel::Atomic),
        "timing" => Some(CpuModel::Timing),
        "minor" => Some(CpuModel::Minor),
        "o3" => Some(CpuModel::O3),
        _ => None,
    }
}

/// Parses a simulation mode: `se` or `fs`.
pub fn parse_mode(s: &str) -> Option<SimMode> {
    match s.trim().to_ascii_lowercase().as_str() {
        "se" => Some(SimMode::Se),
        "fs" => Some(SimMode::Fs),
        _ => None,
    }
}

/// Parses a figure fidelity: `quick` or `paper`.
pub fn parse_fidelity(s: &str) -> Option<Fidelity> {
    match s.trim().to_ascii_lowercase().as_str() {
        "quick" => Some(Fidelity::Quick),
        "paper" => Some(Fidelity::Paper),
        _ => None,
    }
}

/// Canonical lower-case name of a scale (inverse of [`parse_scale`]).
pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::SimSmall => "simsmall",
        Scale::SimMedium => "simmedium",
    }
}

/// One fully-specified serving experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Host platform (Table II machine).
    pub platform: PlatformId,
    /// Guest workload.
    pub workload: Workload,
    /// Guest input scale.
    pub scale: Scale,
    /// Simulated CPU model.
    pub cpu: CpuModel,
    /// SE or FS mode.
    pub mode: SimMode,
    /// System tuning knobs applied to the host.
    pub knobs: SystemKnobs,
    /// Number of guest harts (default 1).
    pub harts: usize,
    /// Odd-hart co-run partner (requires a microbench workload).
    pub corun: Option<Microbench>,
    /// Odd-hart clock divider (default 1 = symmetric clocks).
    pub corun_div: u64,
}

impl ExperimentSpec {
    /// A single-hart spec at default knobs.
    pub fn new(
        platform: PlatformId,
        workload: Workload,
        scale: Scale,
        cpu: CpuModel,
        mode: SimMode,
    ) -> Self {
        ExperimentSpec {
            platform,
            workload,
            scale,
            cpu,
            mode,
            knobs: SystemKnobs::new(),
            harts: 1,
            corun: None,
            corun_div: 1,
        }
    }

    /// The guest half of the spec (the memoization key of the trace
    /// cache — host knobs never affect it).
    pub fn guest(&self) -> GuestSpec {
        let mut g = GuestSpec::new(self.workload, self.scale, self.cpu, self.mode)
            .with_harts(self.harts)
            .with_corun_div(self.corun_div);
        if let Some(p) = self.corun {
            g = g.with_corun(p);
        }
        g
    }

    /// The host half: the platform with the knobs applied.
    pub fn host(&self) -> HostSetup {
        HostSetup::with_knobs(&self.platform.platform(), &self.knobs)
    }

    /// Runs the experiment through the memoized profiling pipeline.
    pub fn run(&self) -> ProfileRun {
        profile(&self.guest(), &[self.host()])
    }

    /// A normalized identity string: fixed field order, lower-case
    /// names, knobs collapsed to a canonical token sequence. Equal specs
    /// always produce equal keys, so this is the serving result-cache
    /// key.
    pub fn canonical_key(&self) -> String {
        let mut key = format!(
            "exp:platform={}:workload={}:scale={}:cpu={}:mode={}:knobs={}",
            self.platform.name().to_ascii_lowercase(),
            self.workload.name(),
            scale_name(self.scale),
            self.cpu.label().to_ascii_lowercase(),
            self.mode.label().to_ascii_lowercase(),
            canonical_knobs(&self.knobs),
        );
        // Co-run axes append in fixed order, defaults elided, so every
        // pre-existing spec keeps its exact pre-co-run key (cache
        // entries, cluster ring placement and golden artifacts survive).
        if self.harts != 1 {
            key.push_str(&format!(":harts={}", self.harts));
        }
        if let Some(p) = self.corun {
            key.push_str(&format!(":corun={}", p.name()));
        }
        if self.corun_div != 1 {
            key.push_str(&format!(":div={}", self.corun_div));
        }
        key
    }
}

/// Canonical token form of a knob set (fixed order; defaults elided;
/// `default` when nothing is set).
fn canonical_knobs(k: &SystemKnobs) -> String {
    let mut parts: Vec<String> = Vec::new();
    match k.backing {
        PageBacking::Base => {}
        PageBacking::Thp { coverage_pct } => parts.push(format!("thp{coverage_pct}")),
        PageBacking::Ehp => parts.push("ehp".into()),
    }
    if k.binary == BinaryVariant::O3Flag {
        parts.push("o3".into());
    }
    if let Some(f) = k.freq_ghz {
        parts.push(format!("freq={f:.3}"));
    }
    match k.corun {
        CorunScenario::Single => {}
        CorunScenario::PerPhysicalCore { procs } => parts.push(format!("corun=per_core:{procs}")),
        CorunScenario::PerHardwareThread { procs } => {
            parts.push(format!("corun=per_thread:{procs}"))
        }
    }
    if parts.is_empty() {
        "default".into()
    } else {
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for w in ALL_WORKLOADS {
            assert_eq!(parse_workload(w.name()), Some(w), "{w}");
            assert_eq!(parse_workload(&w.name().to_uppercase()), Some(w));
        }
        assert_eq!(
            parse_workload("water-nsquared"),
            Some(Workload::WaterNsquared)
        );
        assert_eq!(parse_workload("nope"), None);
        for s in [Scale::Test, Scale::SimSmall, Scale::SimMedium] {
            assert_eq!(parse_scale(scale_name(s)), Some(s));
        }
        for c in CpuModel::ALL {
            assert_eq!(parse_cpu(&c.label().to_lowercase()), Some(c));
        }
        for m in Microbench::ALL {
            assert_eq!(parse_microbench(m.name()), Some(m), "{m}");
            assert_eq!(parse_workload(m.name()), Some(Workload::Micro(m)));
        }
        assert_eq!(parse_microbench("MEM-STRIDE"), Some(Microbench::MemStride));
        assert_eq!(parse_microbench("dedup"), None);
        assert_eq!(parse_mode("SE"), Some(SimMode::Se));
        assert_eq!(parse_mode("fs"), Some(SimMode::Fs));
        assert_eq!(parse_fidelity("quick"), Some(Fidelity::Quick));
        assert_eq!(parse_fidelity("paper"), Some(Fidelity::Paper));
        assert_eq!(parse_fidelity("slow"), None);
    }

    #[test]
    fn canonical_key_is_normalized_and_discriminating() {
        let base = ExperimentSpec::new(
            PlatformId::IntelXeon,
            Workload::Dedup,
            Scale::Test,
            CpuModel::O3,
            SimMode::Se,
        );
        assert_eq!(
            base.canonical_key(),
            "exp:platform=intel_xeon:workload=dedup:scale=test:cpu=o3:mode=se:knobs=default"
        );
        let mut tuned = base.clone();
        tuned.knobs = SystemKnobs::new()
            .with_thp()
            .with_o3_binary()
            .with_freq(2.4);
        assert_ne!(tuned.canonical_key(), base.canonical_key());
        assert!(tuned.canonical_key().ends_with("knobs=thp48,o3,freq=2.400"));
        // Equal specs, equal keys — regardless of how they were built.
        let rebuilt = ExperimentSpec {
            knobs: SystemKnobs::new()
                .with_freq(2.4)
                .with_o3_binary()
                .with_thp(),
            ..base.clone()
        };
        assert_eq!(rebuilt.canonical_key(), tuned.canonical_key());
    }

    #[test]
    fn corun_axes_extend_the_key_only_when_non_default() {
        let base = ExperimentSpec::new(
            PlatformId::IntelXeon,
            Workload::Micro(Microbench::MemStride),
            Scale::Test,
            CpuModel::Timing,
            SimMode::Se,
        );
        // Defaults elided: the key is exactly the pre-co-run shape.
        assert_eq!(
            base.canonical_key(),
            "exp:platform=intel_xeon:workload=mem_stride:scale=test:cpu=timing:mode=se:knobs=default"
        );
        let mut pair = base.clone();
        pair.harts = 4;
        pair.corun = Some(Microbench::Alu);
        pair.corun_div = 2;
        assert!(pair
            .canonical_key()
            .ends_with("knobs=default:harts=4:corun=alu:div=2"));
        // Each axis discriminates.
        let mut h2 = pair.clone();
        h2.harts = 2;
        assert_ne!(h2.canonical_key(), pair.canonical_key());
        let mut nodiv = pair.clone();
        nodiv.corun_div = 1;
        assert_ne!(nodiv.canonical_key(), pair.canonical_key());
        assert_eq!(pair.guest().harts, 4);
        assert_eq!(pair.guest().corun, Some(Microbench::Alu));
        assert_eq!(pair.guest().corun_div, 2);
    }

    #[test]
    fn spec_runs_through_the_pipeline() {
        let spec = ExperimentSpec::new(
            PlatformId::M1Pro,
            Workload::Dedup,
            Scale::Test,
            CpuModel::Atomic,
            SimMode::Se,
        );
        let run = spec.run();
        assert_eq!(run.hosts.len(), 1);
        assert!(run.hosts[0].seconds() > 0.0);
        assert_eq!(run.hosts[0].name, "M1_Pro");
    }
}
