//! Experiment plumbing: one guest simulation, many host evaluations.
//!
//! [`profile`] is memoized per [`GuestSpec`] (see [`crate::runner`]): the
//! first call simulates the guest and records the post-adapter event
//! stream; later calls for the same spec replay that stream into fresh
//! host engines without touching the simulator. Either path feeds every
//! host engine the identical stream, so results never depend on whether
//! they were served live or from cache.

use crate::runner::{self, CachedGuest, TRACE_CACHE_CAP};
use gem5sim::config::{CpuModel, SimMode, SystemConfig};
use gem5sim::observe::{ExecutionObserver, Obs};
use gem5sim::system::{SimResult, System};
use gem5sim_workloads::{Microbench, Scale, Workload};
use hostmodel::{HostEngine, HostRunStats};
use hosttrace::record::{replay, FanoutSink, RecordingSink, TeeSink};
use hosttrace::{BinaryVariant, CallProfile, PageBacking, Registry, TraceAdapter};
use platforms::{Platform, SystemKnobs};
use specgen::SpecBenchmark;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex, OnceLock};

/// What to simulate on the guest side.
///
/// Doubles as the guest-trace memoization key: two equal specs are
/// guaranteed the same simulation, so one recorded stream serves both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GuestSpec {
    /// Workload program.
    pub workload: Workload,
    /// Input scale.
    pub scale: Scale,
    /// CPU model under simulation.
    pub cpu: CpuModel,
    /// FS or SE mode.
    pub mode: SimMode,
    /// Number of guest harts. With no co-run partner, every hart runs
    /// `workload`; interference happens in the shared L2 and DRAM.
    pub harts: usize,
    /// Co-run partner for odd harts (requires `workload` to be a
    /// microbench — the pair is built by
    /// [`gem5sim_workloads::corun_program`]).
    pub corun: Option<Microbench>,
    /// Clock divider applied to odd harts (1 = all harts share the
    /// system clock), for asymmetric co-run scenarios.
    pub corun_div: u64,
}

impl GuestSpec {
    /// Creates a single-hart spec.
    pub fn new(workload: Workload, scale: Scale, cpu: CpuModel, mode: SimMode) -> Self {
        GuestSpec {
            workload,
            scale,
            cpu,
            mode,
            harts: 1,
            corun: None,
            corun_div: 1,
        }
    }

    /// Sets the hart count (builder style).
    pub fn with_harts(mut self, harts: usize) -> Self {
        assert!(harts >= 1, "at least one hart required");
        self.harts = harts;
        self
    }

    /// Sets the odd-hart co-run partner (builder style).
    pub fn with_corun(mut self, partner: Microbench) -> Self {
        self.corun = Some(partner);
        self
    }

    /// Sets the odd-hart clock divider (builder style).
    pub fn with_corun_div(mut self, div: u64) -> Self {
        assert!(div >= 1, "clock divider must be >= 1");
        self.corun_div = div;
        self
    }

    /// Figure-style label, e.g. `O3_WATER_NSQUARED`; co-run specs get
    /// `_VS_<partner>` and multi-hart specs `_X<harts>` suffixes.
    pub fn label(&self) -> String {
        let mut l = format!(
            "{}_{}",
            self.cpu.label(),
            self.workload.name().to_uppercase()
        );
        if let Some(p) = self.corun {
            l.push_str(&format!("_VS_{}", p.name().to_uppercase()));
        }
        if self.harts > 1 {
            l.push_str(&format!("_X{}", self.harts));
        }
        l
    }
}

/// One host evaluation point: a platform microarchitecture plus the
/// binary/backing the simulator runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSetup {
    /// Host CPU configuration (already knob-adjusted).
    pub config: hostmodel::HostConfig,
    /// Which simulator binary runs (`-O3` or not).
    pub binary: BinaryVariant,
    /// Text page backing (base / THP / EHP).
    pub backing: PageBacking,
}

impl HostSetup {
    /// A platform at default knobs.
    pub fn platform(p: &Platform) -> Self {
        HostSetup {
            config: p.config.clone(),
            binary: BinaryVariant::Base,
            backing: PageBacking::Base,
        }
    }

    /// A platform with tuning knobs applied.
    pub fn with_knobs(p: &Platform, knobs: &SystemKnobs) -> Self {
        HostSetup {
            config: knobs.apply(&p.config),
            binary: knobs.binary,
            backing: knobs.backing,
        }
    }

    /// A raw host configuration (e.g. a FireSim sweep point).
    pub fn raw(config: hostmodel::HostConfig) -> Self {
        HostSetup {
            config,
            binary: BinaryVariant::Base,
            backing: PageBacking::Base,
        }
    }
}

/// Results of profiling one guest run on several hosts.
#[derive(Debug)]
pub struct ProfileRun {
    /// Guest-side simulation results (identical for all hosts).
    pub guest: SimResult,
    /// One host profile per [`HostSetup`], in input order.
    pub hosts: Vec<HostRunStats>,
    /// Host-function call profile (Fig. 15).
    pub profile: CallProfile,
    /// The canonical binary model, for naming functions.
    pub registry: Arc<Registry>,
}

/// Registries are deterministic per `(binary, backing)`; share them
/// process-wide so every worker thread sees the same instance.
pub(crate) fn registry_for(binary: BinaryVariant, backing: PageBacking) -> Arc<Registry> {
    type Key = (BinaryVariant, PageBacking);
    static CACHE: OnceLock<Mutex<Vec<(Key, Arc<Registry>)>>> = OnceLock::new();
    let mut c = CACHE
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some((_, r)) = c.iter().find(|(k, _)| *k == (binary, backing)) {
        return Arc::clone(r);
    }
    let r = Arc::new(Registry::new(binary, backing));
    c.push(((binary, backing), Arc::clone(&r)));
    r
}

fn engines_for(hosts: &[HostSetup]) -> Vec<HostEngine> {
    hosts
        .iter()
        .map(|h| HostEngine::new(h.config.clone(), registry_for(h.binary, h.backing)))
        .collect()
}

/// Runs one guest simulation, feeding every host setup from the same
/// instrumentation stream (so host comparisons are exact, not sampled).
///
/// Memoized: the first profile of a [`GuestSpec`] records the stream;
/// subsequent profiles of the same spec replay it into the new host
/// engines and perform zero guest simulation.
pub fn profile(guest: &GuestSpec, hosts: &[HostSetup]) -> ProfileRun {
    assert!(!hosts.is_empty(), "at least one host setup required");
    let _span = gem5prof_obs::span("profile");
    let _wspan = gem5prof_obs::span(guest.workload.name());
    let canon = registry_for(BinaryVariant::Base, PageBacking::Base);

    if let Some(cached) = runner::cache_lookup(guest) {
        let _replay = gem5prof_obs::span("replay");
        let mut fanout = FanoutSink::new(engines_for(hosts));
        replay(&cached.events, &mut fanout);
        return ProfileRun {
            guest: cached.guest.clone(),
            hosts: fanout
                .into_inner()
                .into_iter()
                .map(HostEngine::finish)
                .collect(),
            profile: cached.profile.clone(),
            registry: canon,
        };
    }

    // Miss: simulate once, feeding the engines live while recording the
    // stream for the cache. The recorder degrades gracefully — a stream
    // past the cap simply isn't cached.
    let fanout = FanoutSink::new(engines_for(hosts));
    let tee = TeeSink::new(fanout, RecordingSink::with_cap(TRACE_CACHE_CAP));
    let adapter = Rc::new(RefCell::new(TraceAdapter::new(Arc::clone(&canon), tee)));
    let obs = Obs::new(Rc::clone(&adapter) as Rc<RefCell<dyn ExecutionObserver>>);

    let program = match guest.corun {
        Some(partner) => {
            let Workload::Micro(main) = guest.workload else {
                panic!(
                    "co-run partner requires a microbench workload, got `{}`",
                    guest.workload
                );
            };
            gem5sim_workloads::corun_program(main, partner, guest.scale)
        }
        None => guest.workload.program(guest.scale),
    };
    let mut cfg = SystemConfig::new(guest.cpu, guest.mode)
        .with_cpus(guest.harts)
        .with_exec_tier(crate::runner::exec_tier());
    if guest.corun_div > 1 {
        // Asymmetric pair: odd harts (the co-run partner's slot) run on
        // a divided clock.
        cfg = cfg.with_hart_clock_divs(
            (0..guest.harts)
                .map(|i| if i % 2 == 1 { guest.corun_div } else { 1 })
                .collect(),
        );
    }
    let mut sys = System::with_observer(cfg, program, obs);
    let guest_result = {
        let _sim = gem5prof_obs::span("guest_sim");
        sys.run()
    };
    drop(sys);

    let adapter = Rc::try_unwrap(adapter)
        .ok()
        .expect("system dropped; adapter is uniquely owned")
        .into_inner();
    let (tee, profile) = adapter.into_parts();
    let (fanout, recorder) = (tee.a, tee.b);
    if let Some(events) = recorder.into_events() {
        runner::cache_insert(
            *guest,
            CachedGuest {
                guest: guest_result.clone(),
                profile: profile.clone(),
                events,
            },
        );
    }
    ProfileRun {
        guest: guest_result,
        hosts: fanout
            .into_inner()
            .into_iter()
            .map(HostEngine::finish)
            .collect(),
        profile,
        registry: canon,
    }
}

/// Profiles a bare-metal SPEC reference benchmark on several hosts.
pub fn profile_spec(bench: SpecBenchmark, hosts: &[HostSetup], records: u64) -> Vec<HostRunStats> {
    hosts
        .iter()
        .map(|h| {
            let reg = registry_for(h.binary, h.backing);
            let mut engine = HostEngine::new(h.config.clone(), Arc::clone(&reg));
            bench.generate(&reg, &mut engine, records);
            engine.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::{intel_xeon, m1_pro};

    fn quick(cpu: CpuModel) -> GuestSpec {
        GuestSpec::new(Workload::Dedup, Scale::Test, cpu, SimMode::Se)
    }

    #[test]
    fn fanout_hosts_see_identical_streams() {
        let xeon = HostSetup::platform(&intel_xeon());
        let run = profile(&quick(CpuModel::Atomic), &[xeon.clone(), xeon]);
        assert_eq!(run.hosts.len(), 2);
        assert_eq!(run.hosts[0].records, run.hosts[1].records);
        assert_eq!(run.hosts[0].cycles, run.hosts[1].cycles);
    }

    #[test]
    fn m1_outruns_xeon_on_the_same_simulation() {
        let hosts = [
            HostSetup::platform(&intel_xeon()),
            HostSetup::platform(&m1_pro()),
        ];
        let run = profile(&quick(CpuModel::O3), &hosts);
        let (xeon, m1) = (&run.hosts[0], &run.hosts[1]);
        assert!(
            m1.seconds() < xeon.seconds(),
            "m1 {} vs xeon {}",
            m1.seconds(),
            xeon.seconds()
        );
        assert!(m1.ipc() > xeon.ipc());
    }

    #[test]
    fn guest_results_are_host_independent() {
        let a = profile(
            &quick(CpuModel::Timing),
            &[HostSetup::platform(&intel_xeon())],
        );
        let b = profile(&quick(CpuModel::Timing), &[HostSetup::platform(&m1_pro())]);
        assert_eq!(a.guest.committed_insts, b.guest.committed_insts);
        assert_eq!(a.guest.sim_ticks, b.guest.sim_ticks);
    }

    #[test]
    fn cached_replay_equals_live_profile() {
        let hosts = [
            HostSetup::platform(&intel_xeon()),
            HostSetup::platform(&m1_pro()),
        ];
        let spec = quick(CpuModel::Minor);
        let live = profile(&spec, &hosts);
        // Same spec again: served by replay, must be indistinguishable.
        let replayed = profile(&spec, &hosts);
        assert_eq!(live.guest, replayed.guest);
        assert_eq!(live.hosts, replayed.hosts);
        assert_eq!(live.profile, replayed.profile);
    }

    #[test]
    fn functions_touched_grow_with_cpu_detail() {
        let host = [HostSetup::platform(&intel_xeon())];
        let counts: Vec<u64> = CpuModel::ALL
            .iter()
            .map(|&cpu| profile(&quick(cpu), &host).profile.functions_touched())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] < w[1]),
            "functions touched must grow with detail: {counts:?}"
        );
    }

    #[test]
    fn spec_profiles_run() {
        let hosts = [HostSetup::platform(&intel_xeon())];
        let stats = profile_spec(SpecBenchmark::X264, &hosts, 5000);
        assert_eq!(stats.len(), 1);
        assert!(stats[0].ipc() > 1.0);
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(quick(CpuModel::O3).label(), "O3_DEDUP");
        let pair = GuestSpec::new(
            Workload::Micro(Microbench::MemStride),
            Scale::Test,
            CpuModel::Timing,
            SimMode::Se,
        )
        .with_harts(4)
        .with_corun(Microbench::Alu);
        assert_eq!(pair.label(), "TIMING_MEM_STRIDE_VS_ALU_X4");
    }

    #[test]
    fn corun_profile_reports_parity_checksums() {
        let spec = GuestSpec::new(
            Workload::Micro(Microbench::MemStride),
            Scale::Test,
            CpuModel::Timing,
            SimMode::Se,
        )
        .with_harts(2)
        .with_corun(Microbench::Alu);
        let run = profile(&spec, &[HostSetup::platform(&intel_xeon())]);
        assert_eq!(
            run.guest.guest_checksums,
            vec![
                Microbench::MemStride.expected_checksum(Scale::Test),
                Microbench::Alu.expected_checksum(Scale::Test),
            ]
        );
        // The memoized replay serves the multi-hart spec too.
        let replayed = profile(&spec, &[HostSetup::platform(&intel_xeon())]);
        assert_eq!(run.guest, replayed.guest);
    }

    #[test]
    #[should_panic(expected = "requires a microbench workload")]
    fn corun_with_non_microbench_workload_panics() {
        let spec = quick(CpuModel::Atomic).with_corun(Microbench::Alu);
        let _ = profile(&spec, &[HostSetup::platform(&intel_xeon())]);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_hosts_panic() {
        let _ = profile(&quick(CpuModel::Atomic), &[]);
    }
}
