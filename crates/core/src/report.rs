//! Result tables: the textual equivalent of the paper's figures.

use std::fmt;

/// A labelled row of numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (workload, configuration, …).
    pub label: String,
    /// Values, one per column.
    pub values: Vec<f64>,
}

/// A figure-equivalent table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title (e.g. `"Fig. 2: Top-Down level 1"`).
    pub title: String,
    /// Column headers (excluding the row-label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
    /// Free-form notes (paper reference values, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Looks up a cell by row label and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let ci = self.columns.iter().position(|c| c == column)?;
        let r = self.rows.iter().find(|r| r.label == row)?;
        r.values.get(ci).copied()
    }

    /// The values of one column, in row order.
    pub fn column(&self, column: &str) -> Option<Vec<f64>> {
        let ci = self.columns.iter().position(|c| c == column)?;
        Some(self.rows.iter().map(|r| r.values[ci]).collect())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain([8])
            .max()
            .unwrap_or(8)
            .min(40);
        write!(f, "{:<label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>14}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:<label_w$}", r.label)?;
            for v in &r.values {
                if v.abs() >= 1000.0 {
                    write!(f, " {v:>14.0}")?;
                } else {
                    write!(f, " {v:>14.3}")?;
                }
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Geometric mean of a non-empty sequence of positive values.
///
/// Returns 0.0 for an empty iterator.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        debug_assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("Fig. X", vec!["a".into(), "b".into()]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row2", vec![3.0, 4.0]);
        t.note("paper: something");
        assert_eq!(t.get("row1", "b"), Some(2.0));
        assert_eq!(t.get("row2", "a"), Some(3.0));
        assert_eq!(t.get("rowX", "a"), None);
        assert_eq!(t.column("a"), Some(vec![1.0, 3.0]));
        let s = t.to_string();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("row2"));
        assert!(s.contains("note: paper"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push("r", vec![1.0, 2.0]);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean([]), 0.0);
        assert!((geomean([4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
