//! Parallel experiment execution: a std-only work-stealing thread pool
//! plus the guest-trace memoization cache.
//!
//! The figure matrix is embarrassingly parallel — Fig. 1 alone is
//! 9 workloads × 4 CPU models × platforms × co-run scenarios — but each
//! point was historically profiled sequentially. [`parallel_map`] fans a
//! work list across cores with scoped threads and work stealing, and the
//! [trace cache](cache_stats) makes each [`GuestSpec`] guest simulation
//! run at most once per process: its post-adapter event stream is
//! recorded and replayed into the host engines of every later profile of
//! the same spec.
//!
//! Determinism contract: `parallel_map(items, f)[i] == f(&items[i])`,
//! assembled in input order, for any thread count and any interleaving.
//! Profiling is deterministic per spec (replayed streams are exactly the
//! recorded streams), so whole figures are byte-identical whether built
//! on 1 thread or N.
//!
//! Thread count resolution order: [`with_threads`] override, then
//! [`set_threads`], then the `GEM5PROF_THREADS` environment variable,
//! then [`std::thread::available_parallelism`].

use crate::cache::ShardedLru;
use crate::experiment::GuestSpec;
use gem5sim::system::SimResult;
use gem5sim::ExecTier;
use hosttrace::record::TraceEvent;
use hosttrace::CallProfile;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

// ---------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The thread count [`parallel_map`] will use right now.
///
/// `GEM5PROF_THREADS=0` is not an error: it falls back to
/// [`std::thread::available_parallelism`] with a one-time warning, so
/// scripts can pass `0` to mean "auto".
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("GEM5PROF_THREADS") {
        match s.trim().parse::<usize>() {
            Ok(0) => {
                static WARNED: AtomicBool = AtomicBool::new(false);
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: GEM5PROF_THREADS=0 — falling back to available parallelism"
                    );
                }
            }
            Ok(n) => return n,
            Err(_) => {}
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the process-wide thread count (`0` restores auto-detection).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs `f` with the thread count pinned to `n`, restoring the previous
/// setting afterwards. Calls are serialized process-wide so concurrent
/// tests cannot observe each other's override.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static SERIAL: Mutex<()> = Mutex::new(());
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let prev = THREAD_OVERRIDE.swap(n, Ordering::Relaxed);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------
// Execution-tier configuration
// ---------------------------------------------------------------------

/// Process-wide exec-tier override: 0 = unset, 1 = interp, 2 = block.
static TIER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The guest execution tier [`crate::profile`] will configure right now.
///
/// Resolution order: [`with_exec_tier`] / [`set_exec_tier`] override,
/// then the `GEM5PROF_EXEC_TIER` environment variable (`interp` |
/// `block`), then the block tier. The tier never changes simulation
/// results — stats, traces and artifacts are byte-identical — so it is
/// deliberately *not* part of the memoization key.
pub fn exec_tier() -> ExecTier {
    match TIER_OVERRIDE.load(Ordering::Relaxed) {
        1 => return ExecTier::Interp,
        2 => return ExecTier::Block,
        _ => {}
    }
    if let Ok(s) = std::env::var("GEM5PROF_EXEC_TIER") {
        match s.trim().parse::<ExecTier>() {
            Ok(t) => return t,
            Err(e) => {
                static WARNED: AtomicBool = AtomicBool::new(false);
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!("warning: {e}; using the block tier");
                }
            }
        }
    }
    ExecTier::Block
}

fn encode_tier(t: ExecTier) -> usize {
    match t {
        ExecTier::Interp => 1,
        ExecTier::Block => 2,
    }
}

/// Sets the process-wide execution tier.
pub fn set_exec_tier(t: ExecTier) {
    TIER_OVERRIDE.store(encode_tier(t), Ordering::Relaxed);
}

/// Runs `f` with the execution tier pinned to `t`, restoring the
/// previous setting afterwards. Calls are serialized process-wide so
/// concurrent tests cannot observe each other's override.
pub fn with_exec_tier<R>(t: ExecTier, f: impl FnOnce() -> R) -> R {
    static SERIAL: Mutex<()> = Mutex::new(());
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let prev = TIER_OVERRIDE.swap(encode_tier(t), Ordering::Relaxed);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------
// Work-stealing parallel map
// ---------------------------------------------------------------------

/// A worker's slice of the index space: `[lo, hi)`.
struct Range {
    lo: usize,
    hi: usize,
}

/// Applies `f` to every item across [`threads`] scoped worker threads
/// and returns the results **in input order** — byte-identical to the
/// sequential `items.iter().map(f).collect()` regardless of scheduling.
///
/// The index space is split evenly into per-worker ranges; a worker pops
/// from the front of its own range and, when empty, steals the upper
/// half of the largest remaining victim range. Jobs here are coarse
/// (whole guest simulations / host replays), so the per-pop lock is
/// noise.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().min(n).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    // Keep logical span parentage across the fan-out: worker threads
    // re-root their spans under the caller's current span path, so a
    // `figure → profile → workload` chain survives the thread hop.
    let parent = gem5prof_obs::span::current_path();

    let ranges: Vec<Mutex<Range>> = (0..workers)
        .map(|w| {
            // Even split: worker w owns [w*n/workers, (w+1)*n/workers).
            Mutex::new(Range {
                lo: w * n / workers,
                hi: (w + 1) * n / workers,
            })
        })
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let pop_own = |me: usize| -> Option<usize> {
        let mut r = lock(&ranges[me]);
        if r.lo < r.hi {
            let i = r.lo;
            r.lo += 1;
            Some(i)
        } else {
            None
        }
    };
    let steal = |me: usize| -> Option<usize> {
        // Chaos point: a stalled queue hand-off. Timing only — the
        // determinism contract (input-order results) must hold through
        // arbitrary scheduling delays.
        if let Some(d) = gem5prof_chaos::delay("runner.queue_stall") {
            std::thread::sleep(d);
            gem5prof_chaos::recovered("runner.queue_stall");
        }
        // Pick the victim with the most remaining work, take its upper
        // half, then serve the first stolen index.
        let victim = (0..ranges.len()).filter(|&v| v != me).max_by_key(|&v| {
            let r = lock(&ranges[v]);
            r.hi.saturating_sub(r.lo)
        })?;
        let (lo, hi) = {
            let mut r = lock(&ranges[victim]);
            let len = r.hi.saturating_sub(r.lo);
            if len == 0 {
                return None;
            }
            let keep = len / 2;
            let stolen_lo = r.lo + keep;
            let stolen_hi = r.hi;
            r.hi = stolen_lo;
            (stolen_lo, stolen_hi)
        };
        {
            let mut mine = lock(&ranges[me]);
            mine.lo = lo + 1;
            mine.hi = hi;
        }
        Some(lo)
    };

    std::thread::scope(|scope| {
        for me in 0..workers {
            let slots = &slots;
            let f = &f;
            let pop_own = &pop_own;
            let steal = &steal;
            let parent = &parent;
            scope.spawn(move || {
                gem5prof_obs::span::with_parent(parent, || loop {
                    let i = match pop_own(me) {
                        Some(i) => i,
                        None => match steal(me) {
                            Some(i) => i,
                            None => break,
                        },
                    };
                    // Chaos point: one worker runs slow; the others must
                    // cover its tail via steals without reordering.
                    if let Some(d) = gem5prof_chaos::delay("runner.slow_worker") {
                        std::thread::sleep(d);
                        gem5prof_chaos::recovered("runner.slow_worker");
                    }
                    *lock(&slots[i]) = Some(f(&items[i]));
                })
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| panic!("slot {i} never produced"))
        })
        .collect()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Guest-trace memoization cache
// ---------------------------------------------------------------------

/// One memoized guest simulation: everything `profile` needs to serve a
/// later call for the same [`GuestSpec`] without touching the simulator.
#[derive(Debug)]
pub(crate) struct CachedGuest {
    /// Guest-side results (host-independent by construction).
    pub guest: SimResult,
    /// Host-function call profile accumulated by the adapter.
    pub profile: CallProfile,
    /// The complete post-adapter event stream, replayable into any host
    /// engine set.
    pub events: Vec<TraceEvent>,
}

/// Cap on cached events per guest simulation (~16 bytes/event → ≤128 MiB
/// per entry). Streams past the cap are profiled live but not cached.
pub(crate) const TRACE_CACHE_CAP: usize = 8_000_000;

/// Running totals for the trace cache, readable by tests and tools.
///
/// A flattened view of the shared [`CacheStats`] counters plus the
/// trace-cache-specific resident-event gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCacheStats {
    /// Profiles served by replaying a cached stream (no guest simulation).
    pub hits: u64,
    /// Profiles that ran the guest simulator.
    pub misses: u64,
    /// Streams inserted into the cache.
    pub insertions: u64,
    /// Events currently resident across all cached streams.
    pub resident_events: u64,
}

/// Entry bound for the trace cache. The spec space (workloads × scales
/// × CPU models × modes) is a few hundred points, so this never evicts
/// in practice; the bound exists so a pathological caller cannot grow
/// the cache without limit.
const TRACE_CACHE_ENTRIES: usize = 4096;

/// The memoized guest streams, sharded by spec hash so concurrent
/// profiles (the serving daemon's worker pool, `parallel_map` fan-outs)
/// stop serializing on one cache mutex. The embedded per-shard
/// [`crate::cache::CacheStats`] are the single source of truth for
/// [`cache_stats`], `/stats`, and `/metrics`.
fn cache() -> &'static ShardedLru<GuestSpec, Arc<CachedGuest>> {
    static CACHE: OnceLock<ShardedLru<GuestSpec, Arc<CachedGuest>>> = OnceLock::new();
    CACHE.get_or_init(|| {
        // First touch of the trace cache: surface its counters in the
        // metrics registry. The collector reads the same sharded-cache
        // counters the `/stats` endpoint reports, so there is exactly
        // one set of counters behind both views.
        gem5prof_obs::global().register_collector(Box::new(|| {
            let stats = cache_stats();
            let mut samples = cache().snapshot().metric_samples("gem5prof_trace_cache");
            samples.push(gem5prof_obs::Sample::plain(
                "gem5prof_trace_cache_resident_events",
                "events currently resident across all cached guest streams",
                gem5prof_obs::MetricKind::Gauge,
                stats.resident_events as f64,
            ));
            samples
        }));
        ShardedLru::with_default_shards(TRACE_CACHE_ENTRIES)
    })
}

pub(crate) fn cache_lookup(spec: &GuestSpec) -> Option<Arc<CachedGuest>> {
    cache().get(spec)
}

pub(crate) fn cache_insert(spec: GuestSpec, entry: CachedGuest) -> Arc<CachedGuest> {
    let entry = Arc::new(entry);
    cache().insert(spec, Arc::clone(&entry));
    entry
}

/// Current trace-cache counters.
pub fn cache_stats() -> TraceCacheStats {
    let mut resident: u64 = 0;
    cache().for_each(|_, e| resident += e.events.len() as u64);
    let snap = cache().snapshot();
    TraceCacheStats {
        hits: snap.hits,
        misses: snap.misses,
        insertions: snap.insertions,
        resident_events: resident,
    }
}

/// Empties the trace cache (counters keep running totals).
pub fn clear_cache() {
    cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for n in [1, 2, 3, 4, 7, 16, 400] {
            let got = with_threads(n, || parallel_map(&items, |x| x * x + 1));
            assert_eq!(got, expect, "threads={n}");
        }
    }

    #[test]
    fn parallel_map_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(with_threads(8, || parallel_map(&[42], |x| x + 1)), vec![43]);
    }

    #[test]
    fn stealing_covers_skewed_workloads() {
        // One item is vastly heavier than the rest; the other workers
        // must finish the tail via steals, and order must still hold.
        let items: Vec<u64> = (0..64).collect();
        let got = with_threads(4, || {
            parallel_map(&items, |&x| {
                if x == 0 {
                    (0..200_000u64).fold(x, |a, b| a ^ b.wrapping_mul(31))
                } else {
                    x
                }
            })
        });
        assert_eq!(got[1..], items[1..]);
    }

    #[test]
    fn thread_override_wins_over_env() {
        with_threads(3, || assert_eq!(threads(), 3));
    }

    #[test]
    fn parallel_map_is_correct_under_chaos_stalls() {
        // Injected stalls and slow workers perturb scheduling only; the
        // input-order determinism contract must survive them.
        gem5prof_chaos::arm(
            gem5prof_chaos::Plan::new(11)
                .with_prob(0.0)
                .with_point("runner.slow_worker", 0.25)
                .with_point("runner.queue_stall", 0.5),
        );
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let got = with_threads(4, || parallel_map(&items, |x| x * 3 + 1));
        gem5prof_chaos::disarm();
        assert_eq!(got, expect);
        let rep = gem5prof_chaos::report();
        let stalls: u64 = rep
            .iter()
            .filter(|r| r.point.starts_with("runner."))
            .map(|r| r.injected)
            .sum();
        assert!(stalls > 0, "97 items at p=0.25 must inject at least once");
    }
}
