//! Fig. 16: guest-MIPS matrix over the microbenchmark suite.
//!
//! Each cell is the *guest* instruction rate (committed instructions per
//! simulated second, in millions) of one microbenchmark variant under one
//! CPU model. The matrix separates the simulator's timing models along
//! the axes the microbenchmarks isolate — ALU throughput, branch
//! predictability, and memory locality — and every run is pinned by the
//! variant's deterministic guest checksum before its rate is reported.

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::Table;
use crate::runner::parallel_map;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::{Microbench, Workload};
use platforms::PlatformId;

/// Regenerates Fig. 16: rows are microbenchmark variants, columns the
/// four CPU models; values are guest MIPS (higher = the model charges
/// fewer guest ticks per instruction).
pub fn fig16(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig16");
    let xeon = PlatformId::IntelXeon.platform();
    let hosts = [HostSetup::platform(&xeon)];

    let columns: Vec<String> = CpuModel::ALL.iter().map(|c| c.label().into()).collect();
    let mut table = Table::new(
        "Fig. 16: guest MIPS per microbenchmark variant and CPU model",
        columns,
    );

    // variant × model fans out across the thread pool; assembly below is
    // in input order, so output is thread-count independent.
    let work: Vec<(Microbench, CpuModel)> = Microbench::ALL
        .iter()
        .flat_map(|&m| CpuModel::ALL.iter().map(move |&c| (m, c)))
        .collect();
    let rates: Vec<f64> = parallel_map(&work, |&(m, cpu)| {
        let spec = GuestSpec::new(Workload::Micro(m), f.scale(), cpu, SimMode::Se);
        let run = profile(&spec, &hosts);
        // Checksum guardrail: a wrong rate from a wrong execution is
        // worse than no figure at all.
        assert_eq!(
            run.guest.guest_checksums.first().copied(),
            Some(m.expected_checksum(f.scale())),
            "{m} under {} corrupted its guest checksum",
            cpu.label()
        );
        run.guest.committed_insts as f64 / run.guest.sim_seconds() / 1e6
    });

    for (r, &m) in Microbench::ALL.iter().enumerate() {
        let values = rates[r * CpuModel::ALL.len()..(r + 1) * CpuModel::ALL.len()].to_vec();
        table.push(m.name().to_string(), values);
    }

    table.note("guest MIPS = committed_insts / sim_seconds / 1e6; every cell checksum-verified");
    table.note("expected: mem_stride slowest under timing models (L1-defeating stride); branch_unpred pays squashes on MINOR/O3; superscalar O3 can exceed ATOMIC's 1-cycle charge on ALU code");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_matrix_orders_models_and_variants() {
        let t = fig16(Fidelity::Quick);
        assert_eq!(t.rows.len(), Microbench::ALL.len());
        for row in &t.rows {
            for col in &t.columns {
                let v = t.get(&row.label, col).unwrap();
                assert!(v > 0.0, "{}/{col}: rate {v} must be positive", row.label);
            }
        }
        // The L1-defeating stride pays real memory latency under Timing;
        // the sequential walk mostly hits.
        let seq = t.get("mem_seq", "TIMING").unwrap();
        let stride = t.get("mem_stride", "TIMING").unwrap();
        assert!(
            stride < seq,
            "mem_stride ({stride} MIPS) must run slower than mem_seq ({seq} MIPS) under TIMING"
        );
        // Mispredict squashes slow the unpredictable branch kernel on the
        // pipelined models; Atomic charges both kernels identically.
        let pred = t.get("branch_pred", "O3").unwrap();
        let unpred = t.get("branch_unpred", "O3").unwrap();
        assert!(
            unpred < pred,
            "branch_unpred ({unpred} MIPS) must run slower than branch_pred ({pred} MIPS) under O3"
        );
    }
}
