//! Figs. 7–9: platform comparison (IPC, TLB/L1/branch rates) and the
//! LLC/DRAM behaviour of gem5.

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::Table;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::Workload;
use platforms::PlatformId;

/// Fig. 7: host IPC and stall fraction when running `water_nsquared`
/// simulations on the three platforms.
pub fn fig07(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig07");
    let setups: Vec<HostSetup> = PlatformId::ALL
        .iter()
        .map(|p| HostSetup::platform(&p.platform()))
        .collect();
    let mut cols = Vec::new();
    for p in PlatformId::ALL {
        cols.push(format!("IPC@{}", p.name()));
    }
    for p in PlatformId::ALL {
        cols.push(format!("Stalled%@{}", p.name()));
    }
    let mut t = Table::new("Fig. 7: host IPC and stall fraction (water_nsquared)", cols);
    let cpus = [CpuModel::Atomic, CpuModel::Timing, CpuModel::O3];
    let rows: Vec<Vec<f64>> = crate::runner::parallel_map(&cpus, |&cpu| {
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, SimMode::Fs),
            &setups,
        );
        let mut vals: Vec<f64> = run.hosts.iter().map(|h| h.ipc()).collect();
        vals.extend(run.hosts.iter().map(|h| 100.0 * h.stalled_fraction()));
        vals
    });
    for (cpu, vals) in cpus.iter().zip(rows) {
        t.push(cpu.label(), vals);
    }
    t.note("paper: M1_Pro and M1_Ultra IPC are 2.22x and 2.24x Intel_Xeon's; Xeon stalls far more");
    t
}

/// Fig. 8: TLB, L1 and branch-prediction behaviour across platforms
/// (O3 simulation of `water_nsquared`).
pub fn fig08(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig08");
    let setups: Vec<HostSetup> = PlatformId::ALL
        .iter()
        .map(|p| HostSetup::platform(&p.platform()))
        .collect();
    let run = profile(
        &GuestSpec::new(
            Workload::WaterNsquared,
            f.scale(),
            CpuModel::O3,
            SimMode::Fs,
        ),
        &setups,
    );
    let mut t = Table::new(
        "Fig. 8: TLB / L1 / branch rates (O3 water_nsquared, %)",
        PlatformId::ALL
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
    );
    let metric = |g: &dyn Fn(&hostmodel::HostRunStats) -> f64| -> Vec<f64> {
        run.hosts.iter().map(|h| 100.0 * g(h)).collect()
    };
    t.push("iTLB miss rate", metric(&|h| h.itlb_miss_rate));
    t.push("dTLB miss rate", metric(&|h| h.dtlb_miss_rate));
    t.push("L1I miss rate", metric(&|h| h.l1i_miss_rate));
    t.push("L1D miss rate", metric(&|h| h.l1d_miss_rate));
    t.push("Branch mispredict", metric(&|h| h.branch_mispredict_rate));
    t.note("paper: Xeon iTLB and dTLB miss rates are 11.7x and 10.5x M1_Ultra's");
    t.note(
        "paper: M1 dCache miss rate is 10.1-13.4x lower; mispredict 0.22% (Xeon) vs ~0.14% (M1)",
    );
    t
}

/// Fig. 9: LLC occupancy and DRAM bandwidth of a single gem5 process on
/// `Intel_Xeon`, per CPU model and mode.
pub fn fig09(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig09");
    let xeon = [HostSetup::platform(&platforms::intel_xeon())];
    let mut t = Table::new(
        "Fig. 9: LLC occupancy and DRAM bandwidth on Intel_Xeon",
        ["LLC-KB", "DRAM-MB/s"].map(String::from).to_vec(),
    );
    let work: Vec<(SimMode, CpuModel)> = [SimMode::Fs, SimMode::Se]
        .iter()
        .flat_map(|&mode| CpuModel::ALL.iter().map(move |&cpu| (mode, cpu)))
        .collect();
    let rows: Vec<Vec<f64>> = crate::runner::parallel_map(&work, |&(mode, cpu)| {
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, mode),
            &xeon,
        );
        let h = &run.hosts[0];
        vec![
            h.llc_occupancy_bytes as f64 / 1024.0,
            h.dram_bandwidth() / 1e6,
        ]
    });
    for (&(mode, cpu), vals) in work.iter().zip(rows) {
        t.push(format!("{}_{}", cpu.label(), mode.label()), vals);
    }
    t.note("paper: LLC occupancy 255KB-3.1MB, growing with simulation detail; DRAM bandwidth negligible");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_ipc_advantage_holds() {
        let t = fig07(Fidelity::Quick);
        for cpu in ["ATOMIC", "TIMING", "O3"] {
            let xeon = t.get(cpu, "IPC@Intel_Xeon").unwrap();
            let ultra = t.get(cpu, "IPC@M1_Ultra").unwrap();
            let ratio = ultra / xeon;
            assert!(
                ratio > 1.4 && ratio < 4.0,
                "{cpu}: M1/Xeon IPC ratio {ratio:.2} out of range"
            );
            let xeon_stall = t.get(cpu, "Stalled%@Intel_Xeon").unwrap();
            let ultra_stall = t.get(cpu, "Stalled%@M1_Ultra").unwrap();
            assert!(xeon_stall > ultra_stall);
        }
    }

    #[test]
    fn xeon_tlb_rates_dwarf_m1() {
        let t = fig08(Fidelity::Quick);
        let xeon_itlb = t.get("iTLB miss rate", "Intel_Xeon").unwrap();
        let ultra_itlb = t.get("iTLB miss rate", "M1_Ultra").unwrap();
        assert!(
            xeon_itlb > 4.0 * ultra_itlb,
            "iTLB: xeon {xeon_itlb}% vs ultra {ultra_itlb}%"
        );
        let xeon_l1d = t.get("L1D miss rate", "Intel_Xeon").unwrap();
        let ultra_l1d = t.get("L1D miss rate", "M1_Ultra").unwrap();
        assert!(xeon_l1d > 2.0 * ultra_l1d);
        let xeon_bp = t.get("Branch mispredict", "Intel_Xeon").unwrap();
        let ultra_bp = t.get("Branch mispredict", "M1_Ultra").unwrap();
        assert!(xeon_bp > ultra_bp, "bp: {xeon_bp} vs {ultra_bp}");
    }

    #[test]
    fn llc_occupancy_grows_with_detail_and_dram_bw_is_negligible() {
        let t = fig09(Fidelity::Quick);
        let atomic = t.get("ATOMIC_FS", "LLC-KB").unwrap();
        let o3 = t.get("O3_FS", "LLC-KB").unwrap();
        assert!(o3 > atomic, "O3 {o3}KB vs Atomic {atomic}KB");
        for row in &t.rows {
            let bw = t.get(&row.label, "DRAM-MB/s").unwrap();
            assert!(
                bw < 2000.0,
                "{}: DRAM bandwidth {bw} MB/s should be tiny",
                row.label
            );
        }
    }
}
