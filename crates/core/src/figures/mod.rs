//! Regeneration of every figure and table in the paper's evaluation.
//!
//! Each `figNN` function runs the required simulations and returns a
//! [`Table`] holding the same rows/series the paper
//! plots, with the paper's reference values attached as notes. The
//! `EXPERIMENTS.md` file at the repository root records paper-vs-measured
//! for each.
//!
//! [`Table`]: crate::report::Table

mod fig01;
mod fig14;
mod fig15;
mod fig16;
mod fig17;
mod frontend;
mod platform;
mod tables;
mod tuning;

pub use fig01::fig01;
pub use fig14::fig14;
pub use fig15::{fig15, fig15_hottest};
pub use fig16::fig16;
pub use fig17::fig17;
pub use frontend::{fig02, fig03, fig04, fig05, fig06};
pub use platform::{fig07, fig08, fig09};
pub use tables::{table1, table2};
pub use tuning::{fig10, fig11, fig12, fig13};

use crate::report::Table;
use gem5sim_workloads::{Scale, Workload};

/// How much work to spend regenerating a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Small inputs, reduced workload sets — for tests and Criterion
    /// benches. Trends hold; absolute noise is larger.
    #[default]
    Quick,
    /// The full workload grid at `simsmall`-equivalent inputs (the
    /// default for the `repro` binary).
    Paper,
}

impl Fidelity {
    /// Guest input scale.
    pub fn scale(self) -> Scale {
        match self {
            Fidelity::Quick => Scale::Test,
            Fidelity::Paper => Scale::SimSmall,
        }
    }

    /// PARSEC/SPLASH workload set for multi-workload figures.
    pub fn workloads(self) -> &'static [Workload] {
        match self {
            Fidelity::Quick => &[Workload::WaterNsquared, Workload::Canneal, Workload::Dedup],
            Fidelity::Paper => &Workload::PARSEC,
        }
    }

    /// SPEC trace length in records.
    pub fn spec_records(self) -> u64 {
        match self {
            Fidelity::Quick => 40_000,
            Fidelity::Paper => 250_000,
        }
    }
}

/// Every figure in order — used by the `repro` binary's `all` command.
pub fn all_figures(f: Fidelity) -> Vec<Table> {
    vec![
        table1(),
        table2(),
        fig01(f),
        fig02(f),
        fig03(f),
        fig04(f),
        fig05(f),
        fig06(f),
        fig07(f),
        fig08(f),
        fig09(f),
        fig10(f),
        fig11(f),
        fig12(f),
        fig13(f),
        fig14(f),
        fig15(f),
        fig16(f),
        fig17(f),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_scales() {
        assert_eq!(Fidelity::Quick.scale(), Scale::Test);
        assert_eq!(Fidelity::Paper.scale(), Scale::SimSmall);
        assert_eq!(Fidelity::Quick.workloads().len(), 3);
        assert_eq!(Fidelity::Paper.workloads().len(), 9);
    }
}
