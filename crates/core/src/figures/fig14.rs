//! Fig. 14: gem5's sensitivity to the *host's* cache configuration
//! (the FireSim study).

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::Table;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::Workload;
use platforms::firesim;

/// Regenerates Fig. 14: simulation speedup of the Sieve-of-Eratosthenes
/// run on gem5, for each host cache configuration, relative to the
/// `8KB/2 : 8KB/2 : 512KB/8` baseline — on the Table I FireSim host.
pub fn fig14(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig14");
    let sweep = firesim::fig14_sweep();
    let setups: Vec<HostSetup> = sweep.iter().cloned().map(HostSetup::raw).collect();
    let cpus = [CpuModel::Atomic, CpuModel::Timing, CpuModel::O3];

    let mut t = Table::new(
        "Fig. 14: speedup vs (8KB/2:8KB/2:512KB/8) host baseline (%)",
        cpus.iter().map(|c| c.label().to_string()).collect(),
    );
    // seconds[cpu][config]
    let secs: Vec<Vec<f64>> = crate::runner::parallel_map(&cpus, |&cpu| {
        let run = profile(
            &GuestSpec::new(Workload::Sieve, f.scale(), cpu, SimMode::Se),
            &setups,
        );
        run.hosts.iter().map(|h| h.seconds()).collect()
    });
    for (ci, cfg) in sweep.iter().enumerate() {
        let vals: Vec<f64> = (0..cpus.len())
            .map(|k| 100.0 * (secs[k][0] / secs[k][ci] - 1.0))
            .collect();
        t.push(cfg.name.clone(), vals);
    }
    t.note("paper: 16KB L1s cut Atomic/Timing/O3 time by 30/25/18%; doubling L2 1->2MB has almost no effect");
    t.note("paper: best config 64KB/16 improves speed 68.7/68.2/43.8%; 32KB L1s give the abstract's 31-61%");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_size_dominates_l2_size() {
        let t = fig14(Fidelity::Quick);
        // Baseline row is 0% by construction.
        let base = &t.rows[0];
        assert!(base.values.iter().all(|v| v.abs() < 1e-9));

        // Growing L1s monotonically helps every CPU model.
        let s16 = t.get("16KB/4:16KB/4:512KB/8", "ATOMIC").unwrap();
        let s32 = t.get("32KB/8:32KB/8:512KB/8", "ATOMIC").unwrap();
        let s64 = t.get("64KB/16:64KB/16:512KB/8", "ATOMIC").unwrap();
        assert!(s16 > 5.0, "16KB speedup {s16}%");
        assert!(s32 > s16 && s64 > s32, "monotone: {s16} {s32} {s64}");

        // Doubling L2 from 1MB to 2MB is nearly free of effect.
        let l2_1m = t.get("32KB/8:32KB/8:1024KB/8", "O3").unwrap();
        let l2_2m = t.get("32KB/8:32KB/8:2048KB/8", "O3").unwrap();
        assert!(
            (l2_2m - l2_1m).abs() < 6.0,
            "L2 doubling should barely matter: {l2_1m}% vs {l2_2m}%"
        );
    }

    #[test]
    fn o3_benefits_less_than_simple_models() {
        let t = fig14(Fidelity::Quick);
        let atomic = t.get("64KB/16:64KB/16:512KB/8", "ATOMIC").unwrap();
        let o3 = t.get("64KB/16:64KB/16:512KB/8", "O3").unwrap();
        assert!(
            atomic > o3,
            "paper: Atomic gains more from L1 growth than O3 ({atomic}% vs {o3}%)"
        );
    }
}
