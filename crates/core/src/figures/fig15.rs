//! Fig. 15: CDF of the hottest functions — "there is no killer function
//! in gem5".

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::Table;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::Workload;
use platforms::intel_xeon;

/// Regenerates Fig. 15: for each CPU model, the share of the hottest
/// function, the cumulative share of the 10 and 50 hottest, and the total
/// number of distinct functions called.
pub fn fig15(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig15");
    let xeon = [HostSetup::platform(&intel_xeon())];
    // Functions-touched counts grow with run length (cold paths keep
    // being discovered); the paper ran simmedium inputs, so Paper
    // fidelity uses the largest scale here.
    let scale = match f {
        super::Fidelity::Quick => f.scale(),
        super::Fidelity::Paper => gem5sim_workloads::Scale::SimMedium,
    };
    let mut t = Table::new(
        "Fig. 15: hot-function CDF and functions touched (water_nsquared)",
        ["Hottest%", "Top10%", "Top50%", "FunctionsTouched"]
            .map(String::from)
            .to_vec(),
    );
    let rows: Vec<Vec<f64>> = crate::runner::parallel_map(&CpuModel::ALL, |&cpu| {
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, scale, cpu, SimMode::Fs),
            &xeon,
        );
        let cdf = run.profile.hottest_cdf(50);
        vec![
            100.0 * cdf.first().copied().unwrap_or(0.0),
            100.0 * cdf.get(9).copied().unwrap_or(0.0),
            100.0 * cdf.get(49).copied().unwrap_or(0.0),
            run.profile.functions_touched() as f64,
        ]
    });
    for (cpu, vals) in CpuModel::ALL.iter().zip(rows) {
        t.push(cpu.label(), vals);
    }
    t.note("paper: hottest function is 10.1/8.5/2.9/4.2% of time for Atomic/Timing/Minor/O3");
    t.note("paper: functions called = 1602/2557/3957/5209 for Atomic/Timing/Minor/O3");
    t
}

/// The named hottest-function list for one CPU model (the identity of the
/// hot handlers, for inspection).
pub fn fig15_hottest(f: Fidelity, cpu: CpuModel, n: usize) -> Vec<(String, u64, f64)> {
    let xeon = [HostSetup::platform(&intel_xeon())];
    let run = profile(
        &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, SimMode::Fs),
        &xeon,
    );
    run.profile.hottest(&run.registry, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_flattens_and_functions_grow_with_detail() {
        let t = fig15(Fidelity::Quick);
        let hottest: Vec<f64> = t.column("Hottest%").unwrap();
        let funcs: Vec<f64> = t.column("FunctionsTouched").unwrap();
        // Functions touched strictly grows with detail (paper:
        // 1602 -> 2557 -> 3957 -> 5209).
        assert!(
            funcs.windows(2).all(|w| w[0] < w[1]),
            "functions: {funcs:?}"
        );
        // The hottest function's share shrinks from Atomic/Timing to
        // Minor/O3 (the CDF flattens).
        assert!(
            hottest[0] > hottest[3],
            "Atomic hottest {} vs O3 hottest {}",
            hottest[0],
            hottest[3]
        );
        // No killer function anywhere.
        assert!(hottest.iter().all(|&h| h < 25.0), "{hottest:?}");
    }

    #[test]
    fn hottest_functions_are_event_loop_and_cpu_handlers() {
        let top = fig15_hottest(Fidelity::Quick, CpuModel::Atomic, 10);
        assert_eq!(top.len(), 10);
        assert!(
            top.iter().any(|(name, _, _)| name.contains("EventQueue")
                || name.contains("CpuAtomic")
                || name.contains("Decoder")),
            "expected simulator handlers among the hottest, got {top:?}"
        );
        // Shares are sorted descending.
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
