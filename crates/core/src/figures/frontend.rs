//! Figs. 2–6: the Top-Down front-end study of gem5 vs SPEC on
//! `Intel_Xeon`.

use super::Fidelity;
use crate::experiment::{profile, profile_spec, GuestSpec, HostSetup};
use crate::report::Table;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::Workload;
use hostmodel::HostRunStats;
use platforms::intel_xeon;
use specgen::SpecBenchmark;

struct Case {
    label: String,
    stats: HostRunStats,
}

/// The paper's Fig. 2 row set: four CPU models × {Boot-Exit, PARSEC
/// (water_nsquared as the representative)} plus the three SPEC
/// references, all on `Intel_Xeon`.
fn cases(f: Fidelity) -> Vec<Case> {
    enum Point {
        Gem5(CpuModel, Workload, &'static str),
        Spec(SpecBenchmark),
    }
    let mut work = Vec::new();
    for cpu in [
        CpuModel::O3,
        CpuModel::Minor,
        CpuModel::Timing,
        CpuModel::Atomic,
    ] {
        for (wl, tag) in [
            (Workload::BootExit, "BOOT_EXIT"),
            (Workload::WaterNsquared, "PARSEC"),
        ] {
            work.push(Point::Gem5(cpu, wl, tag));
        }
    }
    for b in SpecBenchmark::ALL {
        work.push(Point::Spec(b));
    }
    crate::runner::parallel_map(&work, |point| {
        let xeon = [HostSetup::platform(&intel_xeon())];
        match *point {
            Point::Gem5(cpu, wl, tag) => {
                let run = profile(&GuestSpec::new(wl, f.scale(), cpu, SimMode::Fs), &xeon);
                Case {
                    label: format!("{}_{}", cpu.label(), tag),
                    stats: run.hosts.into_iter().next().expect("one host"),
                }
            }
            Point::Spec(b) => {
                let stats = profile_spec(b, &xeon, f.spec_records());
                Case {
                    label: b.name().to_uppercase(),
                    stats: stats.into_iter().next().expect("one host"),
                }
            }
        }
    })
}

/// Fig. 2: Top-Down level-1 breakdown (percent of cycles).
pub fn fig02(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig02");
    let mut t = Table::new(
        "Fig. 2: Top-Down level 1 on Intel_Xeon (% of cycles)",
        ["Retiring", "FrontEnd", "BadSpec", "BackEnd"]
            .map(String::from)
            .to_vec(),
    );
    for c in cases(f) {
        let (r, fe, bs, be) = c.stats.topdown.level1_pct();
        t.push(c.label, vec![r, fe, bs, be]);
    }
    t.note("paper: gem5 retiring 43.5-64.7%, front-end 30.1-41.5%, back-end 0.9-11.3%");
    t.note("paper: SPEC retiring 13.2-82.2%; 505.mcf_r back-end 53.7%");
    t
}

/// Fig. 3: front-end bound cycles split into latency vs bandwidth.
pub fn fig03(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig03");
    let mut t = Table::new(
        "Fig. 3: front-end latency vs bandwidth (% of cycles)",
        ["FE-Latency", "FE-Bandwidth"].map(String::from).to_vec(),
    );
    for c in cases(f) {
        let td = &c.stats.topdown;
        t.push(
            c.label,
            vec![
                td.pct(td.fe_latency.total()),
                td.pct(td.fe_bandwidth.total()),
            ],
        );
    }
    t.note("paper: simple CPU models skew bandwidth-bound; detailed models become latency-bound");
    t
}

/// Fig. 4: front-end *latency* breakdown.
pub fn fig04(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig04");
    let mut t = Table::new(
        "Fig. 4: front-end latency breakdown (% of cycles)",
        [
            "iCacheMiss",
            "iTLBMiss",
            "MispredResteer",
            "ClearResteer",
            "UnknownBranch",
        ]
        .map(String::from)
        .to_vec(),
    );
    for c in cases(f) {
        let td = &c.stats.topdown;
        let l = &td.fe_latency;
        t.push(
            c.label,
            vec![
                td.pct(l.icache),
                td.pct(l.itlb),
                td.pct(l.mispredict_resteers),
                td.pct(l.clear_resteers),
                td.pct(l.unknown_branches),
            ],
        );
    }
    t.note("paper: O3/Minor have up to 11x the iCache miss cycles of Atomic; iTLB stalls high for all gem5 runs");
    t.note("paper: O3/Minor aggregate branch overhead 6.0x/4.7x Atomic's; unknown branches grow with detail");
    t.note("paper: for SPEC, mispredict resteers + unknown branches are 43.5-73.6% of FE latency");
    t
}

/// Fig. 5: front-end *bandwidth* breakdown (shares of bandwidth-bound
/// cycles).
pub fn fig05(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig05");
    let mut t = Table::new(
        "Fig. 5: front-end bandwidth breakdown (% of FE-bandwidth cycles)",
        ["MITE", "DSB"].map(String::from).to_vec(),
    );
    for c in cases(f) {
        let bw = &c.stats.topdown.fe_bandwidth;
        let total = bw.total();
        let (m, d) = if total > 0.0 {
            (100.0 * bw.mite / total, 100.0 * bw.dsb / total)
        } else {
            (0.0, 0.0)
        };
        t.push(c.label, vec![m, d]);
    }
    t.note("paper: 92-97% of gem5's bandwidth-bound cycles wait on MITE; <7% on DSB");
    t
}

/// Fig. 6: DSB (µop cache) coverage.
pub fn fig06(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig06");
    let mut t = Table::new(
        "Fig. 6: DSB coverage (% of uops from the uop cache)",
        ["DSBCoverage"].map(String::from).to_vec(),
    );
    for c in cases(f) {
        t.push(c.label, vec![100.0 * c.stats.dsb_coverage]);
    }
    t.note("paper: gem5's DSB coverage is far below SPEC's regardless of CPU type or workload");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_cases() -> Vec<Case> {
        cases(Fidelity::Quick)
    }

    #[test]
    fn gem5_is_front_end_bound_spec_is_not_uniformly() {
        let t = fig02(Fidelity::Quick);
        let gem5_fe = t.get("O3_PARSEC", "FrontEnd").unwrap();
        let x264_fe = t.get("525.X264_R", "FrontEnd").unwrap();
        assert!(
            gem5_fe > 2.0 * x264_fe,
            "gem5 FE {gem5_fe}% must dwarf x264's {x264_fe}%"
        );
        let mcf_be = t.get("505.MCF_R", "BackEnd").unwrap();
        let gem5_be = t.get("O3_PARSEC", "BackEnd").unwrap();
        assert!(
            mcf_be > 3.0 * gem5_be,
            "mcf BE {mcf_be}% vs gem5 {gem5_be}%"
        );
    }

    #[test]
    fn detail_shifts_frontend_toward_latency() {
        let t = fig03(Fidelity::Quick);
        let frac = |label: &str| {
            let l = t.get(label, "FE-Latency").unwrap();
            let b = t.get(label, "FE-Bandwidth").unwrap();
            l / (l + b)
        };
        assert!(
            frac("O3_PARSEC") > frac("ATOMIC_PARSEC"),
            "O3 {} vs Atomic {}",
            frac("O3_PARSEC"),
            frac("ATOMIC_PARSEC")
        );
    }

    #[test]
    fn gem5_bandwidth_stalls_are_mite_dominated() {
        let t = fig05(Fidelity::Quick);
        for label in ["O3_PARSEC", "ATOMIC_PARSEC", "TIMING_BOOT_EXIT"] {
            let mite = t.get(label, "MITE").unwrap();
            assert!(mite > 75.0, "{label}: MITE share {mite}%");
        }
    }

    #[test]
    fn gem5_dsb_coverage_below_spec() {
        let t = fig06(Fidelity::Quick);
        let gem5 = t.get("O3_PARSEC", "DSBCoverage").unwrap();
        let x264 = t.get("525.X264_R", "DSBCoverage").unwrap();
        assert!(gem5 < 35.0, "gem5 coverage {gem5}%");
        assert!(x264 > 80.0, "x264 coverage {x264}%");
    }

    #[test]
    fn icache_misses_grow_with_detail() {
        let t = fig04(Fidelity::Quick);
        let o3 = t.get("O3_PARSEC", "iCacheMiss").unwrap();
        let atomic = t.get("ATOMIC_PARSEC", "iCacheMiss").unwrap();
        assert!(o3 > atomic, "O3 {o3}% vs Atomic {atomic}%");
        let itlb = t.get("ATOMIC_PARSEC", "iTLBMiss").unwrap();
        assert!(itlb > 0.5, "iTLB stalls present even for Atomic: {itlb}%");
    }

    #[test]
    fn case_labels_are_unique() {
        let cs = approx_cases();
        let mut labels: Vec<&str> = cs.iter().map(|c| c.label.as_str()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 11);
    }
}
