//! Fig. 1: normalized simulation time across platforms and co-run
//! scenarios.

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::{geomean, Table};
use crate::runner::parallel_map;
use gem5sim::config::{CpuModel, SimMode};
use hostmodel::CorunScenario;
use platforms::{PlatformId, SystemKnobs};

/// The (mode, CPU) rows shown in Fig. 1's sub-graphs.
const ROWS: [(SimMode, CpuModel); 4] = [
    (SimMode::Se, CpuModel::Atomic),
    (SimMode::Se, CpuModel::O3),
    (SimMode::Fs, CpuModel::Atomic),
    (SimMode::Fs, CpuModel::O3),
];

fn scenario_for(p: &platforms::Platform, which: usize) -> CorunScenario {
    match which {
        0 => CorunScenario::Single,
        1 => CorunScenario::PerPhysicalCore {
            procs: p.physical_cores,
        },
        // M1 parts have no SMT: "per hardware thread" equals per core.
        _ if !p.smt => CorunScenario::PerPhysicalCore {
            procs: p.physical_cores,
        },
        _ => CorunScenario::PerHardwareThread {
            procs: p.hw_threads,
        },
    }
}

/// Regenerates Fig. 1: per scenario, the geometric mean over the PARSEC /
/// SPLASH-2x workloads of each platform's simulation time normalized to
/// `Intel_Xeon` in the same scenario (lower is better; Xeon ≡ 1).
pub fn fig01(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig01");
    let platforms: Vec<_> = PlatformId::ALL.iter().map(|p| p.platform()).collect();
    let scenarios = ["single", "per-phys-core", "per-hw-thread"];

    // Host setups: platform × scenario (9 engines per guest run).
    let mut setups = Vec::new();
    for p in &platforms {
        for s in 0..3 {
            let knobs = SystemKnobs::new().with_corun(scenario_for(p, s));
            setups.push(HostSetup::with_knobs(p, &knobs));
        }
    }

    let mut columns = Vec::new();
    for s in scenarios {
        for p in &platforms {
            columns.push(format!("{}@{s}", p.id.name()));
        }
    }
    let mut table = Table::new(
        "Fig. 1: simulation time normalized to Intel_Xeon (geomean over workloads)",
        columns,
    );

    // The full (row, workload) matrix fans out across the thread pool;
    // assembly below is in input order, so output is thread-count
    // independent.
    let work: Vec<(SimMode, CpuModel, gem5sim_workloads::Workload)> = ROWS
        .iter()
        .flat_map(|&(mode, cpu)| f.workloads().iter().map(move |&w| (mode, cpu, w)))
        .collect();
    let runs: Vec<Vec<f64>> = parallel_map(&work, |&(mode, cpu, w)| {
        let run = profile(&GuestSpec::new(w, f.scale(), cpu, mode), &setups);
        run.hosts.iter().map(|h| h.seconds()).collect()
    });

    let nw = f.workloads().len();
    for (r, &(mode, cpu)) in ROWS.iter().enumerate() {
        // seconds[setup][workload]
        let mut secs: Vec<Vec<f64>> = vec![Vec::new(); setups.len()];
        for wi in 0..nw {
            for (i, s) in runs[r * nw + wi].iter().enumerate() {
                secs[i].push(*s);
            }
        }
        let mut values = Vec::new();
        for s in 0..3 {
            // Xeon is platform index 0.
            let xeon_idx = s;
            for p in 0..platforms.len() {
                let idx = p * 3 + s;
                let ratios = secs[idx].iter().zip(&secs[xeon_idx]).map(|(m, x)| m / x);
                values.push(geomean(ratios));
            }
        }
        table.push(format!("{}_{}", mode.label(), cpu.label()), values);
    }

    table.note("paper: M1 platforms are 1.7x-3.02x faster single-process (normalized time 0.33-0.59); up to 4.15x when co-running (0.24)");
    table.note("paper: Xeon with SMT off is ~47% faster per process than with SMT on");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_wins_and_corun_widens_the_gap() {
        let t = fig01(Fidelity::Quick);
        for row in &t.rows {
            let xeon = t.get(&row.label, "Intel_Xeon@single").unwrap();
            assert!((xeon - 1.0).abs() < 1e-9, "Xeon is the unit baseline");
            let pro = t.get(&row.label, "M1_Pro@single").unwrap();
            let ultra = t.get(&row.label, "M1_Ultra@single").unwrap();
            assert!(pro < 1.0, "{}: M1_Pro {pro} must beat Xeon", row.label);
            assert!(
                ultra < 1.0,
                "{}: M1_Ultra {ultra} must beat Xeon",
                row.label
            );

            let ultra_smt = t.get(&row.label, "M1_Ultra@per-hw-thread").unwrap();
            assert!(
                ultra_smt < ultra + 0.15,
                "{}: co-run should not erase the M1 advantage ({ultra_smt} vs {ultra})",
                row.label
            );
        }
    }
}
