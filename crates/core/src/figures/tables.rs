//! Tables I and II: configuration tables, rendered from the same structs
//! the experiments use (so the tables cannot drift from the models).

use crate::report::Table;
use platforms::{firesim, PlatformId};

/// Table I: the FireSim base hardware configuration.
pub fn table1() -> Table {
    let _span = gem5prof_obs::span("table1");
    let b = firesim::base();
    let mut t = Table::new(
        "Table I: base hardware configuration on FireSim",
        ["Value"].map(String::from).to_vec(),
    );
    t.push("Core frequency (GHz)", vec![b.freq_ghz]);
    t.push("Superscalar width", vec![b.width as f64]);
    t.push("L1I (KB)", vec![b.l1i.size as f64 / 1024.0]);
    t.push("L1D (KB)", vec![b.l1d.size as f64 / 1024.0]);
    t.push("L2 (KB)", vec![b.l2.size as f64 / 1024.0]);
    t.push("BTB entries", vec![b.btb_entries as f64]);
    t.push("iTLB entries", vec![b.itlb_entries as f64]);
    t.push("Cache line (B)", vec![b.line as f64]);
    t.push("Page size (B)", vec![b.page as f64]);
    t.note("paper Table I: 4GHz, 8-wide, ROB/IQ/LQ/SQ=192/64/32/32, TournamentBP/4096 BTB, 48KB(I)+32KB(D), DDR3-1600");
    t
}

/// Table II: the evaluation platforms.
pub fn table2() -> Table {
    let _span = gem5prof_obs::span("table2");
    let mut t = Table::new(
        "Table II: evaluation platforms",
        PlatformId::ALL
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
    );
    let ps: Vec<_> = PlatformId::ALL.iter().map(|p| p.platform()).collect();
    let row = |g: &dyn Fn(&platforms::Platform) -> f64| -> Vec<f64> { ps.iter().map(g).collect() };
    t.push("Physical cores", row(&|p| p.physical_cores as f64));
    t.push("Hardware threads", row(&|p| p.hw_threads as f64));
    t.push("Max freq (GHz)", row(&|p| p.config.freq_ghz));
    t.push(
        "L1I per core (KB)",
        row(&|p| p.config.l1i.size as f64 / 1024.0),
    );
    t.push(
        "L1D per core (KB)",
        row(&|p| p.config.l1d.size as f64 / 1024.0),
    );
    t.push("L2 (MB)", row(&|p| p.config.l2.size as f64 / 1048576.0));
    t.push("LLC (MB)", row(&|p| p.config.llc.size as f64 / 1048576.0));
    t.push("Cache line (B)", row(&|p| p.config.line as f64));
    t.push("VM page size (KB)", row(&|p| p.page_size as f64 / 1024.0));
    t.push("SMT", row(&|p| p.smt as u64 as f64));
    t.note("paper Table II: Xeon Gold 6242R 20C/40T 3.1GHz(4.1 TB) 32+32KB L1 4KB pages; M1 P-cores 192+128KB L1 16KB pages 128B lines");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        assert_eq!(t.get("Core frequency (GHz)", "Value"), Some(4.0));
        assert_eq!(t.get("Superscalar width", "Value"), Some(8.0));
        assert_eq!(t.get("L1I (KB)", "Value"), Some(48.0));
        assert_eq!(t.get("L1D (KB)", "Value"), Some(32.0));
        assert_eq!(t.get("BTB entries", "Value"), Some(4096.0));
    }

    #[test]
    fn table2_matches_paper_values() {
        let t = table2();
        assert_eq!(t.get("Physical cores", "Intel_Xeon"), Some(20.0));
        assert_eq!(t.get("Hardware threads", "Intel_Xeon"), Some(40.0));
        assert_eq!(t.get("L1I per core (KB)", "M1_Pro"), Some(192.0));
        assert_eq!(t.get("L1D per core (KB)", "M1_Ultra"), Some(128.0));
        assert_eq!(t.get("VM page size (KB)", "M1_Pro"), Some(16.0));
        assert_eq!(t.get("Cache line (B)", "M1_Ultra"), Some(128.0));
        assert_eq!(t.get("SMT", "Intel_Xeon"), Some(1.0));
        assert_eq!(t.get("SMT", "M1_Pro"), Some(0.0));
    }
}
