//! Figs. 10–13: system tuning — huge pages, `-O3`, frequency.

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::Table;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::Workload;
use platforms::{intel_xeon, PlatformId, SystemKnobs};

/// Fig. 10: speedup from backing gem5's code with huge pages
/// (THP via iodlr-style remapping, EHP via libhugetlbfs) on `Intel_Xeon`.
pub fn fig10(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig10");
    let xeon = intel_xeon();
    let setups = [
        HostSetup::with_knobs(&xeon, &SystemKnobs::new()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_thp()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_ehp()),
    ];
    let mut t = Table::new(
        "Fig. 10: huge-page speedup on Intel_Xeon (%)",
        ["THP", "EHP"].map(String::from).to_vec(),
    );
    let rows: Vec<Vec<f64>> = crate::runner::parallel_map(&CpuModel::ALL, |&cpu| {
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, SimMode::Fs),
            &setups,
        );
        let base = run.hosts[0].seconds();
        let speedup = |i: usize| 100.0 * (base / run.hosts[i].seconds() - 1.0);
        vec![speedup(1), speedup(2)]
    });
    for (cpu, vals) in CpuModel::ALL.iter().zip(rows) {
        t.push(cpu.label(), vals);
    }
    t.note("paper: up to 5.9% speedup; small for Atomic/Timing, larger for Minor/O3");
    t
}

/// Fig. 11: improvement in iTLB overhead and retiring cycles with THP.
pub fn fig11(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig11");
    let xeon = intel_xeon();
    let setups = [
        HostSetup::with_knobs(&xeon, &SystemKnobs::new()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_thp()),
    ];
    let mut t = Table::new(
        "Fig. 11: THP effect on iTLB overhead and retiring",
        ["iTLB-overhead-reduction%", "retiring-improvement%"]
            .map(String::from)
            .to_vec(),
    );
    let rows: Vec<Vec<f64>> = crate::runner::parallel_map(&CpuModel::ALL, |&cpu| {
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, SimMode::Fs),
            &setups,
        );
        let (base, thp) = (&run.hosts[0], &run.hosts[1]);
        let itlb_red = if base.topdown.fe_latency.itlb > 0.0 {
            100.0 * (1.0 - thp.topdown.fe_latency.itlb / base.topdown.fe_latency.itlb)
        } else {
            0.0
        };
        let (r0, ..) = base.topdown.level1_pct();
        let (r1, ..) = thp.topdown.level1_pct();
        vec![itlb_red, 100.0 * (r1 / r0 - 1.0)]
    });
    for (cpu, vals) in CpuModel::ALL.iter().zip(rows) {
        t.push(cpu.label(), vals);
    }
    t.note("paper: THP cuts iTLB overhead by ~63% on average; retiring improves 3-7% for detailed CPUs");
    t
}

/// Fig. 12: speedup from compiling the simulator with `-O3`, per
/// platform.
pub fn fig12(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig12");
    let mut t = Table::new(
        "Fig. 12: -O3 binary speedup (%)",
        PlatformId::ALL
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
    );
    let work: Vec<(CpuModel, PlatformId)> = CpuModel::ALL
        .iter()
        .flat_map(|&cpu| PlatformId::ALL.iter().map(move |&pid| (cpu, pid)))
        .collect();
    let cells: Vec<f64> = crate::runner::parallel_map(&work, |&(cpu, pid)| {
        let p = pid.platform();
        let setups = [
            HostSetup::with_knobs(&p, &SystemKnobs::new()),
            HostSetup::with_knobs(&p, &SystemKnobs::new().with_o3_binary()),
        ];
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, SimMode::Fs),
            &setups,
        );
        100.0 * (run.hosts[0].seconds() / run.hosts[1].seconds() - 1.0)
    });
    let np = PlatformId::ALL.len();
    for (ci, cpu) in CpuModel::ALL.iter().enumerate() {
        t.push(cpu.label(), cells[ci * np..(ci + 1) * np].to_vec());
    }
    t.note("paper: average speedups 1.38% (Xeon), 0.98% (M1_Pro), 0.78% (M1_Ultra); a few regressions occur");
    t
}

/// Fig. 13: simulation time vs CPU frequency on `Intel_Xeon`, normalized
/// to the nominal 3.1 GHz (Turbo Boost as the final row).
pub fn fig13(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig13");
    let xeon = intel_xeon();
    let freqs = [1.2, 1.6, 2.0, 2.4, 2.8, 3.1];
    let mut setups: Vec<HostSetup> = freqs
        .iter()
        .map(|&g| HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_freq(g)))
        .collect();
    setups.push(HostSetup::with_knobs(
        &xeon,
        &SystemKnobs::new().with_freq(xeon.turbo_ghz.expect("Xeon has Turbo")),
    ));
    let mut t = Table::new(
        "Fig. 13: normalized simulation time vs frequency (Intel_Xeon)",
        ["Atomic", "O3"].map(String::from).to_vec(),
    );
    let mut rows: Vec<(String, Vec<f64>)> = freqs
        .iter()
        .map(|g| (format!("{g:.1}GHz"), Vec::new()))
        .collect();
    rows.push(("4.1GHz-Turbo".into(), Vec::new()));
    let cpus = [CpuModel::Atomic, CpuModel::O3];
    let cols: Vec<Vec<f64>> = crate::runner::parallel_map(&cpus, |&cpu| {
        let run = profile(
            &GuestSpec::new(Workload::WaterNsquared, f.scale(), cpu, SimMode::Se),
            &setups,
        );
        let base = run.hosts[5].seconds(); // 3.1 GHz
        run.hosts.iter().map(|h| h.seconds() / base).collect()
    });
    for col in cols {
        for (i, row) in rows.iter_mut().enumerate() {
            row.1.push(col[i]);
        }
    }
    for (label, vals) in rows {
        t.push(label, vals);
    }
    t.note("paper: 3.1 -> 1.2 GHz increases simulation time 2.67x (linear in 1/f)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_pages_help_detailed_models_more() {
        let t = fig10(Fidelity::Quick);
        let atomic = t.get("ATOMIC", "THP").unwrap();
        let o3 = t.get("O3", "THP").unwrap();
        assert!(o3 > 0.0, "THP must help O3: {o3}%");
        assert!(o3 > atomic, "O3 {o3}% vs Atomic {atomic}%");
        assert!(
            o3 < 30.0,
            "speedup should stay single/low-double digit: {o3}%"
        );
        let ehp = t.get("O3", "EHP").unwrap();
        assert!(ehp > 0.0);
    }

    #[test]
    fn thp_slashes_itlb_overhead() {
        let t = fig11(Fidelity::Quick);
        for cpu in ["MINOR", "O3"] {
            let red = t.get(cpu, "iTLB-overhead-reduction%").unwrap();
            assert!(red > 30.0, "{cpu}: iTLB reduction {red}%");
            let ret = t.get(cpu, "retiring-improvement%").unwrap();
            assert!(ret > 0.0, "{cpu}: retiring must improve, got {ret}%");
        }
    }

    #[test]
    fn o3_flag_gives_small_speedup() {
        let t = fig12(Fidelity::Quick);
        let v = t.get("O3", "Intel_Xeon").unwrap();
        assert!(
            v > -2.0 && v < 15.0,
            "-O3 speedup {v}% out of plausible range"
        );
    }

    #[test]
    fn frequency_scaling_is_linear() {
        let t = fig13(Fidelity::Quick);
        let slow = t.get("1.2GHz", "O3").unwrap();
        assert!(
            (slow - 3.1 / 1.2).abs() < 0.05,
            "1.2 GHz normalized time {slow} vs expected {:.2}",
            3.1 / 1.2
        );
        let turbo = t.get("4.1GHz-Turbo", "O3").unwrap();
        assert!(turbo < 1.0);
        let nominal = t.get("3.1GHz", "Atomic").unwrap();
        assert!((nominal - 1.0).abs() < 1e-9);
    }
}
