//! Fig. 17: multi-hart co-run scaling under the Timing CPU.
//!
//! Pairs of microbenchmarks share a system — even harts run the first
//! variant, odd harts the second, all behind per-hart L1s and one shared
//! L2 — at 1, 2 and 4 harts. Each row reports guest wall-time slowdown
//! relative to its own single-hart run, so the columns isolate pure
//! interference: each `mem_stride` hart's window fills eight ways of
//! every 16-way L2 set, so four memory-bound harts oversubscribe the
//! shared L2's capacity and thrash each other into DRAM, while
//! ALU-bound pairs barely notice each other. The last row halves the
//! odd harts' clock with a per-hart divider, the guest-side analogue of
//! the host model's co-run scenarios ([`CorunScenario`]).

use super::Fidelity;
use crate::experiment::{profile, GuestSpec, HostSetup};
use crate::report::Table;
use crate::runner::parallel_map;
use gem5sim::config::{CpuModel, SimMode};
use gem5sim_workloads::{Microbench, Workload};
use hostmodel::CorunScenario;
use platforms::{PlatformId, SystemKnobs};

/// Hart counts shown as columns.
const HARTS: [usize; 3] = [1, 2, 4];

/// (even-hart variant, odd-hart variant, odd-hart clock divider).
const PAIRS: [(Microbench, Microbench, u64); 4] = [
    (Microbench::Alu, Microbench::Alu, 1),
    (Microbench::MemStride, Microbench::Alu, 1),
    (Microbench::MemStride, Microbench::MemStride, 1),
    (Microbench::MemStride, Microbench::Alu, 2),
];

fn row_label(a: Microbench, b: Microbench, div: u64) -> String {
    if div > 1 {
        format!("{}+{}_div{div}", a.name(), b.name())
    } else {
        format!("{}+{}", a.name(), b.name())
    }
}

/// Regenerates Fig. 17: guest-time slowdown of each co-run pair at 1/2/4
/// harts, normalized per row to its 1-hart run (column `1-hart` ≡ 1).
pub fn fig17(f: Fidelity) -> Table {
    let _span = gem5prof_obs::span("fig17");
    let xeon = PlatformId::IntelXeon.platform();

    let columns: Vec<String> = HARTS.iter().map(|h| format!("{h}-hart")).collect();
    let mut table = Table::new(
        "Fig. 17: co-run slowdown vs harts (Timing CPU, shared L2)",
        columns,
    );

    // pair × harts fans out across the thread pool; assembly below is in
    // input order, so output is thread-count independent.
    let work: Vec<((Microbench, Microbench, u64), usize)> = PAIRS
        .iter()
        .flat_map(|&p| HARTS.iter().map(move |&h| (p, h)))
        .collect();
    let secs: Vec<f64> = parallel_map(&work, |&((a, b, div), h)| {
        // Mirror the guest co-run on the host side: one simulated hart
        // maps to one gem5 process sharing the host uncore.
        let knobs = SystemKnobs::new().with_corun(CorunScenario::for_harts(h as u64));
        let hosts = [HostSetup::with_knobs(&xeon, &knobs)];
        let spec = GuestSpec::new(Workload::Micro(a), f.scale(), CpuModel::Timing, SimMode::Se)
            .with_harts(h)
            .with_corun(b)
            .with_corun_div(div);
        let run = profile(&spec, &hosts);
        for (i, &chk) in run.guest.guest_checksums.iter().enumerate() {
            let variant = if i % 2 == 0 { a } else { b };
            assert_eq!(
                chk,
                variant.expected_checksum(f.scale()),
                "hart {i} ({variant}) of {} corrupted its checksum at {h} harts",
                row_label(a, b, div)
            );
        }
        run.guest.sim_seconds()
    });

    for (r, &(a, b, div)) in PAIRS.iter().enumerate() {
        let base = secs[r * HARTS.len()];
        let values: Vec<f64> = (0..HARTS.len())
            .map(|c| secs[r * HARTS.len() + c] / base)
            .collect();
        table.push(row_label(a, b, div), values);
    }

    table.note("slowdown = sim_seconds(h harts) / sim_seconds(1 hart), per row; even harts run the left variant, odd harts the right");
    table.note("expected: four mem_stride harts oversubscribe the shared L2 (8 ways/set each) and thrash into DRAM; two fit exactly; alu pairs stay near 1.0");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_scales_with_memory_pressure() {
        let t = fig17(Fidelity::Quick);
        for row in &t.rows {
            let one = t.get(&row.label, "1-hart").unwrap();
            assert!(
                (one - 1.0).abs() < 1e-9,
                "{}: 1-hart is the unit baseline",
                row.label
            );
        }
        let alu4 = t.get("alu+alu", "4-hart").unwrap();
        let mem4 = t.get("mem_stride+mem_stride", "4-hart").unwrap();
        let mixed4 = t.get("mem_stride+alu", "4-hart").unwrap();
        // The acceptance criterion: interference-dependent scaling. Four
        // strided harts demand 32 ways of the 16-way shared L2 and
        // thrash (measured ~2.2x); alu pairs and the two-mem-hart mixed
        // pair fit and stay near 1.0.
        assert!(
            alu4 < 1.2,
            "4-hart alu pair ({alu4}) must stay near 1.0 — its L2 footprint is trivial"
        );
        assert!(
            mem4 > 1.5,
            "4-hart mem-bound pair ({mem4}) must thrash the shared L2 well past 1.5x"
        );
        assert!(
            mem4 > alu4 + 0.5,
            "4-hart mem-bound pair ({mem4}) must degrade far more than alu pair ({alu4})"
        );
        assert!(
            mixed4 <= mem4,
            "mixed pair ({mixed4}) cannot exceed the all-memory pair ({mem4})"
        );
        // Halving the interferer's clock stretches total time at least
        // past the undivided mixed pair (the divided alu side runs ~2x
        // longer in guest time).
        let div2 = t.get("mem_stride+alu_div2", "2-hart").unwrap();
        let mixed2 = t.get("mem_stride+alu", "2-hart").unwrap();
        assert!(
            div2 >= mixed2,
            "div2 row ({div2}) should not finish before the undivided pair ({mixed2})"
        );
    }
}
