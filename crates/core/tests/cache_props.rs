//! Property tests for `gem5prof::cache::ShardedLru`, pinning the
//! invariants the serving layer's result cache and the runner's trace
//! cache both lean on:
//!
//! 1. a one-shard `ShardedLru` is byte-for-byte the plain [`LruCache`]
//!    (same get results, same final contents, same stats) — sharding is
//!    purely a locking strategy, not a semantics change;
//! 2. at any shard count, with no evictions in play, every shard count
//!    observes the identical get/insert history (shard-count
//!    invariance);
//! 3. occupancy never exceeds capacity — globally or per shard — no
//!    matter the operation sequence;
//! 4. the aggregate snapshot is exactly the sum of the per-shard
//!    snapshots, and accounts for every operation performed.

use gem5prof::cache::{LruCache, ShardedLru};
use std::collections::HashMap;
use testkit::{prop_assert, prop_assert_eq, run_cases};

/// A generated op sequence over a small key universe (collisions and
/// re-inserts are the interesting cases).
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u64),
    Insert(u64),
}

fn gen_ops(g: &mut testkit::Gen, len: usize, keys: u64) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let key = g.u64_in(0..keys);
            if g.bool() {
                Op::Get(key)
            } else {
                Op::Insert(key)
            }
        })
        .collect()
}

/// Value stored for a key: deterministic in the key so equality checks
/// are meaningful.
fn val(key: u64) -> String {
    format!("value-{key}")
}

#[test]
fn one_shard_matches_the_plain_lru_oracle() {
    run_cases("one_shard_matches_the_plain_lru_oracle", 128, |g| {
        let cap = g.usize_in(1..24);
        let ops = gen_ops(g, 200, 32);
        let sharded: ShardedLru<u64, String> = ShardedLru::new(1, cap);
        let mut oracle: LruCache<u64, String> = LruCache::new(cap);
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(sharded.get(&k), oracle.get(&k));
                }
                Op::Insert(k) => {
                    sharded.insert(k, val(k));
                    oracle.insert(k, val(k));
                }
            }
        }
        prop_assert_eq!(sharded.len(), oracle.len());
        // Final contents are identical, not just same-sized: collect
        // both sides and compare as maps (iteration order differs).
        let mut a = HashMap::new();
        sharded.for_each(|k, v| {
            a.insert(*k, v.clone());
        });
        let mut b = HashMap::new();
        oracle.for_each(|k, v| {
            b.insert(*k, v.clone());
        });
        prop_assert_eq!(a, b);
        // Same history → same counters.
        let s = sharded.snapshot();
        let o = oracle.stats().snapshot();
        prop_assert_eq!(s.hits, o.hits);
        prop_assert_eq!(s.misses, o.misses);
        prop_assert_eq!(s.insertions, o.insertions);
        prop_assert_eq!(s.evictions, o.evictions);
        Ok(())
    });
}

#[test]
fn shard_count_does_not_change_observable_behavior() {
    run_cases("shard_count_does_not_change_observable_behavior", 96, |g| {
        // Every *shard* can hold the whole key universe (capacity is
        // partitioned exactly across shards, so per-shard headroom is
        // what rules out eviction — the one legitimately shard-dependent
        // behavior, since LRU order is kept per shard). With eviction
        // off the table, every shard count must agree with the
        // unsharded oracle on every single get.
        let keys = g.u64_in(4..24);
        let shard_counts = [1usize, 2, 3, 7, 16];
        let cap = keys as usize * shard_counts[shard_counts.len() - 1];
        let ops = gen_ops(g, 150, keys);
        let caches: Vec<ShardedLru<u64, String>> = shard_counts
            .iter()
            .map(|&n| ShardedLru::new(n, cap))
            .collect();
        let mut oracle: LruCache<u64, String> = LruCache::new(cap);
        for op in ops {
            match op {
                Op::Get(k) => {
                    let expect = oracle.get(&k);
                    for (c, &n) in caches.iter().zip(&shard_counts) {
                        prop_assert_eq!(
                            c.get(&k),
                            expect.clone(),
                            "get({k}) diverged at {n} shards"
                        );
                    }
                }
                Op::Insert(k) => {
                    oracle.insert(k, val(k));
                    for c in &caches {
                        c.insert(k, val(k));
                    }
                }
            }
        }
        for (c, &n) in caches.iter().zip(&shard_counts) {
            prop_assert_eq!(c.len(), oracle.len(), "len diverged at {n} shards");
            let s = c.snapshot();
            prop_assert_eq!(
                s.evictions,
                0,
                "evictions at {n} shards despite full capacity"
            );
            let o = oracle.stats().snapshot();
            prop_assert_eq!(s.hits, o.hits, "hits diverged at {n} shards");
            prop_assert_eq!(s.misses, o.misses, "misses diverged at {n} shards");
        }
        Ok(())
    });
}

#[test]
fn capacity_is_never_exceeded() {
    run_cases("capacity_is_never_exceeded", 128, |g| {
        // Deliberately more keys than capacity so eviction churns.
        let cap = g.usize_in(1..16);
        let shards = g.usize_in(1..32);
        let cache: ShardedLru<u64, String> = ShardedLru::new(shards, cap);
        prop_assert_eq!(
            cache.capacity(),
            cap,
            "shard capacity partitioning must preserve the total"
        );
        for op in gen_ops(g, 300, 64) {
            match op {
                Op::Get(k) => {
                    cache.get(&k);
                }
                Op::Insert(k) => cache.insert(k, val(k)),
            }
            prop_assert!(
                cache.len() <= cache.capacity(),
                "len {} exceeded capacity {}",
                cache.len(),
                cache.capacity()
            );
        }
        // Per-shard bound too: the shard snapshots expose insertions and
        // evictions, and residency is insertions minus evictions.
        for (i, s) in cache.shard_snapshots().iter().enumerate() {
            let resident = s.insertions - s.evictions;
            prop_assert!(
                resident <= cache.capacity() as u64,
                "shard {i} holds {resident} entries over total capacity"
            );
        }
        Ok(())
    });
}

#[test]
fn aggregate_stats_are_the_sum_of_shard_stats() {
    run_cases("aggregate_stats_are_the_sum_of_shard_stats", 128, |g| {
        let cap = g.usize_in(1..32);
        let shards = g.usize_in(1..16);
        let cache: ShardedLru<u64, String> = ShardedLru::new(shards, cap);
        let ops = gen_ops(g, 250, 48);
        let (mut gets, mut inserts) = (0u64, 0u64);
        for op in ops {
            match op {
                Op::Get(k) => {
                    cache.get(&k);
                    gets += 1;
                }
                Op::Insert(k) => {
                    cache.insert(k, val(k));
                    inserts += 1;
                }
            }
        }
        let total = cache.snapshot();
        let mut summed = gem5prof::cache::CacheSnapshot::default();
        for s in cache.shard_snapshots() {
            summed.merge(&s);
        }
        prop_assert_eq!(total.hits, summed.hits);
        prop_assert_eq!(total.misses, summed.misses);
        prop_assert_eq!(total.insertions, summed.insertions);
        prop_assert_eq!(total.evictions, summed.evictions);
        // And the counters account for exactly the operations performed.
        prop_assert_eq!(
            total.hits + total.misses,
            gets,
            "every get is a hit or a miss"
        );
        // Re-inserting a resident key refreshes it without counting a
        // new insertion, so the counter is bounded by — not equal to —
        // the inserts issued.
        prop_assert!(
            total.insertions <= inserts,
            "more insertions counted ({}) than inserts issued ({inserts})",
            total.insertions
        );
        prop_assert_eq!(
            (total.insertions - total.evictions) as usize,
            cache.len(),
            "residency must equal insertions minus evictions"
        );
        Ok(())
    });
}
