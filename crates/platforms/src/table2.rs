//! Table II: the three evaluation platforms.

use hostmodel::{CacheGeom, HostConfig};

/// Identifies an evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Dell Precision 7920, Xeon Gold 6242R (Cascade Lake).
    IntelXeon,
    /// Apple MacBook Pro, M1 (Firestorm P-cores).
    M1Pro,
    /// Apple Mac Studio, M1 Ultra.
    M1Ultra,
}

impl PlatformId {
    /// All platforms in Table II order.
    pub const ALL: [PlatformId; 3] = [
        PlatformId::IntelXeon,
        PlatformId::M1Pro,
        PlatformId::M1Ultra,
    ];

    /// The paper's configuration name.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::IntelXeon => "Intel_Xeon",
            PlatformId::M1Pro => "M1_Pro",
            PlatformId::M1Ultra => "M1_Ultra",
        }
    }

    /// Parses a platform name as used on the wire (case-insensitive:
    /// `intel_xeon`, `m1_pro`, `m1_ultra`).
    pub fn from_name(s: &str) -> Option<Self> {
        let norm = s.trim().to_ascii_lowercase().replace('-', "_");
        PlatformId::ALL
            .into_iter()
            .find(|p| p.name().to_ascii_lowercase() == norm)
    }

    /// Builds the platform description.
    pub fn platform(self) -> Platform {
        match self {
            PlatformId::IntelXeon => intel_xeon(),
            PlatformId::M1Pro => m1_pro(),
            PlatformId::M1Ultra => m1_ultra(),
        }
    }
}

/// A physical evaluation machine: per-core microarchitecture plus
/// topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Identity.
    pub id: PlatformId,
    /// Single-process host configuration (performance cores).
    pub config: HostConfig,
    /// Physical (performance) cores available for co-running.
    pub physical_cores: u64,
    /// Hardware threads (== cores when SMT is unsupported).
    pub hw_threads: u64,
    /// Whether the machine supports SMT.
    pub smt: bool,
    /// Single-core Turbo frequency, if any.
    pub turbo_ghz: Option<f64>,
    /// Host base page size (bytes) — duplicated from `config.page` for
    /// reporting.
    pub page_size: u64,
}

/// `Intel_Xeon`: Xeon Gold 6242R — 20C/40T Cascade Lake @ 3.1 GHz
/// (4.1 GHz TB), 32 KB/32 KB L1, 1 MB L2/core, 35.75 MB LLC, 64 B lines,
/// 4 KB pages, 96 GB DDR4-2933.
pub fn intel_xeon() -> Platform {
    let config = HostConfig {
        name: "Intel_Xeon".into(),
        width: 4,
        mite_width: 3.0,
        dsb_width: 6.0,
        dsb_uops: 576,
        freq_ghz: 3.1,
        line: 64,
        page: 4096,
        l1i: CacheGeom::kib(32, 8),
        l1d: CacheGeom::kib(32, 8),
        l2: CacheGeom::mib(1, 16),
        llc: CacheGeom {
            size: 35 * 1024 * 1024 + 768 * 1024,
            assoc: 11,
        },
        l2_lat: 14,
        llc_lat: 44,
        dram_lat: 298, // 96 ns at 3.1 GHz
        itlb_entries: 128,
        dtlb_entries: 64,
        stlb_entries: 1536,
        stlb_lat: 9,
        walk_lat: 36,
        bp_bits: 13,
        btb_entries: 4096,
        mispredict_penalty: 17,
        resteer_cycles: 7,
        loop_reach: 48,
        bytes_per_uop: 3.6,
        uops_per_inst: 1.12,
        mlp: 3.0,
        fetch_mlp: 8.0,
        prefetch_factor: 0.08,
    };
    config.validate();
    Platform {
        id: PlatformId::IntelXeon,
        config,
        physical_cores: 20,
        hw_threads: 40,
        smt: true,
        turbo_ghz: Some(4.1),
        page_size: 4096,
    }
}

fn firestorm_core(name: &str, l2: CacheGeom, llc: CacheGeom) -> HostConfig {
    HostConfig {
        name: name.into(),
        width: 8,
        // Fixed-width AArch64 decode: the 8-wide decoder keeps pace with
        // the pipeline; no µop cache exists or is needed.
        mite_width: 8.0,
        dsb_width: 8.0,
        dsb_uops: 0,
        freq_ghz: 3.2,
        line: 128,
        page: 16384,
        l1i: CacheGeom::kib(192, 12), // VIPT: 16 KB way = page size
        l1d: CacheGeom::kib(128, 8),
        l2,
        llc,
        l2_lat: 18,
        llc_lat: 90,
        dram_lat: 310, // 97 ns at 3.2 GHz
        itlb_entries: 192,
        dtlb_entries: 160,
        stlb_entries: 3072,
        stlb_lat: 7,
        walk_lat: 28,
        bp_bits: 15,
        btb_entries: 16384,
        mispredict_penalty: 14,
        resteer_cycles: 7,
        loop_reach: 600,
        bytes_per_uop: 3.8,
        uops_per_inst: 1.05,
        mlp: 4.0,
        fetch_mlp: 8.0,
        prefetch_factor: 0.08,
    }
}

/// `M1_Pro`: Apple MacBook Pro (M1) — 4 Firestorm P-cores @ 3.2 GHz,
/// 192 KB/128 KB L1, 12 MB shared P-cluster L2, 8 MB SLC, 128 B lines,
/// 16 KB pages, no SMT.
pub fn m1_pro() -> Platform {
    let config = firestorm_core("M1_Pro", CacheGeom::mib(12, 12), CacheGeom::mib(8, 16));
    config.validate();
    Platform {
        id: PlatformId::M1Pro,
        config,
        physical_cores: 4,
        hw_threads: 4,
        smt: false,
        turbo_ghz: None,
        page_size: 16384,
    }
}

/// `M1_Ultra`: Apple Mac Studio — 16 Firestorm P-cores @ 3.2 GHz,
/// 48 MB L2 (4 clusters), 96 MB SLC, no SMT.
pub fn m1_ultra() -> Platform {
    let config = firestorm_core("M1_Ultra", CacheGeom::mib(12, 12), CacheGeom::mib(96, 16));
    config.validate();
    Platform {
        id: PlatformId::M1Ultra,
        config,
        physical_cores: 16,
        hw_threads: 16,
        smt: false,
        turbo_ghz: None,
        page_size: 16384,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        for id in PlatformId::ALL {
            assert_eq!(PlatformId::from_name(id.name()), Some(id));
            assert_eq!(PlatformId::from_name(&id.name().to_uppercase()), Some(id));
        }
        assert_eq!(PlatformId::from_name("m1-pro"), Some(PlatformId::M1Pro));
        assert_eq!(PlatformId::from_name("xeon"), None);
    }

    #[test]
    fn all_platforms_validate() {
        for id in PlatformId::ALL {
            let p = id.platform();
            p.config.validate();
            assert_eq!(p.config.name, id.name());
            assert!(p.hw_threads >= p.physical_cores);
        }
    }

    #[test]
    fn m1_l1_caches_dwarf_xeon() {
        let x = intel_xeon().config;
        let m = m1_pro().config;
        assert_eq!(m.l1i.size, 6 * x.l1i.size, "6x larger iCache (paper)");
        assert_eq!(m.l1d.size, 4 * x.l1d.size, "4x larger dCache (paper)");
        assert_eq!(m.page, 4 * x.page, "16 KB vs 4 KB pages");
        assert_eq!(m.line, 2 * x.line, "128 B vs 64 B lines");
    }

    #[test]
    fn m1_vipt_way_size_equals_page() {
        // The paper's reverse-engineering argument: VIPT caches need
        // way-size <= page size; 192K/12 and 128K/8 both give 16 KB ways.
        let m = m1_pro().config;
        assert_eq!(m.l1i.size / m.l1i.assoc, m.page);
        assert_eq!(m.l1d.size / m.l1d.assoc, m.page);
    }

    #[test]
    fn only_xeon_has_smt_and_turbo() {
        assert!(intel_xeon().smt);
        assert!(intel_xeon().turbo_ghz.is_some());
        assert!(!m1_pro().smt);
        assert!(!m1_ultra().smt);
    }

    #[test]
    fn ultra_has_more_cache_than_pro() {
        assert!(m1_ultra().config.llc.size > m1_pro().config.llc.size);
        assert!(m1_ultra().physical_cores > m1_pro().physical_cores);
    }
}
