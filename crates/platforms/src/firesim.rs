//! The FireSim host of Table I and the Fig. 14 cache sweep.
//!
//! The paper runs unmodified gem5 *on top of* FireSim — an FPGA-simulated
//! RISC-V host whose cache hierarchy can be reconfigured at will. Here
//! that host is simply a parameterized [`HostConfig`] family: an 8-wide
//! out-of-order core (Table I) with VIPT L1 caches whose size is swept by
//! associativity at a fixed 64 sets, exactly as the paper does.

use hostmodel::{CacheGeom, HostConfig};

/// Fixed number of L1 sets in the sweep (64 sets × 64 B lines = 4 KB way,
/// overlapping TLB access with cache indexing — the VIPT constraint).
pub const L1_SETS: u64 = 64;

/// Builds a FireSim host with the given L1I/L1D/L2 geometries.
///
/// Cache sizes follow the paper's `(size/assoc : size/assoc : size/assoc)`
/// notation, in bytes.
pub fn config(l1i: CacheGeom, l1d: CacheGeom, l2: CacheGeom) -> HostConfig {
    let name = format!(
        "{}KB/{}:{}KB/{}:{}KB/{}",
        l1i.size / 1024,
        l1i.assoc,
        l1d.size / 1024,
        l1d.assoc,
        l2.size / 1024,
        l2.assoc
    );
    let c = HostConfig {
        name,
        width: 8, // Table I: 8-wide superscalar
        mite_width: 8.0,
        dsb_width: 8.0,
        dsb_uops: 0, // RISC-V: fixed-width decode, no µop cache
        freq_ghz: 4.0,
        line: 64,
        page: 4096,
        l1i,
        l1d,
        l2,
        // No L3 on the Rocket-style SoC: alias the LLC to the L2 so the
        // hierarchy collapses to L1 → L2 → DRAM.
        llc: l2,
        l2_lat: 16,
        llc_lat: 16,
        dram_lat: 288, // DDR3-1600 ~72 ns at 4 GHz
        itlb_entries: 32,
        dtlb_entries: 32,
        stlb_entries: 0,
        stlb_lat: 0,
        walk_lat: 57,
        bp_bits: 12, // TournamentBP
        btb_entries: 4096,
        mispredict_penalty: 12,
        resteer_cycles: 6,
        loop_reach: 96,
        bytes_per_uop: 3.8,
        uops_per_inst: 1.02,
        mlp: 3.0,
        fetch_mlp: 10.0,
        prefetch_factor: 0.08,
    };
    c.validate();
    c
}

/// An L1 geometry from the sweep: `size = 64 sets × 64 B × assoc`.
pub fn l1(assoc: u64) -> CacheGeom {
    CacheGeom {
        size: L1_SETS * 64 * assoc,
        assoc,
    }
}

/// The Table I base configuration (48 KB L1I, 32 KB L1D, 512 KB L2).
pub fn base() -> HostConfig {
    config(l1(12), l1(8), CacheGeom::kib(512, 8))
}

/// The Fig. 14 baseline: `(8KB/2 : 8KB/2 : 512KB/8)`.
pub fn fig14_baseline() -> HostConfig {
    config(l1(2), l1(2), CacheGeom::kib(512, 8))
}

/// The full Fig. 14 sweep, in the paper's order. The first entry is the
/// baseline.
pub fn fig14_sweep() -> Vec<HostConfig> {
    vec![
        fig14_baseline(),
        config(l1(4), l1(4), CacheGeom::kib(512, 8)), // 16 KB L1s
        config(l1(8), l1(8), CacheGeom::kib(512, 8)), // 32 KB L1s
        config(l1(8), l1(8), CacheGeom::mib(1, 8)),   // 32 KB + 1 MB L2
        config(l1(8), l1(8), CacheGeom::mib(2, 8)),   // 32 KB + 2 MB L2
        config(l1(12), l1(8), CacheGeom::kib(512, 8)), // Table I default
        config(l1(16), l1(16), CacheGeom::kib(512, 8)), // 64 KB best
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_sizes_follow_the_vipt_sweep() {
        assert_eq!(l1(2).size, 8 * 1024);
        assert_eq!(l1(4).size, 16 * 1024);
        assert_eq!(l1(8).size, 32 * 1024);
        assert_eq!(l1(16).size, 64 * 1024);
    }

    #[test]
    fn sweep_configs_validate_and_have_unique_names() {
        let sweep = fig14_sweep();
        assert_eq!(sweep.len(), 7);
        let mut names: Vec<&str> = sweep.iter().map(|c| c.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn baseline_matches_paper_notation() {
        assert_eq!(fig14_baseline().name, "8KB/2:8KB/2:512KB/8");
    }

    #[test]
    fn table1_base_has_48k_icache() {
        let b = base();
        assert_eq!(b.l1i.size, 48 * 1024);
        assert_eq!(b.l1d.size, 32 * 1024);
        assert_eq!(b.width, 8);
        assert_eq!(b.dsb_uops, 0);
    }
}
