//! Evaluation platforms and system-tuning knobs.
//!
//! [`Platform`] encodes the three machines of the paper's Table II —
//! `Intel_Xeon` (Dell Precision 7920, Xeon Gold 6242R, Cascade Lake),
//! `M1_Pro` (Apple MacBook Pro) and `M1_Ultra` (Mac Studio) — as
//! [`hostmodel::HostConfig`]s plus topology facts (cores, threads, SMT).
//! [`firesim`] provides the configurable RISC-V host of Table I and the
//! Fig. 14 cache sweep. [`SystemKnobs`] bundles the paper's Sec. V-A
//! tuning axes: huge-page text backing, `-O3` recompilation, CPU
//! frequency and Turbo Boost.

pub mod firesim;
pub mod knobs;
pub mod table2;

pub use knobs::SystemKnobs;
pub use table2::{intel_xeon, m1_pro, m1_ultra, Platform, PlatformId};
