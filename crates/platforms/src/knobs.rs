//! System-level tuning knobs (the paper's Sec. V-A).

use hostmodel::{corun_adjust, CorunScenario, HostConfig};
use hosttrace::{BinaryVariant, PageBacking};

/// The tuning axes the paper explores without touching hardware: text
/// page backing (Figs. 10–11), compiler flags (Fig. 12), CPU frequency
/// and Turbo Boost (Fig. 13), and co-running (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemKnobs {
    /// How the simulator's code segment is backed.
    pub backing: PageBacking,
    /// Which compilation of the simulator runs.
    pub binary: BinaryVariant,
    /// Frequency override in GHz (`None` = the platform's nominal).
    pub freq_ghz: Option<f64>,
    /// Co-run scenario.
    pub corun: CorunScenario,
}

impl Default for SystemKnobs {
    fn default() -> Self {
        SystemKnobs {
            backing: PageBacking::Base,
            binary: BinaryVariant::Base,
            freq_ghz: None,
            corun: CorunScenario::Single,
        }
    }
}

impl SystemKnobs {
    /// Baseline knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables transparent huge pages for the simulator's text.
    pub fn with_thp(mut self) -> Self {
        self.backing = PageBacking::thp();
        self
    }

    /// Enables explicit huge pages (libhugetlbfs-style) for text.
    pub fn with_ehp(mut self) -> Self {
        self.backing = PageBacking::Ehp;
        self
    }

    /// Uses the `-O3`-compiled simulator binary.
    pub fn with_o3_binary(mut self) -> Self {
        self.binary = BinaryVariant::O3Flag;
        self
    }

    /// Overrides the core frequency.
    pub fn with_freq(mut self, ghz: f64) -> Self {
        self.freq_ghz = Some(ghz);
        self
    }

    /// Sets the co-run scenario.
    pub fn with_corun(mut self, corun: CorunScenario) -> Self {
        self.corun = corun;
        self
    }

    /// Applies the host-side knobs to a platform configuration
    /// (frequency and co-run sharing; text backing and binary variant are
    /// applied when building the `hosttrace` registry).
    pub fn apply(&self, base: &HostConfig) -> HostConfig {
        let mut c = corun_adjust(base, self.corun);
        if let Some(f) = self.freq_ghz {
            c = c.with_freq(f);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::intel_xeon;

    #[test]
    fn default_is_identity() {
        let base = intel_xeon().config;
        let c = SystemKnobs::new().apply(&base);
        assert_eq!(c, base);
    }

    #[test]
    fn builders_compose() {
        let k = SystemKnobs::new()
            .with_thp()
            .with_o3_binary()
            .with_freq(1.2)
            .with_corun(CorunScenario::PerHardwareThread { procs: 40 });
        assert_eq!(k.backing, PageBacking::thp());
        assert_eq!(k.binary, BinaryVariant::O3Flag);
        let c = k.apply(&intel_xeon().config);
        assert_eq!(c.freq_ghz, 1.2);
        assert!(c.l1i.size < intel_xeon().config.l1i.size);
    }

    #[test]
    fn ehp_differs_from_thp() {
        assert_ne!(
            SystemKnobs::new().with_thp().backing,
            SystemKnobs::new().with_ehp().backing
        );
    }
}
