//! System-level tuning knobs (the paper's Sec. V-A).

use hostmodel::{corun_adjust, CorunScenario, HostConfig};
use hosttrace::{BinaryVariant, PageBacking};

/// The tuning axes the paper explores without touching hardware: text
/// page backing (Figs. 10–11), compiler flags (Fig. 12), CPU frequency
/// and Turbo Boost (Fig. 13), and co-running (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemKnobs {
    /// How the simulator's code segment is backed.
    pub backing: PageBacking,
    /// Which compilation of the simulator runs.
    pub binary: BinaryVariant,
    /// Frequency override in GHz (`None` = the platform's nominal).
    pub freq_ghz: Option<f64>,
    /// Co-run scenario.
    pub corun: CorunScenario,
}

impl Default for SystemKnobs {
    fn default() -> Self {
        SystemKnobs {
            backing: PageBacking::Base,
            binary: BinaryVariant::Base,
            freq_ghz: None,
            corun: CorunScenario::Single,
        }
    }
}

impl SystemKnobs {
    /// Baseline knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables transparent huge pages for the simulator's text.
    pub fn with_thp(mut self) -> Self {
        self.backing = PageBacking::thp();
        self
    }

    /// Enables explicit huge pages (libhugetlbfs-style) for text.
    pub fn with_ehp(mut self) -> Self {
        self.backing = PageBacking::Ehp;
        self
    }

    /// Uses the `-O3`-compiled simulator binary.
    pub fn with_o3_binary(mut self) -> Self {
        self.binary = BinaryVariant::O3Flag;
        self
    }

    /// Overrides the core frequency.
    pub fn with_freq(mut self, ghz: f64) -> Self {
        self.freq_ghz = Some(ghz);
        self
    }

    /// Sets the co-run scenario.
    pub fn with_corun(mut self, corun: CorunScenario) -> Self {
        self.corun = corun;
        self
    }

    /// Parses a comma-separated knob string as used in serving specs.
    ///
    /// Grammar (tokens in any order, case-insensitive):
    ///
    /// * `default` — no-op;
    /// * `thp` (paper-default 48% coverage) or `thp<PCT>` (e.g. `thp75`);
    /// * `ehp` — explicit huge pages for the whole text segment;
    /// * `o3` — the `-O3`-compiled simulator binary;
    /// * `freq=<GHZ>` — core-frequency override (e.g. `freq=2.4`);
    /// * `corun=single`, `corun=per_core:<N>`, `corun=per_thread:<N>`.
    ///
    /// The empty string parses to the default knob set. Unknown or
    /// malformed tokens yield an error naming the offending token.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut k = SystemKnobs::new();
        for raw in s.split(',') {
            let tok = raw.trim().to_ascii_lowercase();
            if tok.is_empty() || tok == "default" {
                continue;
            }
            if tok == "thp" {
                k.backing = PageBacking::thp();
            } else if let Some(pct) = tok.strip_prefix("thp") {
                let pct: u8 =
                    pct.parse().ok().filter(|&p| p <= 100).ok_or_else(|| {
                        format!("bad THP coverage in `{raw}` (want thp0..thp100)")
                    })?;
                k.backing = PageBacking::Thp { coverage_pct: pct };
            } else if tok == "ehp" {
                k.backing = PageBacking::Ehp;
            } else if tok == "o3" {
                k.binary = BinaryVariant::O3Flag;
            } else if let Some(ghz) = tok.strip_prefix("freq=") {
                let ghz = ghz
                    .parse::<f64>()
                    .ok()
                    .filter(|g| g.is_finite() && *g > 0.0)
                    .ok_or_else(|| format!("bad frequency in `{raw}` (want freq=<GHz>)"))?;
                k.freq_ghz = Some(ghz);
            } else if let Some(c) = tok.strip_prefix("corun=") {
                k.corun = parse_corun(c).ok_or_else(|| {
                    format!("bad co-run in `{raw}` (want single, per_core:<N> or per_thread:<N>)")
                })?;
            } else {
                return Err(format!("unknown knob token `{raw}`"));
            }
        }
        Ok(k)
    }

    /// Applies the host-side knobs to a platform configuration
    /// (frequency and co-run sharing; text backing and binary variant are
    /// applied when building the `hosttrace` registry).
    pub fn apply(&self, base: &HostConfig) -> HostConfig {
        let mut c = corun_adjust(base, self.corun);
        if let Some(f) = self.freq_ghz {
            c = c.with_freq(f);
        }
        c
    }
}

/// Parses the value of a `corun=` token.
fn parse_corun(s: &str) -> Option<CorunScenario> {
    if s == "single" {
        return Some(CorunScenario::Single);
    }
    let (kind, procs) = s.split_once(':')?;
    let procs: u64 = procs.parse().ok().filter(|&p| p > 0)?;
    match kind {
        "per_core" => Some(CorunScenario::PerPhysicalCore { procs }),
        "per_thread" => Some(CorunScenario::PerHardwareThread { procs }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::intel_xeon;

    #[test]
    fn default_is_identity() {
        let base = intel_xeon().config;
        let c = SystemKnobs::new().apply(&base);
        assert_eq!(c, base);
    }

    #[test]
    fn builders_compose() {
        let k = SystemKnobs::new()
            .with_thp()
            .with_o3_binary()
            .with_freq(1.2)
            .with_corun(CorunScenario::PerHardwareThread { procs: 40 });
        assert_eq!(k.backing, PageBacking::thp());
        assert_eq!(k.binary, BinaryVariant::O3Flag);
        let c = k.apply(&intel_xeon().config);
        assert_eq!(c.freq_ghz, 1.2);
        assert!(c.l1i.size < intel_xeon().config.l1i.size);
    }

    #[test]
    fn parse_round_trips_the_builders() {
        assert_eq!(SystemKnobs::parse("").unwrap(), SystemKnobs::new());
        assert_eq!(SystemKnobs::parse("default").unwrap(), SystemKnobs::new());
        assert_eq!(
            SystemKnobs::parse("thp").unwrap(),
            SystemKnobs::new().with_thp()
        );
        assert_eq!(
            SystemKnobs::parse("THP75").unwrap().backing,
            PageBacking::Thp { coverage_pct: 75 }
        );
        assert_eq!(
            SystemKnobs::parse("ehp, o3, freq=2.4").unwrap(),
            SystemKnobs::new()
                .with_ehp()
                .with_o3_binary()
                .with_freq(2.4)
        );
        assert_eq!(
            SystemKnobs::parse("corun=per_thread:40").unwrap().corun,
            CorunScenario::PerHardwareThread { procs: 40 }
        );
        assert_eq!(
            SystemKnobs::parse("corun=single").unwrap().corun,
            CorunScenario::Single
        );
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "warp",
            "thp999",
            "freq=fast",
            "freq=-1",
            "corun=per_core",
            "corun=per_core:0",
            "corun=sideways:3",
        ] {
            assert!(SystemKnobs::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn ehp_differs_from_thp() {
        assert_ne!(
            SystemKnobs::new().with_thp().backing,
            SystemKnobs::new().with_ehp().backing
        );
    }
}
