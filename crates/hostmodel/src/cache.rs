//! A fast set-associative host cache model (LRU).

use crate::config::CacheGeom;

/// Set-associative cache over line addresses.
#[derive(Debug, Clone)]
pub struct HostCache {
    sets: u64,
    assoc: usize,
    line: u64,
    tags: Vec<u64>, // sets * assoc; u64::MAX = invalid
    lru: Vec<u32>,
    clock: u32,
    /// Accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl HostCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent with `line`.
    pub fn new(geom: CacheGeom, line: u64) -> Self {
        assert!(
            geom.size % (geom.assoc * line) == 0 && geom.size > 0,
            "bad geometry {geom:?}"
        );
        let sets = geom.size / (geom.assoc * line);
        HostCache {
            sets,
            assoc: geom.assoc as usize,
            line,
            tags: vec![u64::MAX; (sets * geom.assoc) as usize],
            lru: vec![0; (sets * geom.assoc) as usize],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock = self.clock.wrapping_add(1);
        let lineno = addr / self.line;
        let set = (lineno % self.sets) as usize;
        let tag = lineno / self.sets;
        let base = set * self.assoc;
        let mut victim = base;
        let mut victim_lru = u32::MAX;
        for i in base..base + self.assoc {
            if self.tags[i] == tag {
                self.lru[i] = self.clock;
                return true;
            }
            if self.lru[i] < victim_lru {
                victim_lru = self.lru[i];
                victim = i;
            }
        }
        self.misses += 1;
        self.tags[victim] = tag;
        self.lru[victim] = self.clock;
        false
    }

    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Number of valid lines (LLC occupancy reporting).
    pub fn valid_lines(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != u64::MAX).count() as u64
    }

    /// Bytes of valid data.
    pub fn occupancy_bytes(&self) -> u64 {
        self.valid_lines() * self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HostCache {
        HostCache::new(
            CacheGeom {
                size: 512,
                assoc: 2,
            },
            64,
        ) // 4 sets
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103F), "same line");
        assert!(!c.access(0x1040), "next line");
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        c.access(0); // set 0, tag 0
        c.access(256); // set 0, tag 1
        c.access(0); // refresh
        c.access(512); // evicts tag 1
        assert!(c.access(0));
        assert!(!c.access(256));
    }

    #[test]
    fn capacity_bounded() {
        let mut c = tiny();
        for i in 0..100 {
            c.access(i * 64);
        }
        assert_eq!(c.valid_lines(), 8);
        assert_eq!(c.occupancy_bytes(), 512);
    }

    #[test]
    fn miss_rate_reported() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert!((c.miss_rate() - 0.5).abs() < 1e-9);
    }
}
