//! Host platform configuration.

/// Geometry of one host cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total bytes.
    pub size: u64,
    /// Ways.
    pub assoc: u64,
}

impl CacheGeom {
    /// Convenience constructor with size in KiB.
    pub fn kib(size_kib: u64, assoc: u64) -> Self {
        CacheGeom {
            size: size_kib * 1024,
            assoc,
        }
    }

    /// Convenience constructor with size in MiB.
    pub fn mib(size_mib: u64, assoc: u64) -> Self {
        CacheGeom {
            size: size_mib * 1024 * 1024,
            assoc,
        }
    }
}

/// A host CPU + memory-system configuration (one column of the paper's
/// Table II, or one FireSim sweep point).
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// Display name (e.g. `"Intel_Xeon"`).
    pub name: String,
    /// Pipeline width in slots/cycle (retire width).
    pub width: u64,
    /// Legacy-decoder (MITE) sustained µops/cycle (fractional: decoder
    /// bubbles make the sustained rate lower than the burst rate).
    pub mite_width: f64,
    /// µop-cache (DSB) µops/cycle (ignored when `dsb_uops == 0`).
    pub dsb_width: f64,
    /// µop-cache capacity in µops; 0 disables the DSB (fixed-width ISAs
    /// like ARM/RISC-V decode at full width without one).
    pub dsb_uops: u64,
    /// Core frequency in GHz (as configured; Turbo handled by callers).
    pub freq_ghz: f64,
    /// Cache line size in bytes.
    pub line: u64,
    /// Base virtual-memory page size in bytes.
    pub page: u64,
    /// L1 instruction cache.
    pub l1i: CacheGeom,
    /// L1 data cache.
    pub l1d: CacheGeom,
    /// Unified L2.
    pub l2: CacheGeom,
    /// Last-level cache (this core's effective share).
    pub llc: CacheGeom,
    /// L2 hit latency (cycles).
    pub l2_lat: u64,
    /// LLC hit latency (cycles).
    pub llc_lat: u64,
    /// DRAM latency (cycles).
    pub dram_lat: u64,
    /// First-level iTLB entries.
    pub itlb_entries: u64,
    /// First-level dTLB entries.
    pub dtlb_entries: u64,
    /// Second-level (shared) TLB entries; 0 = none.
    pub stlb_entries: u64,
    /// STLB hit cost (cycles).
    pub stlb_lat: u64,
    /// Full page-walk cost (cycles).
    pub walk_lat: u64,
    /// Conditional-predictor table size (log2 entries).
    pub bp_bits: u32,
    /// BTB entries (power of two).
    pub btb_entries: u64,
    /// Branch misprediction pipeline penalty (cycles).
    pub mispredict_penalty: u64,
    /// Front-end resteer cost on a BTB miss / unknown target (cycles).
    pub resteer_cycles: u64,
    /// Longest loop period the machine's loop/long-history predictor can
    /// capture (0 = plain gshare only).
    pub loop_reach: u64,
    /// Average instruction bytes per µop (x86 ≈ 3.6; fixed 4-byte ISAs
    /// with ~1.1 µops/inst ≈ 3.6 as well).
    pub bytes_per_uop: f64,
    /// µops per instruction (for IPC).
    pub uops_per_inst: f64,
    /// Memory-level parallelism divisor for demand-load stalls.
    pub mlp: f64,
    /// Overlap divisor for instruction-fetch stalls.
    pub fetch_mlp: f64,
    /// Residual stall fraction for stride-prefetched data streams
    /// (0 = perfect prefetcher, 1 = none).
    pub prefetch_factor: f64,
}

impl HostConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if geometry values are inconsistent (used in constructors
    /// and tests).
    pub fn validate(&self) {
        assert!(self.width > 0 && self.mite_width > 0.0);
        assert!(self.line.is_power_of_two());
        assert!(self.page.is_power_of_two());
        assert!(self.btb_entries.is_power_of_two());
        for g in [self.l1i, self.l1d, self.l2, self.llc] {
            assert!(
                g.size > 0 && g.assoc > 0 && g.size % (g.assoc * self.line) == 0,
                "bad cache geometry {g:?} in {}",
                self.name
            );
        }
        assert!(self.mlp >= 1.0 && self.fetch_mlp >= 1.0);
        assert!((0.0..=1.0).contains(&self.prefetch_factor));
        assert!(self.freq_ghz > 0.0);
    }

    /// Cycles → seconds at this configuration's frequency.
    pub fn seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Returns a copy with a different core frequency (the paper's
    /// Fig. 13 frequency sweep / Turbo Boost row).
    pub fn with_freq(&self, ghz: f64) -> Self {
        let mut c = self.clone();
        c.freq_ghz = ghz;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but valid config for unit tests.
    pub(crate) fn test_config() -> HostConfig {
        HostConfig {
            name: "test".into(),
            width: 4,
            mite_width: 2.6,
            dsb_width: 6.0,
            dsb_uops: 1536,
            freq_ghz: 3.0,
            line: 64,
            page: 4096,
            l1i: CacheGeom::kib(32, 8),
            l1d: CacheGeom::kib(32, 8),
            l2: CacheGeom::mib(1, 16),
            llc: CacheGeom::mib(8, 16),
            l2_lat: 14,
            llc_lat: 44,
            dram_lat: 280,
            itlb_entries: 128,
            dtlb_entries: 64,
            stlb_entries: 1536,
            stlb_lat: 8,
            walk_lat: 35,
            bp_bits: 13,
            btb_entries: 4096,
            mispredict_penalty: 17,
            resteer_cycles: 9,
            loop_reach: 48,
            bytes_per_uop: 3.6,
            uops_per_inst: 1.1,
            mlp: 3.0,
            fetch_mlp: 2.0,
            prefetch_factor: 0.08,
        }
    }

    #[test]
    fn test_config_validates() {
        test_config().validate();
    }

    #[test]
    fn seconds_scale_with_frequency() {
        let c = test_config();
        let s3 = c.seconds(3e9);
        assert!((s3 - 1.0).abs() < 1e-9);
        let c2 = c.with_freq(1.5);
        assert!((c2.seconds(3e9) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn validate_rejects_bad_geometry() {
        let mut c = test_config();
        c.l1i = CacheGeom {
            size: 1000,
            assoc: 3,
        };
        c.validate();
    }

    #[test]
    fn geom_constructors() {
        assert_eq!(CacheGeom::kib(32, 8).size, 32768);
        assert_eq!(CacheGeom::mib(2, 16).size, 2 * 1024 * 1024);
    }
}
