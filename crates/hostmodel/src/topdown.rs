//! Yasin-style Top-Down cycle accounting structures.
//!
//! All fields are in *cycles*; the total is the sum of every leaf bucket,
//! so conservation holds by construction and percentages are exact.

/// Front-end latency sub-buckets (the paper's Fig. 4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FeLatency {
    /// iCache miss stalls.
    pub icache: f64,
    /// iTLB miss stalls.
    pub itlb: f64,
    /// Resteers after branch mispredictions.
    pub mispredict_resteers: f64,
    /// Resteers after machine clears.
    pub clear_resteers: f64,
    /// Resteers for branches the front end could not target (BTB misses,
    /// indirect dispatch).
    pub unknown_branches: f64,
}

impl FeLatency {
    /// Sum of all latency buckets.
    pub fn total(&self) -> f64 {
        self.icache
            + self.itlb
            + self.mispredict_resteers
            + self.clear_resteers
            + self.unknown_branches
    }
}

/// Front-end bandwidth sub-buckets (the paper's Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FeBandwidth {
    /// Cycles limited by the MITE legacy decoders.
    pub mite: f64,
    /// Cycles limited by DSB µop supply.
    pub dsb: f64,
}

impl FeBandwidth {
    /// Sum of bandwidth buckets.
    pub fn total(&self) -> f64 {
        self.mite + self.dsb
    }
}

/// Back-end memory sub-buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BeMem {
    /// Stalls satisfied by L2.
    pub l2: f64,
    /// Stalls satisfied by the LLC.
    pub llc: f64,
    /// Stalls going to DRAM.
    pub dram: f64,
}

impl BeMem {
    /// Sum of memory buckets.
    pub fn total(&self) -> f64 {
        self.l2 + self.llc + self.dram
    }
}

/// The full Top-Down breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TopDown {
    /// Useful-work cycles (µops retiring at full width).
    pub retiring: f64,
    /// Front-end latency stalls.
    pub fe_latency: FeLatency,
    /// Front-end bandwidth limits.
    pub fe_bandwidth: FeBandwidth,
    /// Wasted work from mis-speculation.
    pub bad_speculation: f64,
    /// Back-end memory stalls.
    pub be_mem: BeMem,
    /// Back-end core stalls (FU contention, long dependency chains).
    pub be_core: f64,
}

impl TopDown {
    /// Total accounted cycles (sum of all buckets).
    pub fn total_cycles(&self) -> f64 {
        self.retiring
            + self.fe_latency.total()
            + self.fe_bandwidth.total()
            + self.bad_speculation
            + self.be_mem.total()
            + self.be_core
    }

    /// Front-end bound cycles (latency + bandwidth).
    pub fn frontend_bound(&self) -> f64 {
        self.fe_latency.total() + self.fe_bandwidth.total()
    }

    /// Back-end bound cycles (memory + core).
    pub fn backend_bound(&self) -> f64 {
        self.be_mem.total() + self.be_core
    }

    /// Level-1 percentages `(retiring, frontend, bad_spec, backend)`,
    /// summing to 100 (when any cycles were accounted).
    pub fn level1_pct(&self) -> (f64, f64, f64, f64) {
        let t = self.total_cycles();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            100.0 * self.retiring / t,
            100.0 * self.frontend_bound() / t,
            100.0 * self.bad_speculation / t,
            100.0 * self.backend_bound() / t,
        )
    }

    /// Fraction of front-end-bound cycles that are latency (vs bandwidth)
    /// — the paper's Fig. 3 axis.
    pub fn fe_latency_fraction(&self) -> f64 {
        let fe = self.frontend_bound();
        if fe == 0.0 {
            0.0
        } else {
            self.fe_latency.total() / fe
        }
    }

    /// Percent of total cycles for an arbitrary bucket value.
    pub fn pct(&self, bucket: f64) -> f64 {
        let t = self.total_cycles();
        if t == 0.0 {
            0.0
        } else {
            100.0 * bucket / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TopDown {
        TopDown {
            retiring: 50.0,
            fe_latency: FeLatency {
                icache: 10.0,
                itlb: 5.0,
                mispredict_resteers: 3.0,
                clear_resteers: 1.0,
                unknown_branches: 6.0,
            },
            fe_bandwidth: FeBandwidth {
                mite: 10.0,
                dsb: 1.0,
            },
            bad_speculation: 6.0,
            be_mem: BeMem {
                l2: 3.0,
                llc: 2.0,
                dram: 2.0,
            },
            be_core: 1.0,
        }
    }

    #[test]
    fn totals_are_sums() {
        let td = sample();
        assert!((td.total_cycles() - 100.0).abs() < 1e-9);
        assert!((td.frontend_bound() - 36.0).abs() < 1e-9);
        assert!((td.backend_bound() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn level1_sums_to_100() {
        let (r, f, b, be) = sample().level1_pct();
        assert!((r + f + b + be - 100.0).abs() < 1e-9);
        assert!((r - 50.0).abs() < 1e-9);
    }

    #[test]
    fn latency_fraction() {
        let td = sample();
        assert!((td.fe_latency_fraction() - 25.0 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let td = TopDown::default();
        assert_eq!(td.level1_pct(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(td.fe_latency_fraction(), 0.0);
        assert_eq!(td.pct(5.0), 0.0);
    }
}
