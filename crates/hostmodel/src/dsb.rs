//! The DSB (Decoded Stream Buffer / µop cache) model.
//!
//! The DSB caches decoded µops by 32-byte fetch window. Codes with tight
//! loops live in it and stream µops at `dsb_width`; codes that touch
//! thousands of windows between reuses (gem5!) thrash it and fall back to
//! the MITE legacy decoders — the paper's Figs. 5–6.

use crate::cache::HostCache;
use crate::config::CacheGeom;

/// Fetch-window granularity of the DSB (bytes).
pub const WINDOW: u64 = 32;

/// µop-cache model.
#[derive(Debug, Clone)]
pub struct Dsb {
    cache: Option<HostCache>,
    /// µops delivered from the DSB.
    pub dsb_uops: u64,
    /// µops delivered from MITE.
    pub mite_uops: u64,
}

impl Dsb {
    /// Builds a DSB holding `capacity_uops` µops (0 disables it).
    /// Assumes ~6 µops per 32 B window and 8-way organization.
    pub fn new(capacity_uops: u64) -> Self {
        let cache = (capacity_uops > 0).then(|| {
            let windows = (capacity_uops / 6).max(8).next_power_of_two();
            HostCache::new(
                CacheGeom {
                    size: windows * WINDOW,
                    assoc: 8,
                },
                WINDOW,
            )
        });
        Dsb {
            cache,
            dsb_uops: 0,
            mite_uops: 0,
        }
    }

    /// Whether the machine has a µop cache at all.
    pub fn present(&self) -> bool {
        self.cache.is_some()
    }

    /// Records the decode of `uops` µops spanning the window at
    /// `window_addr`; returns `true` if they came from the DSB.
    #[inline]
    pub fn fetch_window(&mut self, window_addr: u64, uops: u64) -> bool {
        match &mut self.cache {
            Some(c) => {
                let hit = c.access(window_addr);
                if hit {
                    self.dsb_uops += uops;
                } else {
                    self.mite_uops += uops;
                }
                hit
            }
            None => {
                self.mite_uops += uops;
                false
            }
        }
    }

    /// DSB coverage: fraction of µops delivered from the µop cache —
    /// the paper's Fig. 6 metric.
    pub fn coverage(&self) -> f64 {
        let total = self.dsb_uops + self.mite_uops;
        if total == 0 {
            0.0
        } else {
            self.dsb_uops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_loop_gets_high_coverage() {
        let mut d = Dsb::new(1536);
        for _ in 0..1000 {
            for w in 0..4u64 {
                d.fetch_window(0x400000 + w * WINDOW, 6);
            }
        }
        assert!(d.coverage() > 0.99, "{}", d.coverage());
    }

    #[test]
    fn huge_code_footprint_thrashes() {
        let mut d = Dsb::new(1536);
        // Touch 100k distinct windows repeatedly: far beyond capacity.
        for round in 0..3 {
            for w in 0..100_000u64 {
                d.fetch_window(w * WINDOW, 6);
            }
            let _ = round;
        }
        assert!(d.coverage() < 0.05, "{}", d.coverage());
    }

    #[test]
    fn absent_dsb_streams_from_mite() {
        let mut d = Dsb::new(0);
        assert!(!d.present());
        assert!(!d.fetch_window(0, 6));
        assert_eq!(d.coverage(), 0.0);
        assert_eq!(d.mite_uops, 6);
    }
}
