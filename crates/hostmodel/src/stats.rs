//! Final statistics of one host run — everything the paper's figures
//! read off the PMU.

use crate::topdown::TopDown;

/// Results of running a workload trace through a
/// [`HostEngine`](crate::engine::HostEngine).
#[derive(Debug, Clone, PartialEq)]
pub struct HostRunStats {
    /// Host configuration name.
    pub name: String,
    /// Total host cycles.
    pub cycles: f64,
    /// Host µops retired.
    pub uops: u64,
    /// Host instructions retired (µops / µops-per-inst).
    pub instructions: f64,
    /// Core frequency used for wall-clock conversion.
    pub freq_ghz: f64,
    /// Top-Down breakdown.
    pub topdown: TopDown,
    /// L1I accesses (line granularity).
    pub l1i_accesses: u64,
    /// L1I miss rate.
    pub l1i_miss_rate: f64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D miss rate.
    pub l1d_miss_rate: f64,
    /// iTLB first-level miss rate.
    pub itlb_miss_rate: f64,
    /// dTLB first-level miss rate.
    pub dtlb_miss_rate: f64,
    /// Conditional branches executed.
    pub branch_lookups: u64,
    /// Conditional misprediction rate.
    pub branch_mispredict_rate: f64,
    /// Unknown-branch (BTB-miss) resteers.
    pub unknown_branches: u64,
    /// DSB (µop cache) coverage in [0, 1].
    pub dsb_coverage: f64,
    /// Bytes resident in the LLC at the end of the run.
    pub llc_occupancy_bytes: u64,
    /// Bytes transferred from DRAM.
    pub dram_bytes: u64,
    /// Trace records consumed.
    pub records: u64,
}

impl HostRunStats {
    /// Host wall-clock seconds ("host seconds" in gem5 terms — the
    /// paper's simulation-time metric).
    pub fn seconds(&self) -> f64 {
        self.cycles / (self.freq_ghz * 1e9)
    }

    /// Host IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions / self.cycles
        }
    }

    /// Fraction of cycles the machine is stalled (1 − retiring share).
    pub fn stalled_fraction(&self) -> f64 {
        let (r, _, _, _) = self.topdown.level1_pct();
        1.0 - r / 100.0
    }

    /// DRAM bandwidth in bytes/second.
    pub fn dram_bandwidth(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.dram_bytes as f64 / s
        }
    }

    /// iTLB misses per kilo-instruction.
    pub fn itlb_mpki(&self) -> f64 {
        // Approximation from rate × accesses.
        if self.instructions == 0.0 {
            0.0
        } else {
            self.itlb_miss_rate * self.l1i_accesses as f64 / self.instructions * 1000.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HostRunStats {
        HostRunStats {
            name: "x".into(),
            cycles: 2e9,
            uops: 2_200_000_000,
            instructions: 2e9,
            freq_ghz: 2.0,
            topdown: TopDown {
                retiring: 1e9,
                bad_speculation: 1e9,
                ..TopDown::default()
            },
            l1i_accesses: 1000,
            l1i_miss_rate: 0.1,
            l1d_accesses: 1000,
            l1d_miss_rate: 0.05,
            itlb_miss_rate: 0.02,
            dtlb_miss_rate: 0.01,
            branch_lookups: 100,
            branch_mispredict_rate: 0.002,
            unknown_branches: 10,
            dsb_coverage: 0.05,
            llc_occupancy_bytes: 1 << 20,
            dram_bytes: 4_000_000,
            records: 42,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert!((s.seconds() - 1.0).abs() < 1e-9);
        assert!((s.ipc() - 1.0).abs() < 1e-9);
        assert!((s.stalled_fraction() - 0.5).abs() < 1e-9);
        assert!((s.dram_bandwidth() - 4_000_000.0).abs() < 1.0);
    }
}
