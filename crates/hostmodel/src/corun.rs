//! Co-run scenarios: how sharing a host machine between multiple gem5
//! processes changes each process's effective microarchitecture
//! (the paper's Fig. 1 co-run columns and its SMT-on/off comparison).

use crate::config::HostConfig;

/// How many gem5 processes share the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorunScenario {
    /// One gem5 process on the whole machine.
    Single,
    /// One process per *physical core* (SMT off): private core resources
    /// are intact, the LLC and DRAM are shared by `procs` processes.
    PerPhysicalCore {
        /// Co-running processes sharing the uncore.
        procs: u64,
    },
    /// One process per *hardware thread* (SMT on): two sibling threads
    /// split each core's L1s, µop cache, TLBs and decode bandwidth, and
    /// `procs` processes share the uncore.
    PerHardwareThread {
        /// Co-running processes sharing the uncore.
        procs: u64,
    },
}

impl CorunScenario {
    /// The host-side scenario that mirrors an `harts`-wide *guest* co-run:
    /// one gem5 process per simulated hart, SMT off, sharing the uncore.
    pub fn for_harts(harts: u64) -> CorunScenario {
        if harts <= 1 {
            CorunScenario::Single
        } else {
            CorunScenario::PerPhysicalCore { procs: harts }
        }
    }

    /// Number of co-running processes (1 for [`CorunScenario::Single`]).
    pub fn procs(&self) -> u64 {
        match self {
            CorunScenario::Single => 1,
            CorunScenario::PerPhysicalCore { procs }
            | CorunScenario::PerHardwareThread { procs } => *procs,
        }
    }

    /// Label used in figures.
    pub fn label(&self) -> String {
        match self {
            CorunScenario::Single => "1 process".into(),
            CorunScenario::PerPhysicalCore { procs } => format!("{procs}/phys-cores"),
            CorunScenario::PerHardwareThread { procs } => format!("{procs}/hw-threads"),
        }
    }
}

/// Derives the *effective per-process* host configuration under a co-run
/// scenario.
pub fn corun_adjust(base: &HostConfig, scenario: CorunScenario) -> HostConfig {
    let mut c = base.clone();
    match scenario {
        CorunScenario::Single => {}
        CorunScenario::PerPhysicalCore { procs } => {
            share_uncore(&mut c, procs);
            c.name = format!("{} [{}]", base.name, scenario.label());
        }
        CorunScenario::PerHardwareThread { procs } => {
            // SMT siblings statically split the storage structures but
            // share pipeline bandwidth *dynamically* — a stalled sibling
            // donates its slots, so effective per-thread bandwidth is
            // ~0.72x, not 0.5x (typical SMT scaling).
            // Both threads run the *same* gem5 binary, so L1I text lines
            // are physically shared; only interleaving conflicts cost
            // (~3/4 effective capacity). Data is distinct: L1D halves.
            c.l1i.size = c.l1i.size * 3 / 4;
            c.l1i.assoc = (c.l1i.assoc * 3 / 4).max(1);
            c.l1d.size /= 2;
            c.dsb_uops /= 2;
            c.itlb_entries = (c.itlb_entries / 2).max(1);
            c.dtlb_entries = (c.dtlb_entries / 2).max(1);
            c.btb_entries = (c.btb_entries / 2).max(2);
            c.mite_width *= 0.72;
            c.dsb_width *= 0.72;
            c.fetch_mlp = (c.fetch_mlp * 0.72).max(1.0);
            share_uncore(&mut c, procs / 2);
            c.name = format!("{} [{}]", base.name, scenario.label());
        }
    }
    c.validate();
    c
}

fn share_uncore(c: &mut HostConfig, procs: u64) {
    let procs = procs.max(1);
    // Each process gets an LLC share; keep geometry consistent by
    // reducing associativity first, then size.
    let shrink = |size: u64| (size / procs).max(c.line * c.llc.assoc);
    c.llc.size = round_geometry(shrink(c.llc.size), c.llc.assoc, c.line);
    // L2 is private per core on Xeon-likes; shared-L2 machines (M1
    // clusters) express sharing by passing an already-divided L2 in the
    // base config.
}

/// Rounds `size` down to a multiple of `assoc * line`.
fn round_geometry(size: u64, assoc: u64, line: u64) -> u64 {
    let unit = assoc * line;
    (size / unit).max(1) * unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeom;

    fn base() -> HostConfig {
        HostConfig {
            name: "base".into(),
            width: 4,
            mite_width: 2.6,
            dsb_width: 6.0,
            dsb_uops: 1536,
            freq_ghz: 3.0,
            line: 64,
            page: 4096,
            l1i: CacheGeom::kib(32, 8),
            l1d: CacheGeom::kib(32, 8),
            l2: CacheGeom::mib(1, 16),
            llc: CacheGeom::mib(32, 16),
            l2_lat: 14,
            llc_lat: 44,
            dram_lat: 280,
            itlb_entries: 128,
            dtlb_entries: 64,
            stlb_entries: 1536,
            stlb_lat: 8,
            walk_lat: 35,
            bp_bits: 13,
            btb_entries: 4096,
            mispredict_penalty: 17,
            resteer_cycles: 9,
            loop_reach: 48,
            bytes_per_uop: 3.6,
            uops_per_inst: 1.1,
            mlp: 3.0,
            fetch_mlp: 2.0,
            prefetch_factor: 0.08,
        }
    }

    #[test]
    fn single_is_identity_modulo_name() {
        let b = base();
        let c = corun_adjust(&b, CorunScenario::Single);
        assert_eq!(b, c);
    }

    #[test]
    fn per_core_shares_only_uncore() {
        let b = base();
        let c = corun_adjust(&b, CorunScenario::PerPhysicalCore { procs: 16 });
        assert_eq!(c.l1i, b.l1i, "private L1s intact");
        assert!(c.llc.size <= b.llc.size / 16 + b.line * b.llc.assoc);
        assert_eq!(c.width, b.width);
    }

    #[test]
    fn smt_halves_core_resources() {
        let b = base();
        let c = corun_adjust(&b, CorunScenario::PerHardwareThread { procs: 40 });
        assert_eq!(c.l1i.size, b.l1i.size * 3 / 4);
        assert_eq!(c.dsb_uops, b.dsb_uops / 2);
        assert_eq!(c.width, b.width, "retire width is shared dynamically");
        assert!(c.mite_width < b.mite_width);
        assert!(c.llc.size < b.llc.size / 16);
    }

    #[test]
    fn derived_configs_validate() {
        for s in [
            CorunScenario::Single,
            CorunScenario::PerPhysicalCore { procs: 20 },
            CorunScenario::PerHardwareThread { procs: 40 },
        ] {
            corun_adjust(&base(), s).validate();
        }
    }

    #[test]
    fn for_harts_mirrors_guest_corun_width() {
        assert_eq!(CorunScenario::for_harts(1), CorunScenario::Single);
        assert_eq!(
            CorunScenario::for_harts(4),
            CorunScenario::PerPhysicalCore { procs: 4 }
        );
        assert_eq!(CorunScenario::for_harts(1).procs(), 1);
        assert_eq!(CorunScenario::for_harts(4).procs(), 4);
        assert_eq!(CorunScenario::PerHardwareThread { procs: 40 }.procs(), 40);
    }

    #[test]
    fn labels_are_distinct() {
        let a = CorunScenario::PerPhysicalCore { procs: 20 }.label();
        let b = CorunScenario::PerHardwareThread { procs: 40 }.label();
        assert_ne!(a, b);
    }
}
