//! Host branch prediction: a gshare conditional predictor and a BTB for
//! taken/indirect targets. BTB misses on taken transfers are the
//! "unknown branches" of the paper's Fig. 4 — the front end cannot even
//! tell where to fetch next until the branch unit decodes the target.

/// Host branch predictor state.
#[derive(Debug, Clone)]
pub struct HostBranchPredictor {
    table: Vec<u8>, // 2-bit counters
    mask: u64,
    history: u64,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    btb_mask: u64,
    /// Conditional branches predicted.
    pub cond_lookups: u64,
    /// Conditional mispredictions.
    pub mispredicts: u64,
    /// Taken transfers whose target was absent/wrong in the BTB.
    pub unknown_branches: u64,
    /// Indirect transfers seen.
    pub indirect_lookups: u64,
}

impl HostBranchPredictor {
    /// Builds a predictor with `2^bp_bits` counters and `btb_entries`
    /// BTB slots.
    ///
    /// # Panics
    ///
    /// Panics if `btb_entries` is not a power of two.
    pub fn new(bp_bits: u32, btb_entries: u64) -> Self {
        assert!(btb_entries.is_power_of_two());
        HostBranchPredictor {
            table: vec![2; 1 << bp_bits],
            mask: (1u64 << bp_bits) - 1,
            history: 0,
            btb_tags: vec![u64::MAX; btb_entries as usize],
            btb_targets: vec![0; btb_entries as usize],
            btb_mask: btb_entries - 1,
            cond_lookups: 0,
            mispredicts: 0,
            unknown_branches: 0,
            indirect_lookups: 0,
        }
    }

    /// Predicts + trains a conditional branch at `site` with resolved
    /// `outcome`; returns `true` on misprediction. `loop_covered` marks
    /// branches whose periodic pattern a long-history loop predictor
    /// captures — they never mispredict. On taken branches the BTB is
    /// also consulted/updated; an absent target counts as an
    /// unknown-branch resteer (returned separately).
    #[inline]
    pub fn cond_branch(&mut self, site: u64, outcome: bool, loop_covered: bool) -> (bool, bool) {
        self.cond_lookups += 1;
        let idx = ((hosttrace::mix64(site) ^ self.history) & self.mask) as usize;
        let ctr = &mut self.table[idx];
        let predicted = *ctr >= 2;
        if outcome {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | outcome as u64) & self.mask;
        let mispredicted = predicted != outcome && !loop_covered;
        if mispredicted {
            self.mispredicts += 1;
        }
        let mut unknown = false;
        if outcome && !mispredicted {
            // Correct-direction taken branch still needs a BTB target.
            unknown = !self.btb_check(site, site ^ 0x5555);
            if unknown {
                self.unknown_branches += 1;
            }
        }
        (mispredicted, unknown)
    }

    /// Processes an indirect transfer at `site` to `target`; returns
    /// `true` if the front end had no (or the wrong) target — an
    /// unknown-branch resteer.
    #[inline]
    pub fn indirect_branch(&mut self, site: u64, target: u64) -> bool {
        self.indirect_lookups += 1;
        let unknown = !self.btb_check(site, target);
        if unknown {
            self.unknown_branches += 1;
        }
        unknown
    }

    /// Checks and updates the BTB; returns `true` if `site → target`
    /// was already present.
    #[inline]
    fn btb_check(&mut self, site: u64, target: u64) -> bool {
        let idx = (hosttrace::mix64(site) & self.btb_mask) as usize;
        let hit = self.btb_tags[idx] == site && self.btb_targets[idx] == target;
        self.btb_tags[idx] = site;
        self.btb_targets[idx] = target;
        hit
    }

    /// Conditional misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.cond_lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_sites_become_predictable() {
        let mut bp = HostBranchPredictor::new(12, 512);
        let mut wrong = 0;
        for i in 0..1000 {
            let (mis, _) = bp.cond_branch(0x400100, i % 200 != 199, false);
            if i > 100 && mis {
                wrong += 1;
            }
        }
        assert!(wrong < 20, "biased branch mispredicted {wrong}/900");
    }

    #[test]
    fn random_sites_defeat_prediction() {
        let mut bp = HostBranchPredictor::new(12, 512);
        let mut wrong = 0;
        for i in 0..1000u64 {
            let outcome = hosttrace::mix64(i) & 1 == 1;
            let (mis, _) = bp.cond_branch(0x400200, outcome, false);
            if mis {
                wrong += 1;
            }
        }
        assert!(wrong > 300);
    }

    #[test]
    fn stable_indirect_targets_learn() {
        let mut bp = HostBranchPredictor::new(12, 512);
        assert!(bp.indirect_branch(0x1000, 0x2000), "cold miss");
        assert!(!bp.indirect_branch(0x1000, 0x2000), "learned");
        assert!(bp.indirect_branch(0x1000, 0x3000), "polymorphic flip");
        assert_eq!(bp.unknown_branches, 2);
    }

    #[test]
    fn btb_capacity_pressure_creates_unknown_branches() {
        let mut small = HostBranchPredictor::new(12, 64);
        let mut large = HostBranchPredictor::new(12, 8192);
        for round in 0..5 {
            for s in 0..2000u64 {
                small.indirect_branch(s * 8, s);
                large.indirect_branch(s * 8, s);
            }
            let _ = round;
        }
        assert!(small.unknown_branches > 2 * large.unknown_branches);
    }

    #[test]
    fn rates_bounded() {
        let bp = HostBranchPredictor::new(10, 64);
        assert_eq!(bp.mispredict_rate(), 0.0);
    }
}
