//! Host CPU microarchitecture model with Yasin-style **Top-Down** cycle
//! accounting.
//!
//! This crate stands in for the hardware + PMU side of the paper's
//! methodology (VTune/perf on the Xeon, privileged counter reads on the
//! M1s, FireSim for configurable hosts). A [`HostEngine`] consumes the
//! host instruction stream produced by `hosttrace` and models:
//!
//! * the **front end**: L1I + iTLB/STLB (page-size and huge-page aware),
//!   branch direction prediction and BTB (indirect-dispatch "unknown
//!   branch" resteers), and the decode path — DSB (µop cache) vs MITE
//!   (legacy decoders);
//! * the **back end**: L1D/dTLB and the shared L2/LLC/DRAM hierarchy with
//!   memory-level parallelism;
//! * **Top-Down accounting**: every cycle is attributed to retiring,
//!   front-end latency (iCache / iTLB / mispredict resteer / clear
//!   resteer / unknown branch), front-end bandwidth (MITE / DSB), bad
//!   speculation, or back-end (L2/LLC/DRAM/core) — summing exactly to the
//!   total, which is enforced by property tests.
//!
//! Platform configurations for the paper's Table II machines and the
//! FireSim host live in the `platforms` crate.

pub mod branch;
pub mod cache;
pub mod config;
pub mod corun;
pub mod dsb;
pub mod engine;
pub mod stats;
pub mod tlb;
pub mod topdown;

pub use config::{CacheGeom, HostConfig};
pub use corun::{corun_adjust, CorunScenario};
pub use engine::HostEngine;
pub use stats::HostRunStats;
pub use topdown::{FeBandwidth, FeLatency, TopDown};
