//! Host TLBs. Entries are keyed by opaque *page identifiers* supplied by
//! the text layout (which collapses huge-page-backed code onto 2 MB page
//! ids), so page size and huge-page effects flow through naturally.

/// Result of a two-level TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbResult {
    /// First-level hit: free.
    L1Hit,
    /// Second-level hit: costs the STLB latency.
    StlbHit,
    /// Full page walk.
    Walk,
}

/// A 4-way set-associative TLB level with hashed indexing and LRU
/// replacement (real first-level TLBs are 4–8-way).
#[derive(Debug, Clone)]
struct TlbLevel {
    slots: Vec<u64>, // sets x 4
    lru: Vec<u32>,
    mask: u64, // set mask
    clock: u32,
}

const TLB_WAYS: usize = 4;

impl TlbLevel {
    fn new(entries: u64) -> Self {
        let sets = (entries / TLB_WAYS as u64).next_power_of_two().max(1);
        TlbLevel {
            slots: vec![u64::MAX; (sets as usize) * TLB_WAYS],
            lru: vec![0; (sets as usize) * TLB_WAYS],
            mask: sets - 1,
            clock: 0,
        }
    }

    #[inline]
    fn access(&mut self, page: u64) -> bool {
        self.clock = self.clock.wrapping_add(1);
        let set = (hosttrace::mix64(page) & self.mask) as usize;
        let base = set * TLB_WAYS;
        let mut victim = base;
        let mut victim_lru = u32::MAX;
        for i in base..base + TLB_WAYS {
            if self.slots[i] == page {
                self.lru[i] = self.clock;
                return true;
            }
            if self.lru[i] < victim_lru {
                victim_lru = self.lru[i];
                victim = i;
            }
        }
        self.slots[victim] = page;
        self.lru[victim] = self.clock;
        false
    }
}

/// A two-level host TLB (L1 TLB + shared STLB).
#[derive(Debug, Clone)]
pub struct HostTlb {
    l1: TlbLevel,
    stlb: Option<TlbLevel>,
    /// Lookups.
    pub lookups: u64,
    /// First-level misses.
    pub l1_misses: u64,
    /// Full walks.
    pub walks: u64,
}

impl HostTlb {
    /// Builds a TLB with `l1_entries` and (if nonzero) `stlb_entries`.
    pub fn new(l1_entries: u64, stlb_entries: u64) -> Self {
        HostTlb {
            l1: TlbLevel::new(l1_entries),
            stlb: (stlb_entries > 0).then(|| TlbLevel::new(stlb_entries)),
            lookups: 0,
            l1_misses: 0,
            walks: 0,
        }
    }

    /// Translates `page`.
    #[inline]
    pub fn access(&mut self, page: u64) -> TlbResult {
        self.lookups += 1;
        if self.l1.access(page) {
            return TlbResult::L1Hit;
        }
        self.l1_misses += 1;
        if let Some(stlb) = &mut self.stlb {
            if stlb.access(page) {
                return TlbResult::StlbHit;
            }
        }
        self.walks += 1;
        TlbResult::Walk
    }

    /// First-level miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits() {
        let mut t = HostTlb::new(64, 0);
        assert_eq!(t.access(42), TlbResult::Walk);
        assert_eq!(t.access(42), TlbResult::L1Hit);
        assert_eq!(t.lookups, 2);
        assert_eq!(t.walks, 1);
    }

    #[test]
    fn stlb_catches_l1_misses() {
        // L1 TLB holds one 4-way set here; touching 5 pages evicts the
        // LRU (page 0), which the larger STLB still holds.
        let mut t = HostTlb::new(4, 1024);
        for p in 0..5u64 {
            t.access(p);
        }
        let r = t.access(0);
        assert_eq!(r, TlbResult::StlbHit);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut small = HostTlb::new(16, 0);
        let mut large = HostTlb::new(4096, 0);
        for round in 0..30 {
            for p in 0..512u64 {
                small.access(p);
                large.access(p);
            }
            let _ = round;
        }
        assert!(small.miss_rate() > 5.0 * large.miss_rate());
    }

    #[test]
    fn fewer_pages_fewer_misses() {
        // Same address stream, 4x larger pages => 4x fewer distinct pages.
        let mut t4k = HostTlb::new(64, 0);
        let mut t16k = HostTlb::new(64, 0);
        for round in 0..5 {
            for addr in (0..2_000_000u64).step_by(4096) {
                t4k.access(addr / 4096);
                t16k.access(addr / 16384);
            }
            let _ = round;
        }
        assert!(t16k.l1_misses < t4k.l1_misses / 2);
    }
}
