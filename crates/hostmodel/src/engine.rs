//! The host execution engine: consumes the host instruction stream and
//! performs Top-Down cycle accounting.

use crate::branch::HostBranchPredictor;
use crate::cache::HostCache;
use crate::config::HostConfig;
use crate::dsb::{Dsb, WINDOW};
use crate::stats::HostRunStats;
use crate::tlb::{HostTlb, TlbResult};
use crate::topdown::TopDown;
use hosttrace::record::{DataRef, ExecRecord, TraceSink};
use hosttrace::registry::Registry;
use hosttrace::{mix2, mix64};
use std::sync::Arc;

/// Host virtual address of the simulated process's stack (function-local
/// data in [`ExecRecord`]s lands here — hot and small).
const STACK_BASE: u64 = 0x7FFF_F000_0000;

/// Host virtual address of the allocator arena holding SimObject state
/// reached through member pointers (distinct from the instrumented
/// state regions reported via [`DataRef`]s).
const HEAP_BASE: u64 = 0x20_0000_0000;

/// The engine. Implements [`TraceSink`]; feed it a stream, then call
/// [`finish`](HostEngine::finish).
#[derive(Debug)]
pub struct HostEngine {
    cfg: HostConfig,
    reg: Arc<Registry>,
    l1i: HostCache,
    l1d: HostCache,
    l2: HostCache,
    llc: HostCache,
    itlb: HostTlb,
    dtlb: HostTlb,
    bp: HostBranchPredictor,
    dsb: Dsb,
    td: TopDown,
    uops: u64,
    dram_bytes: u64,
    records: u64,
    last_data_line: u64,
}

impl HostEngine {
    /// Builds an engine for `cfg` over the binary model `reg`.
    pub fn new(cfg: HostConfig, reg: Arc<Registry>) -> Self {
        cfg.validate();
        HostEngine {
            l1i: HostCache::new(cfg.l1i, cfg.line),
            l1d: HostCache::new(cfg.l1d, cfg.line),
            l2: HostCache::new(cfg.l2, cfg.line),
            llc: HostCache::new(cfg.llc, cfg.line),
            itlb: HostTlb::new(cfg.itlb_entries, cfg.stlb_entries),
            dtlb: HostTlb::new(cfg.dtlb_entries, cfg.stlb_entries),
            bp: HostBranchPredictor::new(cfg.bp_bits, cfg.btb_entries),
            dsb: Dsb::new(cfg.dsb_uops),
            td: TopDown::default(),
            uops: 0,
            dram_bytes: 0,
            records: 0,
            last_data_line: u64::MAX - 8,
            cfg,
            reg,
        }
    }

    /// The configuration this engine models.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Fills an instruction-side line through L2 → LLC → DRAM; returns
    /// the raw penalty in cycles.
    #[inline]
    fn fill_iside(&mut self, line: u64) -> f64 {
        if self.l2.access(line) {
            self.cfg.l2_lat as f64
        } else if self.llc.access(line) {
            self.cfg.llc_lat as f64
        } else {
            self.dram_bytes += self.cfg.line;
            self.cfg.dram_lat as f64
        }
    }

    /// Fills a data-side line; returns `(penalty, level)` where level
    /// indexes the Top-Down back-end bucket (0 = L2, 1 = LLC, 2 = DRAM).
    #[inline]
    fn fill_dside(&mut self, line: u64) -> (f64, usize) {
        if self.l2.access(line) {
            (self.cfg.l2_lat as f64, 0)
        } else if self.llc.access(line) {
            (self.cfg.llc_lat as f64, 1)
        } else {
            self.dram_bytes += self.cfg.line;
            (self.cfg.dram_lat as f64, 2)
        }
    }

    #[inline]
    fn be_mem_add(&mut self, level: usize, cycles: f64) {
        match level {
            0 => self.td.be_mem.l2 += cycles,
            1 => self.td.be_mem.llc += cycles,
            _ => self.td.be_mem.dram += cycles,
        }
    }

    /// Generates the outcome of dynamic conditional branch number `k` at a
    /// site with the given taken bias, returning `(outcome, period)`:
    /// well-biased sites behave like loop back-edges (periodic exits,
    /// `period = Some(..)`), low-bias sites are data-dependent
    /// (`period = None`).
    #[inline]
    fn branch_outcome(site: u64, taken_rate: u8, k: u64) -> (bool, Option<u64>) {
        if taken_rate >= 86 {
            let period = 64 + (taken_rate as u64 - 85) * 40 + (mix64(site) % 64);
            ((k + site) % period != 0, Some(period))
        } else {
            ((mix2(site, k) % 100) < taken_rate as u64, None)
        }
    }

    /// Consumes the engine and produces final statistics.
    pub fn finish(self) -> HostRunStats {
        let insts = self.uops as f64 / self.cfg.uops_per_inst;
        HostRunStats {
            name: self.cfg.name.clone(),
            cycles: self.td.total_cycles(),
            uops: self.uops,
            instructions: insts,
            freq_ghz: self.cfg.freq_ghz,
            topdown: self.td,
            l1i_accesses: self.l1i.accesses,
            l1i_miss_rate: self.l1i.miss_rate(),
            l1d_accesses: self.l1d.accesses,
            l1d_miss_rate: self.l1d.miss_rate(),
            itlb_miss_rate: self.itlb.miss_rate(),
            dtlb_miss_rate: self.dtlb.miss_rate(),
            branch_lookups: self.bp.cond_lookups,
            branch_mispredict_rate: self.bp.mispredict_rate(),
            unknown_branches: self.bp.unknown_branches,
            dsb_coverage: self.dsb.coverage(),
            llc_occupancy_bytes: self.llc.occupancy_bytes(),
            dram_bytes: self.dram_bytes,
            records: self.records,
        }
    }
}

impl TraceSink for HostEngine {
    fn exec(&mut self, r: ExecRecord) {
        self.records += 1;
        let meta = self.reg.meta(r.func);
        let (addr, size, taken_rate) = (meta.addr, meta.size as u64, meta.taken_rate);
        let uops = r.uops as u64;
        let uopsf = uops as f64;
        self.uops += uops;
        let width = self.cfg.width as f64;
        let base = uopsf / width;
        self.td.retiring += base;

        // --- Instruction fetch: line touches over the executed span.
        //     Successive invocations take different paths through the
        //     function body, so the span start rotates within it. ---
        let bytes = ((uopsf * self.cfg.bytes_per_uop) as u64).max(16);
        let span = bytes.min(size + 16); // longer executions loop in place
        let off = ((r.variant as u64) * 96) % (size.saturating_sub(span) + 1);
        let base_addr = addr;
        // Branch sites are static program points: the executed path picks
        // among a per-function set of 256 B regions, so sites recur and
        // predictors can learn them.
        let site_base = base_addr + (off & !255);
        let addr = addr + off;
        let end = addr + span;
        let line_mask = !(self.cfg.line - 1);
        let mut line = addr & line_mask;
        let mut fetch_pen = 0.0;
        while line < end {
            if !self.l1i.access(line) {
                fetch_pen += self.fill_iside(line);
            }
            line += self.cfg.line;
        }
        self.td.fe_latency.icache += fetch_pen / self.cfg.fetch_mlp;

        // --- iTLB over the touched pages (huge-page aware). ---
        let page = self.cfg.page;
        let mut paddr = addr & !(page - 1);
        let mut itlb_pen = 0.0;
        let mut last_pid = u64::MAX;
        while paddr < end {
            let pid = self.reg.layout().page_id(paddr, page);
            if pid != last_pid {
                last_pid = pid;
                match self.itlb.access(pid) {
                    TlbResult::L1Hit => {}
                    TlbResult::StlbHit => itlb_pen += self.cfg.stlb_lat as f64,
                    TlbResult::Walk => itlb_pen += self.cfg.walk_lat as f64,
                }
            }
            paddr += page;
        }
        // Page walks serialize instruction delivery far more than line
        // fills do; only adjacent-fetch overlap (x2) hides them.
        self.td.fe_latency.itlb += itlb_pen / 2.0;

        // --- Decode: DSB vs MITE. The record's µops are apportioned to
        //     the two supply paths by the fraction of its fetch windows
        //     resident in the µop cache. ---
        let wstart = addr & !(WINDOW - 1);
        let n_windows = (end - wstart).div_ceil(WINDOW).max(1);
        let uops_per_window = (uops / n_windows).max(1);
        let mut hits = 0u64;
        let mut w = wstart;
        while w < end {
            if self.dsb.fetch_window(w, uops_per_window) {
                hits += 1;
            }
            w += WINDOW;
        }
        let dsb_frac = if self.dsb.present() {
            hits as f64 / n_windows as f64
        } else {
            0.0
        };
        let mite_uops_f = uopsf * (1.0 - dsb_frac);
        let decode_cycles =
            mite_uops_f / self.cfg.mite_width + (uopsf - mite_uops_f) / self.cfg.dsb_width.max(1.0);
        let deficit = (decode_cycles - base).max(0.0);
        if deficit > 0.0 {
            // Attribute the shortfall to the slow component first: the
            // legacy decoders. The DSB only appears when it is itself the
            // limiter (Intel's accounting does the same, which is why the
            // paper sees 92-97% MITE).
            let mite_excess = (mite_uops_f / self.cfg.mite_width - mite_uops_f / width).max(0.0);
            let to_mite = deficit.min(mite_excess);
            self.td.fe_bandwidth.mite += to_mite;
            self.td.fe_bandwidth.dsb += deficit - to_mite;
        }

        // --- Conditional branches. ---
        let penalty = self.cfg.mispredict_penalty as f64;
        let resteer = self.cfg.resteer_cycles as f64;
        let n_cond = r.cond_branches as u64;
        for j in 0..n_cond {
            let site = site_base + 16 + (j * 24) % size.max(24);
            let k = r.variant as u64 * n_cond + j;
            let (outcome, period) = Self::branch_outcome(site, taken_rate, k);
            // Loop-termination predictors (TAGE-style long history)
            // capture periodic exits up to the machine's reach.
            let loop_covered = period.is_some_and(|p| p <= self.cfg.loop_reach);
            let (mis, unknown) = self.bp.cond_branch(site, outcome, loop_covered);
            if mis {
                // Wrong-path work is bad speculation; the fetch redirect
                // is a front-end resteer.
                self.td.bad_speculation += penalty * 0.55;
                self.td.fe_latency.mispredict_resteers += penalty * 0.45;
            } else if unknown {
                self.td.fe_latency.unknown_branches += resteer * 0.6;
            }
        }

        // --- Indirect branches (virtual dispatch). ---
        for j in 0..r.indirect_branches as u64 {
            let site = site_base + 8 + j * 40;
            // Site polymorphism: most virtual call sites are monomorphic
            // in practice; a minority see several receiver types.
            let h = mix64(site ^ 0xD15EA5E);
            let poly = if h % 8 == 0 { 2 + mix64(h) % 4 } else { 1 };
            let target = mix2(site, r.variant as u64 % poly);
            if self.bp.indirect_branch(site, target) {
                self.td.fe_latency.unknown_branches += resteer;
            }
        }

        // --- Machine clears (memory-order nukes etc.) are rare and tied
        //     to store traffic. ---
        self.td.fe_latency.clear_resteers += r.stores as f64 * 0.004 * penalty * 0.3;
        self.td.bad_speculation += r.stores as f64 * 0.004 * penalty * 0.7;

        // --- Function-local data: mostly stack (hot, tiny), with every
        //     third load reaching the heap — SimObject fields scattered by
        //     the allocator over ~1.5 MB of pages. The heap lines are hot
        //     (revisited each invocation) but the *pages* are many: this
        //     is what pressures the dTLB without pressuring DRAM, as the
        //     paper observes. ---
        let fid = r.func.0 as u64;
        for j in 0..r.loads as u64 {
            let a = if j % 4 == 3 {
                HEAP_BASE + (mix2(fid, j) % (1_500_000 / 64)) * 64
            } else {
                STACK_BASE + (fid.wrapping_mul(968) + j * 64) % 10240
            };
            if j % 4 == 3 {
                let pid = a / self.cfg.page;
                match self.dtlb.access(pid) {
                    TlbResult::L1Hit => {}
                    TlbResult::StlbHit => {
                        self.td.be_mem.l2 += self.cfg.stlb_lat as f64 / self.cfg.mlp
                    }
                    TlbResult::Walk => self.td.be_mem.l2 += self.cfg.walk_lat as f64 / self.cfg.mlp,
                }
            }
            if !self.l1d.access(a) {
                let (pen, lvl) = self.fill_dside(a & line_mask);
                self.be_mem_add(lvl, pen / self.cfg.mlp);
            }
        }
        for j in 0..r.stores as u64 {
            let a = STACK_BASE + (fid.wrapping_mul(968) + 5120 + j * 64) % 10240;
            if !self.l1d.access(a) {
                let (pen, lvl) = self.fill_dside(a & line_mask);
                // Stores drain through the store buffer: mostly hidden.
                self.be_mem_add(lvl, pen * 0.15 / self.cfg.mlp);
            }
        }

        // --- Residual core stalls: long dependency chains, division. ---
        self.td.be_core += uopsf * 0.012;
    }

    fn data(&mut self, d: DataRef) {
        // Hardware stride prefetchers hide most of the cost of
        // forward-sequential streams (and page walks amortize over them):
        // the paper's Sec. IV-A notes gem5's "predictable data cache
        // accesses ... efficiently captured by the hardware prefetchers".
        let this_line = d.addr / self.cfg.line;
        let delta = this_line.wrapping_sub(self.last_data_line);
        let prefetched = delta <= 4; // covers same-line and small forward strides
        self.last_data_line = this_line;
        let stream_factor = if prefetched {
            self.cfg.prefetch_factor
        } else {
            1.0
        };

        let pid = d.addr / self.cfg.page;
        let walk_factor = stream_factor / self.cfg.mlp;
        match self.dtlb.access(pid) {
            TlbResult::L1Hit => {}
            TlbResult::StlbHit => self.td.be_mem.l2 += self.cfg.stlb_lat as f64 * walk_factor,
            TlbResult::Walk => self.td.be_mem.l2 += self.cfg.walk_lat as f64 * walk_factor,
        }
        let line_mask = !(self.cfg.line - 1);
        let mut line = d.addr & line_mask;
        let end = d.addr + d.bytes as u64;
        while line < end {
            if !self.l1d.access(line) {
                let (pen, lvl) = self.fill_dside(line);
                let factor = if d.write { 0.15 } else { 1.0 };
                self.be_mem_add(lvl, pen * factor * stream_factor / self.cfg.mlp);
            }
            line += self.cfg.line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeom;
    use hosttrace::layout::PageBacking;
    use hosttrace::registry::{BinaryVariant, FunctionId};

    fn cfg() -> HostConfig {
        HostConfig {
            name: "test".into(),
            width: 4,
            mite_width: 2.6,
            dsb_width: 6.0,
            dsb_uops: 1536,
            freq_ghz: 3.0,
            line: 64,
            page: 4096,
            l1i: CacheGeom::kib(32, 8),
            l1d: CacheGeom::kib(32, 8),
            l2: CacheGeom::mib(1, 16),
            llc: CacheGeom::mib(8, 16),
            l2_lat: 14,
            llc_lat: 44,
            dram_lat: 280,
            itlb_entries: 128,
            dtlb_entries: 64,
            stlb_entries: 1536,
            stlb_lat: 8,
            walk_lat: 35,
            bp_bits: 13,
            btb_entries: 4096,
            mispredict_penalty: 17,
            resteer_cycles: 9,
            loop_reach: 48,
            bytes_per_uop: 3.6,
            uops_per_inst: 1.1,
            mlp: 3.0,
            fetch_mlp: 2.0,
            prefetch_factor: 0.08,
        }
    }

    fn registry() -> Arc<Registry> {
        Arc::new(Registry::new(BinaryVariant::Base, PageBacking::Base))
    }

    fn rec(func: u32, uops: u16, variant: u32) -> ExecRecord {
        ExecRecord {
            func: FunctionId(func),
            uops,
            cond_branches: 3,
            indirect_branches: 1,
            loads: 4,
            stores: 2,
            variant,
        }
    }

    #[test]
    fn accounting_is_conserved() {
        let mut e = HostEngine::new(cfg(), registry());
        for i in 0..5000u32 {
            e.exec(rec(i % 4000, 20, i / 4000));
            e.data(DataRef {
                addr: 0x10_0000_0000 + (i as u64 * 192) % 65536,
                bytes: 64,
                write: i % 3 == 0,
            });
        }
        let s = e.finish();
        let (r, f, b, be) = s.topdown.level1_pct();
        assert!((r + f + b + be - 100.0).abs() < 1e-6, "{r} {f} {b} {be}");
        assert!(s.cycles > 0.0);
        assert!(s.ipc() > 0.0);
    }

    #[test]
    fn scattered_code_is_front_end_bound_hot_loop_is_not() {
        let reg = registry();
        // Hot loop: one small function repeatedly.
        let mut hot = HostEngine::new(cfg(), Arc::clone(&reg));
        for i in 0..20000u32 {
            hot.exec(rec(100, 24, i));
        }
        let hot_s = hot.finish();

        // Scattered: thousands of different functions.
        let mut cold = HostEngine::new(cfg(), Arc::clone(&reg));
        for i in 0..20000u32 {
            cold.exec(rec(i % 5000, 24, i / 5000));
        }
        let cold_s = cold.finish();

        let (_, hot_fe, _, _) = hot_s.topdown.level1_pct();
        let (_, cold_fe, _, _) = cold_s.topdown.level1_pct();
        assert!(
            cold_fe > 2.0 * hot_fe.max(1.0),
            "cold {cold_fe:.1}% vs hot {hot_fe:.1}%"
        );
        assert!(cold_s.dsb_coverage < 0.3);
        assert!(hot_s.dsb_coverage > 0.8);
        assert!(cold_s.itlb_miss_rate > hot_s.itlb_miss_rate);
    }

    #[test]
    fn bigger_l1i_reduces_icache_stalls() {
        let reg = registry();
        let run = |l1i_kib: u64| {
            let mut c = cfg();
            c.l1i = CacheGeom::kib(l1i_kib, 8);
            let mut e = HostEngine::new(c, Arc::clone(&reg));
            // Skewed random function selection (as real call profiles
            // are), not a cyclic sweep that would defeat LRU entirely:
            // 95% of calls hit a hot set of 150 functions (~100 KB of
            // code: beyond 8 KB, within 192 KB). Enough records that the
            // cold tail's compulsory DRAM fetches amortize.
            for i in 0..120_000u64 {
                let h = mix64(i);
                let f = if h % 20 != 0 {
                    h % 150
                } else {
                    150 + mix64(h) % 2350
                };
                e.exec(rec(f as u32, 24, (i / 150) as u32));
            }
            e.finish()
        };
        let small = run(8);
        let large = run(192);
        // Compulsory misses on the cold tail hit both configurations
        // equally; the capacity effect shows in the miss *rate* and in
        // total cycles.
        assert!(
            small.l1i_miss_rate > 2.0 * large.l1i_miss_rate,
            "small {} vs large {}",
            small.l1i_miss_rate,
            large.l1i_miss_rate
        );
        assert!(small.topdown.fe_latency.icache > 1.5 * large.topdown.fe_latency.icache);
        assert!(small.cycles > large.cycles);
    }

    #[test]
    fn larger_pages_reduce_itlb_stalls() {
        let reg = registry();
        let run = |page: u64| {
            let mut c = cfg();
            c.page = page;
            let mut e = HostEngine::new(c, Arc::clone(&reg));
            for i in 0..30000u32 {
                e.exec(rec(i % 2500, 24, i / 2500));
            }
            e.finish()
        };
        let p4k = run(4096);
        let p16k = run(16384);
        assert!(
            p16k.topdown.fe_latency.itlb < p4k.topdown.fe_latency.itlb,
            "16k {} vs 4k {}",
            p16k.topdown.fe_latency.itlb,
            p4k.topdown.fe_latency.itlb
        );
    }

    #[test]
    fn huge_page_backing_reduces_itlb_stalls() {
        let run = |backing: PageBacking| {
            let reg = Arc::new(Registry::new(BinaryVariant::Base, backing));
            let mut e = HostEngine::new(cfg(), reg);
            for i in 0..30000u32 {
                e.exec(rec(i % 2500, 24, i / 2500));
            }
            e.finish()
        };
        let base = run(PageBacking::Base);
        let thp = run(PageBacking::thp());
        let ehp = run(PageBacking::Ehp);
        assert!(thp.topdown.fe_latency.itlb < base.topdown.fe_latency.itlb * 0.6);
        assert!(ehp.topdown.fe_latency.itlb <= thp.topdown.fe_latency.itlb);
    }

    #[test]
    fn sim_state_working_set_shows_in_llc_not_dram() {
        let mut e = HostEngine::new(cfg(), registry());
        // A 1 MB simulated-state working set, touched repeatedly.
        for round in 0..20u64 {
            for off in (0..1_048_576u64).step_by(64) {
                e.data(DataRef {
                    addr: 0x10_0000_0000 + off,
                    bytes: 32,
                    write: round % 4 == 0,
                });
            }
        }
        let s = e.finish();
        assert!(s.llc_occupancy_bytes > 512 * 1024);
        // After warmup, DRAM traffic is only the initial fills (1 MB),
        // not the 20 MB of repeated touches.
        assert!(
            (s.dram_bytes as f64) < 0.15 * (20.0 * 1_048_576.0),
            "dram {}",
            s.dram_bytes
        );
    }

    #[test]
    fn branch_outcomes_are_mostly_predictable_for_biased_sites() {
        let mut e = HostEngine::new(cfg(), registry());
        for i in 0..50000u32 {
            e.exec(rec(200, 24, i));
        }
        let s = e.finish();
        assert!(
            s.branch_mispredict_rate < 0.05,
            "{}",
            s.branch_mispredict_rate
        );
        assert!(s.branch_lookups > 100_000);
    }
}
