//! Property-based tests of host-model invariants.

use hostmodel::{CacheGeom, HostConfig, HostEngine};
use hosttrace::record::{DataRef, ExecRecord, TraceSink};
use hosttrace::registry::{BinaryVariant, FunctionId, Registry};
use hosttrace::PageBacking;
use std::sync::{Arc, OnceLock};
use testkit::{prop_assert, prop_assert_eq, run_cases};

fn cfg() -> HostConfig {
    HostConfig {
        name: "prop".into(),
        width: 4,
        mite_width: 3.0,
        dsb_width: 6.0,
        dsb_uops: 576,
        freq_ghz: 3.0,
        line: 64,
        page: 4096,
        l1i: CacheGeom::kib(32, 8),
        l1d: CacheGeom::kib(32, 8),
        l2: CacheGeom::mib(1, 16),
        llc: CacheGeom::mib(8, 16),
        l2_lat: 14,
        llc_lat: 44,
        dram_lat: 280,
        itlb_entries: 128,
        dtlb_entries: 64,
        stlb_entries: 1536,
        stlb_lat: 8,
        walk_lat: 35,
        bp_bits: 13,
        btb_entries: 4096,
        mispredict_penalty: 17,
        resteer_cycles: 7,
        loop_reach: 48,
        bytes_per_uop: 3.6,
        uops_per_inst: 1.1,
        mlp: 3.0,
        fetch_mlp: 8.0,
        prefetch_factor: 0.08,
    }
}

fn registry() -> Arc<Registry> {
    static REG: OnceLock<Arc<Registry>> = OnceLock::new();
    Arc::clone(REG.get_or_init(|| Arc::new(Registry::new(BinaryVariant::Base, PageBacking::Base))))
}

/// Top-Down buckets sum exactly to total cycles for arbitrary record
/// streams, and all derived metrics stay in range.
#[test]
fn accounting_conserved_for_arbitrary_streams() {
    run_cases("accounting_conserved_for_arbitrary_streams", 32, |g| {
        let recs = g.vec(1..400, |g| {
            (
                g.u32_in(0..5000),
                g.u16_in(6..120),
                g.u8_in(0..8),
                g.u8_in(0..3),
                g.u8_in(0..12),
                g.u8_in(0..6),
                g.u32_in(0..100),
            )
        });
        let datas = g.vec(0..200, |g| {
            (g.u64_in(0..1_000_000), g.u32_in(1..256), g.bool())
        });
        let mut e = HostEngine::new(cfg(), registry());
        let nfuncs = registry().len() as u32;
        for &(f, uops, cb, ib, ld, st, v) in &recs {
            e.exec(ExecRecord {
                func: FunctionId(f % nfuncs),
                uops,
                cond_branches: cb,
                indirect_branches: ib,
                loads: ld,
                stores: st,
                variant: v,
            });
        }
        for &(a, b, w) in &datas {
            e.data(DataRef {
                addr: 0x10_0000_0000 + a,
                bytes: b,
                write: w,
            });
        }
        let s = e.finish();
        let (r, fe, bs, be) = s.topdown.level1_pct();
        prop_assert!((r + fe + bs + be - 100.0).abs() < 1e-6);
        prop_assert!(s.cycles > 0.0);
        prop_assert!(s.ipc() > 0.0 && s.ipc() <= 8.0);
        prop_assert!((0.0..=1.0).contains(&s.l1i_miss_rate));
        prop_assert!((0.0..=1.0).contains(&s.dsb_coverage));
        prop_assert!((0.0..=1.0).contains(&s.branch_mispredict_rate));
        prop_assert!(s.llc_occupancy_bytes <= 8 * 1024 * 1024);
        let total_uops: u64 = recs.iter().map(|r| r.1 as u64).sum();
        prop_assert_eq!(s.uops, total_uops);
        Ok(())
    });
}

/// Determinism: the same stream always produces identical stats.
#[test]
fn engine_is_deterministic() {
    run_cases("engine_is_deterministic", 32, |g| {
        let seed = g.u64_in(0..1000);
        let run = || {
            let mut e = HostEngine::new(cfg(), registry());
            for i in 0..200u64 {
                let h = hosttrace::mix64(seed ^ i);
                e.exec(ExecRecord {
                    func: FunctionId((h % registry().len() as u64) as u32),
                    uops: 10 + (h % 40) as u16,
                    cond_branches: (h % 5) as u8,
                    indirect_branches: (h % 2) as u8,
                    loads: (h % 6) as u8,
                    stores: (h % 3) as u8,
                    variant: (i / 7) as u32,
                });
            }
            e.finish()
        };
        prop_assert_eq!(run(), run());
        Ok(())
    });
}

/// Widening any cache never slows the modeled machine down.
#[test]
fn bigger_caches_never_hurt() {
    run_cases("bigger_caches_never_hurt", 10, |g| {
        let l1i_kib = *g.pick(&[8u64, 16, 32, 64, 192]);
        let stream = |e: &mut HostEngine| {
            for i in 0..4000u64 {
                let h = hosttrace::mix64(i);
                e.exec(ExecRecord {
                    func: FunctionId((h % 2000) as u32),
                    uops: 16,
                    cond_branches: 2,
                    indirect_branches: 1,
                    loads: 3,
                    stores: 1,
                    variant: (i / 500) as u32,
                });
            }
        };
        let mut small_cfg = cfg();
        small_cfg.l1i = CacheGeom::kib(8, 8);
        let mut big_cfg = cfg();
        big_cfg.l1i = CacheGeom::kib(l1i_kib, 8);
        let mut small = HostEngine::new(small_cfg, registry());
        let mut big = HostEngine::new(big_cfg, registry());
        stream(&mut small);
        stream(&mut big);
        prop_assert!(big.finish().cycles <= small.finish().cycles * 1.001);
        Ok(())
    });
}
