//! Property tests for the consistent-hash ring: load balance within a
//! stated bound, and minimal key movement on membership change.

use gem5prof_served::cluster::ring::HashRing;
use testkit::{prop_assert, run_cases};

/// Stable member names, shaped like the real router's (host:port).
fn member_names(n: usize, salt: u64) -> Vec<String> {
    (0..n)
        .map(|i| format!("10.0.{salt}.{i}:7{:03}", i + 100))
        .collect()
}

/// Random canonical-looking keys.
fn keys(g: &mut testkit::Gen, k: usize) -> Vec<String> {
    (0..k)
        .map(|_| {
            format!(
                "exp:platform=p{}:workload=w{}",
                g.u64_in(0..1 << 40),
                g.u64_in(0..64)
            )
        })
        .collect()
}

fn owner_name<'a>(ring: &HashRing, names: &'a [String], key: &str) -> &'a str {
    &names[ring.owner(key, |_| true).expect("nonempty ring")]
}

/// With 160+ virtual nodes, member load on a few thousand keys must
/// stay within ±45% of the uniform share — no member becomes the
/// fleet's hot spot, none starves. (The arc-length spread shrinks like
/// `1/sqrt(vnodes)`; the bound leaves ~4σ of headroom so the test is
/// deterministic-tight, not flaky-tight.)
#[test]
fn load_is_balanced_across_4_8_and_16_members() {
    run_cases("ring_balance", 24, |g| {
        let n = *g.pick(&[4usize, 8, 16]);
        let vnodes = *g.pick(&[160usize, 256]);
        let names = member_names(n, g.u64_in(0..200));
        let ring = HashRing::new(&names, vnodes);
        let keys = keys(g, 3000);

        let mut per_member = vec![0u64; n];
        for key in &keys {
            per_member[ring.owner(key, |_| true).unwrap()] += 1;
        }
        let mean = keys.len() as f64 / n as f64;
        for (idx, &count) in per_member.iter().enumerate() {
            let ratio = count as f64 / mean;
            prop_assert!(
                (0.55..=1.45).contains(&ratio),
                "member {idx}/{n} owns {count} of {} keys (ratio {ratio:.3}, vnodes {vnodes})",
                keys.len()
            );
        }
        Ok(())
    });
}

/// Adding a member moves at most `K/(N+1) * slack` keys, and every
/// moved key moves TO the new member — joins only steal for the
/// joiner, so existing warm caches stay warm.
#[test]
fn join_moves_minimal_keys_and_only_to_the_joiner() {
    run_cases("ring_join_movement", 24, |g| {
        let n = *g.pick(&[4usize, 8, 16]);
        let vnodes = 160;
        let salt = g.u64_in(0..200);
        let names = member_names(n + 1, salt);
        let before = HashRing::new(&names[..n], vnodes);
        let after = HashRing::new(&names, vnodes);
        let joiner = &names[n];
        let keys = keys(g, 3000);

        let mut moved = 0u64;
        for key in &keys {
            let old = owner_name(&before, &names, key);
            let new = owner_name(&after, &names, key);
            if old != new {
                moved += 1;
                prop_assert!(
                    new == joiner,
                    "key `{key}` moved {old} -> {new}, not to the joiner {joiner}"
                );
            }
        }
        // Expected movement is K/(N+1); allow 1.5x for arc-length noise.
        let bound = (1.5 * keys.len() as f64 / (n + 1) as f64) as u64;
        prop_assert!(
            moved <= bound,
            "join moved {moved} of {} keys across {n}->{} members (bound {bound})",
            keys.len(),
            n + 1
        );
        Ok(())
    });
}

/// Removing a member moves exactly the keys it owned — everything else
/// keeps its owner, so a node kill invalidates only the dead node's
/// share of the fleet's caches.
#[test]
fn leave_moves_only_the_leavers_keys() {
    run_cases("ring_leave_movement", 24, |g| {
        let n = *g.pick(&[4usize, 8, 16]);
        let vnodes = 160;
        let names = member_names(n, g.u64_in(0..200));
        let full = HashRing::new(&names, vnodes);
        let leaver_idx = g.usize_in(0..n);
        let leaver = &names[leaver_idx];
        let remaining: Vec<String> = names
            .iter()
            .filter(|name| *name != leaver)
            .cloned()
            .collect();
        let shrunk = HashRing::new(&remaining, vnodes);
        let keys = keys(g, 3000);

        let mut moved = 0u64;
        for key in &keys {
            let old = owner_name(&full, &names, key);
            let new = owner_name(&shrunk, &remaining, key);
            if old == leaver {
                moved += 1;
                // Liveness-filtered lookup on the ORIGINAL ring must
                // agree with the rebuilt ring: ejection needs no rebuild.
                let filtered = &names[full.owner(key, |m| m != leaver_idx).unwrap()];
                prop_assert!(
                    filtered == new,
                    "key `{key}`: filtered owner {filtered} != rebuilt owner {new}"
                );
            } else {
                prop_assert!(
                    old == new,
                    "key `{key}` moved {old} -> {new} though {leaver} left"
                );
            }
        }
        let bound = (1.5 * keys.len() as f64 / n as f64) as u64;
        prop_assert!(
            moved <= bound,
            "leave moved {moved} of {} keys across {n} members (bound {bound})",
            keys.len()
        );
        Ok(())
    });
}
