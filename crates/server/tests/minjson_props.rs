//! Property tests for `minjson`: any value the writer can produce must
//! parse back to an equal value (compact and pretty), and a parse →
//! write cycle must be byte-stable.

use gem5prof_served::minjson::{parse, Json};
use testkit::{prop_assert, prop_assert_eq, run_cases, Gen};

/// A string mixing printable ASCII, control characters (which the writer
/// must escape), arbitrary non-surrogate scalars, and the characters the
/// escape table special-cases.
fn gen_string(g: &mut Gen) -> String {
    g.vec(0..12, |g| match g.u8_in(0..4) {
        0 => char::from(g.u8_in(0x20..0x7f)),
        1 => char::from_u32(g.u32_in(0..0x20)).unwrap(),
        2 => {
            // Any Unicode scalar: draw from the code space minus the
            // 0x800-wide surrogate gap, then skip over it.
            let mut c = g.u32_in(0..0x11_0000 - 0x800);
            if c >= 0xD800 {
                c += 0x800;
            }
            char::from_u32(c).unwrap()
        }
        _ => *g.pick(&['"', '\\', '/', '\n', '\t', 'é', '✓', '\u{1F600}']),
    })
    .into_iter()
    .collect()
}

/// Finite numbers across the regimes the writer distinguishes: small
/// integers (written without a fraction), dyadic fractions (exact in
/// binary), integers up to 2⁵³, and raw bit patterns (shortest-round-trip
/// `Display` must survive reparsing for *any* finite f64).
fn gen_number(g: &mut Gen) -> f64 {
    let n = match g.u8_in(0..4) {
        0 => g.i64_in(-1_000_000..1_000_000) as f64,
        1 => g.i64_in(-1_000_000_000..1_000_000_000) as f64 / 1024.0,
        2 => f64::from_bits(g.next_u64()),
        _ => g.i64_in(0..9_007_199_254_740_992) as f64,
    };
    if n.is_finite() {
        n
    } else {
        0.0
    }
}

fn gen_json(g: &mut Gen, depth: usize) -> Json {
    // Leaves only once the tree is deep enough to stay cheap.
    let variants = if depth >= 3 { 4 } else { 6 };
    match g.u8_in(0..variants) {
        0 => Json::Null,
        1 => Json::Bool(g.bool()),
        2 => Json::Num(gen_number(g)),
        3 => Json::Str(gen_string(g)),
        4 => Json::Arr(g.vec(0..5, |g| gen_json(g, depth + 1))),
        _ => Json::Obj(g.vec(0..5, |g| (gen_string(g), gen_json(g, depth + 1)))),
    }
}

#[test]
fn compact_round_trips() {
    run_cases("minjson_compact_round_trip", 256, |g| {
        let v = gen_json(g, 0);
        let text = v.to_string_compact();
        let back = parse(&text).map_err(|e| format!("reparse of `{text}` failed: {e}"))?;
        prop_assert_eq!(back, v);
        Ok(())
    });
}

#[test]
fn pretty_round_trips() {
    run_cases("minjson_pretty_round_trip", 256, |g| {
        let v = gen_json(g, 0);
        let text = v.to_string_pretty();
        let back = parse(&text).map_err(|e| format!("reparse of `{text}` failed: {e}"))?;
        prop_assert_eq!(back, v);
        Ok(())
    });
}

#[test]
fn parse_then_write_is_byte_stable() {
    // Objects preserve insertion order and the number/string writers are
    // canonical, so writing what we just parsed reproduces the bytes.
    run_cases("minjson_write_stable", 128, |g| {
        let first = gen_json(g, 0).to_string_compact();
        let second = parse(&first)
            .map_err(|e| format!("reparse failed: {e}"))?
            .to_string_compact();
        prop_assert_eq!(first, second);
        Ok(())
    });
}

#[test]
fn parser_never_panics_on_mutated_documents() {
    // Flip bytes in valid documents: the parser must return Ok or Err,
    // never panic, and anything it accepts must survive a round trip.
    run_cases("minjson_mutation_safety", 256, |g| {
        let mut bytes = gen_json(g, 0).to_string_compact().into_bytes();
        for _ in 0..g.usize_in(1..4) {
            let i = g.usize_in(0..bytes.len());
            bytes[i] = g.u8_in(0..128);
        }
        let Ok(text) = String::from_utf8(bytes) else {
            return Ok(()); // mutation broke UTF-8; parse takes &str only
        };
        if let Ok(v) = parse(&text) {
            let rewritten = v.to_string_compact();
            prop_assert!(
                parse(&rewritten).as_ref() == Ok(&v),
                "accepted `{text}` but round trip changed it"
            );
        }
        Ok(())
    });
}
