//! Retry-with-backoff for HTTP clients of `gem5prof-served`.
//!
//! `loadgen`, `servectl`, the `soak` harness, the cluster router and the
//! node-side peer warm-tier fetch all talk to `gem5prof-served` through
//! [`ClientConn`]; this module gives them one shared policy for the
//! failure modes a well-behaved client must absorb instead of
//! amplifying:
//!
//! * **429 backpressure** — honor the server's `Retry-After` header
//!   (capped by the policy so a load generator cannot be parked
//!   indefinitely), count the retry, and resubmit.
//! * **503 during drain** — a draining daemon answers every request
//!   with 503 plus `Retry-After`; honor it exactly like a 429 so a
//!   client behind a router fails over to another node instead of
//!   hammering the draining one. A 503 *without* `Retry-After` (a
//!   permanent "no capacity" answer) is returned immediately — only the
//!   server's explicit "come back later" invites a retry.
//! * **Transport errors** — connect refusal, torn responses, dropped
//!   connections: reconnect after a jittered exponential backoff.
//!
//! Jitter is deterministic (seeded splitmix64 over the attempt index),
//! matching the repository-wide rule that test traffic must replay.
//!
//! This module lives in the server crate (rather than `bench`, its
//! original home) so the serving layer itself — the cluster router and
//! the engine's peer fetch — can reuse it; `bench::retry` re-exports it
//! unchanged for the client binaries.

use crate::http::ClientConn;
use std::io;
use std::time::Duration;

/// Backoff policy for one client.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per request before giving up (0 disables retrying).
    pub max_retries: u32,
    /// Base backoff; attempt `n` waits `base * 2^n` ± jitter.
    pub base: Duration,
    /// Upper bound on any single wait, including `Retry-After`.
    pub cap: Duration,
    /// Seed for deterministic jitter.
    pub seed: u64,
    /// Connect/read/write timeout for each attempt.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0,
            timeout: Duration::from_secs(30),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The wait before retry `attempt` (1-based) of request `key`:
    /// exponential in the attempt, jittered to 50–150% so a fleet of
    /// backed-off clients does not retry in lockstep.
    pub fn backoff(&self, key: u64, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(10));
        let jitter_word = splitmix64(self.seed ^ key.rotate_left(17) ^ attempt as u64);
        let frac = 0.5 + (jitter_word >> 11) as f64 / (1u64 << 53) as f64; // 0.5..1.5
        Duration::from_secs_f64(exp.as_secs_f64() * frac).min(self.cap)
    }
}

/// What one logical request cost after retries.
#[derive(Debug)]
pub struct Attempted {
    /// Final outcome: a status-coded response, or the transport error
    /// that survived every retry.
    pub result: io::Result<(u16, String)>,
    /// Retries consumed (0 = first attempt succeeded).
    pub retries: u32,
}

/// `Retry-After` seconds from a response's headers, if present.
fn retry_after(headers: &[(String, String)]) -> Option<Duration> {
    headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// Issues one request with retries, reusing (and on failure, replacing)
/// the keep-alive connection in `conn`. `key` decorrelates jitter
/// between concurrent callers — pass a per-request counter.
pub fn request_with_retry(
    conn: &mut Option<ClientConn>,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    key: u64,
) -> Attempted {
    let mut retries = 0u32;
    loop {
        let attempt = match conn.as_mut() {
            Some(c) => c.request_with_headers(method, path, body),
            None => match ClientConn::connect(addr, policy.timeout) {
                Ok(c) => {
                    let c = conn.insert(c);
                    c.request_with_headers(method, path, body)
                }
                Err(e) => Err(e),
            },
        };
        match attempt {
            // 429 backpressure always invites a retry; 503 only when the
            // server said `Retry-After` (a draining daemon does — see
            // `serve_connection` — and wants the client elsewhere
            // meanwhile, so the stale keep-alive connection is dropped).
            Ok((status @ (429 | 503), headers, body))
                if status == 429 || retry_after(&headers).is_some() =>
            {
                if retries >= policy.max_retries {
                    return Attempted {
                        result: Ok((status, body)),
                        retries,
                    };
                }
                retries += 1;
                if status == 503 {
                    // The draining server closes the connection after a
                    // 503; reconnect (possibly to a different node
                    // behind the same address) instead of reusing it.
                    *conn = None;
                }
                let wait = retry_after(&headers)
                    .unwrap_or_else(|| policy.backoff(key, retries))
                    .min(policy.cap);
                std::thread::sleep(wait);
            }
            Ok((status, _headers, body)) => {
                return Attempted {
                    result: Ok((status, body)),
                    retries,
                }
            }
            Err(e) => {
                // Any transport failure invalidates the connection; the
                // next attempt reconnects from scratch.
                *conn = None;
                if retries >= policy.max_retries {
                    return Attempted {
                        result: Err(e),
                        retries,
                    };
                }
                retries += 1;
                std::thread::sleep(policy.backoff(key, retries));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_jittered_and_capped() {
        let p = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 5,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff(1, 1);
        let b2 = p.backoff(1, 2);
        let b3 = p.backoff(1, 6);
        // Attempt 1 is 20 ms ± 50%; attempt 2 is 40 ms ± 50%.
        assert!(b1 >= Duration::from_millis(10) && b1 <= Duration::from_millis(30));
        assert!(b2 >= Duration::from_millis(20) && b2 <= Duration::from_millis(60));
        assert_eq!(b3, Duration::from_millis(200), "cap must bound the wait");
        // Deterministic for the same (seed, key, attempt)…
        assert_eq!(p.backoff(1, 1), b1);
        // …and decorrelated across keys.
        assert_ne!(p.backoff(1, 1), p.backoff(2, 1));
    }

    #[test]
    fn connect_refusal_is_retried_then_reported() {
        // Nothing listens on this port (bound but not accepting would be
        // racy; an unroutable refused connect is deterministic enough).
        let p = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            timeout: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let mut conn = None;
        let out = request_with_retry(&mut conn, "127.0.0.1:9", "GET", "/healthz", None, &p, 0);
        assert!(out.result.is_err(), "no server: the request must fail");
        assert_eq!(out.retries, 2, "both retries must be consumed");
    }

    #[test]
    fn drain_503_with_retry_after_is_retried() {
        use std::io::Write;
        use std::net::TcpListener;
        // A fake draining server: answers 503 + Retry-After once, then a
        // 200 on the retry's fresh connection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let responses = [
                "HTTP/1.1 503 Service Unavailable\r\ncontent-length: 2\r\n\
                 retry-after: 0\r\nconnection: close\r\n\r\n{}",
                "HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
            ];
            for resp in responses {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 1024];
                let _ = std::io::Read::read(&mut s, &mut buf);
                s.write_all(resp.as_bytes()).unwrap();
            }
        });
        let p = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            timeout: Duration::from_secs(5),
            ..RetryPolicy::default()
        };
        let mut conn = None;
        let out = request_with_retry(&mut conn, &addr, "GET", "/tables/table1", None, &p, 0);
        assert_eq!(out.result.unwrap().0, 200, "retry must reach the 200");
        assert_eq!(out.retries, 1, "exactly one 503-driven retry");
        server.join().unwrap();
    }

    #[test]
    fn bare_503_is_not_retried() {
        use std::io::Write;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = std::io::Read::read(&mut s, &mut buf);
            s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 2\r\n\
                  connection: close\r\n\r\n{}",
            )
            .unwrap();
        });
        let p = RetryPolicy {
            max_retries: 3,
            timeout: Duration::from_secs(5),
            ..RetryPolicy::default()
        };
        let mut conn = None;
        let out = request_with_retry(&mut conn, &addr, "GET", "/healthz", None, &p, 0);
        assert_eq!(out.result.unwrap().0, 503);
        assert_eq!(out.retries, 0, "no Retry-After means no retry");
        server.join().unwrap();
    }
}
