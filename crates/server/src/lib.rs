//! `gem5prof-served` — a std-only experiment-serving daemon.
//!
//! Turns the repository's batch experiment engine into long-lived
//! infrastructure: every figure and table of the paper, plus arbitrary
//! parameterized experiments, served over HTTP/1.1 from a shared,
//! memoizing process.
//!
//! ```text
//! GET  /healthz                    liveness + drain state
//! GET  /stats                      queue, result-cache and trace-cache counters
//! GET  /metrics                    Prometheus text exposition (gem5prof-obs registry)
//! GET  /profile                    self-profiler span table (JSON + collapsed stacks)
//! GET  /profile/history            continuous-profiling snapshot index
//! GET  /profile/diff               per-span self-time delta + hot-span regression gate
//! POST /profile/snapshot           capture a window into the profstore ring
//! POST /profile/bless              mark a snapshot as the regression baseline
//! GET  /figures/fig01..fig17       one figure (?fidelity=quick|paper)
//! GET  /tables/table1|table2       configuration tables
//! POST /experiments                parameterized spec (platform, cpu, workload, knobs)
//! ```
//!
//! Requests flow through a bounded admission queue (backpressure: 429 +
//! `Retry-After` when full) onto a worker pool; results land in an LRU
//! cache keyed by canonicalized spec, layered on top of the guest-trace
//! memoization in `gem5prof::runner`. Graceful shutdown drains in-flight
//! work while rejecting new requests with 503.
//!
//! Everything is std-only — `TcpListener`, `sync_channel`, scoped
//! threads — consistent with the offline substrate (`testkit`,
//! `minjson`).

pub mod cluster;
pub mod http;
pub mod minjson;
pub mod poll;
pub mod retry;

mod core;
mod engine;
mod routes;
mod tier;

use crate::core::{CoreConfig, CoreHandle, Dispatch, Service};
use engine::{Engine, EngineConfig, ServerStats};
use gem5prof_chaos as chaos;
use http::Request;
use routes::{Routed, Shared};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads; `0` means [`gem5prof::threads`].
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Result-cache memory-tier capacity (entries).
    pub cache_cap: usize,
    /// Disk warm tier for the result cache: rendered responses persist
    /// here (write-behind) and survive restarts. `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Single-flight coalescing of identical concurrent requests.
    /// `false` exists only for benchmarking the thundering-herd
    /// baseline (`--no-coalesce`).
    pub coalesce: bool,
    /// Per-request deadline (queue wait + compute).
    pub deadline: Duration,
    /// Test hook: artificial delay before each job, for deterministic
    /// queue-full conditions in integration tests. Zero in production.
    pub worker_delay: Duration,
    /// Stable identity reported in `/healthz` (and recorded by the
    /// cluster router). `None` derives `node-<pid>`.
    pub node_id: Option<String>,
    /// Peer daemon addresses (`host:port`) whose disk warm tiers this
    /// node may probe (`POST /peek`) before computing a cold key.
    /// Usually empty at startup and pushed later via `POST /peers`.
    pub peers: Vec<String>,
    /// Continuous profiling store directory: span/metrics snapshots
    /// persist here as a bounded ring and survive restarts. `None`
    /// disables the `/profile/history|diff|snapshot|bless` routes.
    pub profile_dir: Option<PathBuf>,
    /// Profstore ring capacity (snapshots kept, memory and disk).
    pub profile_cap: usize,
    /// Connection cap for the readiness core: accepts beyond it get an
    /// immediate canned 503 + `Retry-After` instead of an unbounded
    /// per-connection thread.
    pub max_conns: usize,
    /// Idle / slow-header deadline. Partial request bytes do NOT
    /// extend it, so drip-fed headers (slow loris) die on schedule.
    pub read_timeout: Duration,
    /// Stalled-reader deadline: a client that stops draining its
    /// response is disconnected once writes make no progress for this
    /// long.
    pub write_timeout: Duration,
    /// Serve with the legacy blocking thread-per-connection core.
    /// Exists only for benchmarking the structural baseline the
    /// readiness core replaces (`--thread-per-conn`), like
    /// `--no-coalesce` does for the thundering herd.
    pub thread_per_conn: bool,
    /// Socket send-buffer override for accepted connections. Tests and
    /// benches force tiny buffers to hit write deadlines
    /// deterministically; `None` (production) keeps kernel defaults.
    pub sndbuf: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7005".into(),
            workers: 0,
            queue_cap: 64,
            cache_cap: 256,
            cache_dir: None,
            coalesce: true,
            deadline: Duration::from_secs(30),
            worker_delay: Duration::ZERO,
            node_id: None,
            peers: Vec::new(),
            profile_dir: None,
            profile_cap: 64,
            max_conns: 4096,
            read_timeout: IDLE_TIMEOUT,
            write_timeout: Duration::from_secs(10),
            thread_per_conn: false,
            sndbuf: None,
        }
    }
}

/// A running daemon. Dropping the handle leaves the daemon running
/// (threads are detached from the handle's lifetime); call
/// [`shutdown`](ServerHandle::shutdown) for a graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    draining: Arc<AtomicBool>,
    engine: Arc<Engine>,
    /// Legacy thread-per-connection acceptor (`thread_per_conn`).
    acceptor: Option<JoinHandle<()>>,
    /// Readiness core (the default serving path).
    core: Option<CoreHandle>,
    profstore: Option<Arc<gem5prof_profstore::ProfStore>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the peer set the engine probes before cold computes.
    /// The cluster router calls this (via `POST /peers`) once every
    /// member's ephemeral address is known.
    pub fn set_peers(&self, addrs: Vec<String>) {
        self.engine.set_peers(addrs);
    }

    /// Graceful shutdown: stop accepting, answer in-progress
    /// connections with 503, drain queued and running jobs, join the
    /// workers. Returns when the engine is idle.
    pub fn shutdown(mut self) {
        self.draining.store(true, Ordering::SeqCst);
        // Nudge the core so it observes the flag now: it stops
        // accepting, answers buffered requests with 503, and holds
        // only connections still waiting on the engine.
        if let Some(core) = &self.core {
            core.wake();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Resolves every in-flight compute; each completion wakes the
        // core, which unwinds its last pending connections.
        self.engine.drain();
        if let Some(mut core) = self.core.take() {
            core.join();
        }
        // Land any queued profile segments before reporting "drained":
        // a restarted daemon must see every snapshot captured before
        // the shutdown.
        if let Some(store) = &self.profstore {
            store.flush();
        }
    }
}

/// Binds the listener and starts acceptor + workers. Returns once the
/// socket is listening — the daemon then runs on background threads.
pub fn serve(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let workers = if cfg.workers == 0 {
        gem5prof::threads()
    } else {
        cfg.workers
    };
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking accept so the acceptor can observe the drain flag.
    listener.set_nonblocking(true)?;

    let engine = Engine::start(EngineConfig {
        workers,
        queue_cap: cfg.queue_cap,
        cache_cap: cfg.cache_cap,
        cache_dir: cfg.cache_dir.clone(),
        coalesce: cfg.coalesce,
        worker_delay: cfg.worker_delay,
        peers: cfg.peers.clone(),
    });
    let draining = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    // Surface request/response counters in `/metrics` from the same
    // atomics `/stats` reads. The Arc (not a Weak) keeps a shut-down
    // server's counts visible, so the summed series stays monotone.
    let stats_m = Arc::clone(&stats);
    gem5prof_obs::global().register_collector(Box::new(move || stats_m.metric_samples()));
    // The continuous profiling store is best-effort infrastructure: an
    // unusable directory disables it with a warning instead of failing
    // the daemon, mirroring the disk warm tier.
    let profstore = cfg.profile_dir.as_ref().and_then(|dir| {
        match gem5prof_profstore::ProfStore::open(dir, cfg.profile_cap) {
            Ok(store) => {
                let ps = store.stats_handle();
                gem5prof_obs::global().register_collector(Box::new(move || {
                    use gem5prof_obs::{MetricKind, Sample};
                    let s = ps.snapshot();
                    vec![
                        Sample::plain(
                            "gem5prof_profstore_snapshots_total",
                            "profile snapshots captured",
                            MetricKind::Counter,
                            s.snapshots as f64,
                        ),
                        Sample::plain(
                            "gem5prof_profstore_writes_total",
                            "profile segments persisted",
                            MetricKind::Counter,
                            s.writes as f64,
                        ),
                        Sample::plain(
                            "gem5prof_profstore_write_errors_total",
                            "profile segment writes that failed",
                            MetricKind::Counter,
                            s.write_errors as f64,
                        ),
                        Sample::plain(
                            "gem5prof_profstore_segments_corrupt_total",
                            "profile segments skipped at open for corruption",
                            MetricKind::Counter,
                            s.corrupt as f64,
                        ),
                        Sample::plain(
                            "gem5prof_profstore_segments_stale_total",
                            "profile segments skipped at open for stale versions",
                            MetricKind::Counter,
                            s.stale as f64,
                        ),
                    ]
                }));
                Some(store)
            }
            Err(e) => {
                eprintln!(
                    "gem5prof-served: profile dir {} unusable ({e}); \
                     continuous profiling disabled",
                    dir.display()
                );
                None
            }
        }
    });
    let shared = Arc::new(Shared {
        engine: Arc::clone(&engine),
        stats,
        draining: Arc::clone(&draining),
        deadline: cfg.deadline,
        started: Instant::now(),
        node_id: cfg
            .node_id
            .clone()
            .unwrap_or_else(|| format!("node-{}", std::process::id())),
        profstore: profstore.clone(),
    });

    let (acceptor, core) = if cfg.thread_per_conn {
        (Some(legacy_acceptor(listener, shared, &cfg)?), None)
    } else {
        let service: Arc<dyn Service> = Arc::new(ServedService { shared });
        let core = core::spawn(
            listener,
            service,
            CoreConfig {
                name: "served",
                max_conns: cfg.max_conns,
                read_timeout: cfg.read_timeout,
                write_timeout: cfg.write_timeout,
                sndbuf: cfg.sndbuf,
                // The served daemon never offloads: blocking work runs
                // on the engine's worker pool.
                offload_threads: 0,
            },
        )?;
        // Completed jobs nudge the poller so pending connections are
        // answered promptly instead of on the idle tick.
        let waker = core.waker();
        engine.set_waker(Box::new(move || waker.wake()));
        (None, Some(core))
    };

    Ok(ServerHandle {
        addr,
        draining,
        engine,
        acceptor,
        core,
        profstore,
    })
}

/// The experiment server's routing/accounting half of the readiness
/// core: request counting, chaos connection drops, drain rejection
/// (with the `/peek` exemption), then route dispatch.
struct ServedService {
    shared: Arc<Shared>,
}

impl Service for ServedService {
    fn dispatch(&self, req: Request) -> Dispatch {
        // One span per request: routing + submission. (Compute time is
        // accounted by the worker's own `serve_compute` span; the
        // poller thread cannot hold a span open across loop turns.)
        let _span = gem5prof_obs::span("http_request");
        if chaos::inject("server.conn_drop") {
            // The connection dies after the request is parsed but
            // before any response: the client must see a clean
            // transport error. Count it as an "other" response so
            // `/stats` accounting stays exact (every parsed request
            // gets an outcome).
            self.shared.stats.count(0);
            chaos::recovered("server.conn_drop");
            return Dispatch::Hangup;
        }
        // `/peek` stays answerable during a drain: it is a pure
        // warm-tier read (never a compute), and a draining node is
        // exactly the "old owner" a peer wants to fetch from before
        // recomputing a migrated key.
        if self.shared.draining.load(Ordering::Relaxed) && req.path != "/peek" {
            return Dispatch::Reply(routes::draining_reply());
        }
        match routes::dispatch(&req, &self.shared) {
            Routed::Done(reply) => Dispatch::Reply(reply),
            Routed::Pending { rx, stream } => Dispatch::Pending { rx, stream },
        }
    }

    fn count_request(&self) {
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn count_response(&self, status: u16) {
        self.shared.stats.count(status);
    }

    fn count_parse_error(&self) {
        // Same books as the blocking core's `InvalidData` arm: the
        // malformed request is counted, and so is its 400.
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.count(400);
    }

    fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    fn deadline(&self) -> Duration {
        self.shared.deadline
    }

    fn recover_wire_chaos(&self) -> bool {
        true
    }

    fn progress_body(&self, elapsed: Duration) -> String {
        minjson::Json::obj(vec![(
            "progress",
            minjson::Json::obj(vec![
                ("elapsed_ms", minjson::Json::Num(elapsed.as_millis() as f64)),
                (
                    "queue_depth",
                    minjson::Json::Num(self.shared.engine.queue_depth() as f64),
                ),
                (
                    "in_flight",
                    minjson::Json::Num(self.shared.engine.in_flight() as f64),
                ),
            ]),
        )])
        .to_string_compact()
    }
}

/// The pre-readiness-core serving loop: one OS thread per connection.
/// Kept (behind `thread_per_conn`) as the structural baseline
/// `bench_serving.sh` measures the core against, with its connection
/// bugs fixed: no fallible `try_clone`, a write timeout, and
/// exponential accept-error backoff.
fn legacy_acceptor(
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: &ServeConfig,
) -> io::Result<JoinHandle<()>> {
    let draining = Arc::clone(&shared.draining);
    let (read_timeout, write_timeout) = (cfg.read_timeout, cfg.write_timeout);
    std::thread::Builder::new()
        .name("served-acceptor".into())
        .spawn(move || {
            let mut error_streak = 0u32;
            loop {
                if draining.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        error_streak = 0;
                        let shared = Arc::clone(&shared);
                        let _ = std::thread::Builder::new()
                            .name("served-conn".into())
                            .spawn(move || {
                                serve_connection(stream, &shared, read_timeout, write_timeout)
                            });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        error_streak = 0;
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => {
                        // EMFILE and friends: retrying in a hot 10ms
                        // loop just spins; back off exponentially.
                        error_streak += 1;
                        let pause = (1u64 << error_streak.min(10)).min(1000);
                        std::thread::sleep(Duration::from_millis(pause));
                    }
                }
            }
        })
}

/// Idle keep-alive timeout: a connection with no request for this long
/// is closed so connection threads cannot accumulate.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// Serves one connection: a keep-alive loop of request → route →
/// response. Returns (closing the connection) on EOF, idle timeout,
/// malformed input, drain, or an explicit `Connection: close`.
fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    // A stalled reader must not wedge this thread forever (the
    // readiness core enforces the same bound with its write deadline).
    let _ = stream.set_write_timeout(Some(write_timeout));
    // Read and write through plain references to the one stream — the
    // old `try_clone` had a failure path that silently dropped the
    // connection with no response and no stats count.
    let mut writer = &stream;
    let mut reader = BufReader::new(&stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(Some(req)) => {
                // One span per request: routing + compute wait + write.
                let _span = gem5prof_obs::span("http_request");
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                if chaos::inject("server.conn_drop") {
                    // The connection dies after the request is parsed but
                    // before any response: the client must see a clean
                    // transport error, never a wedged thread. Count it as
                    // an "other" response so `/stats` accounting stays
                    // exact (every parsed request gets an outcome).
                    shared.stats.count(0);
                    chaos::recovered("server.conn_drop");
                    break;
                }
                let draining = shared.draining.load(Ordering::Relaxed);
                // `/peek` stays answerable during a drain: it is a pure
                // warm-tier read (never a compute), and a draining node
                // is exactly the "old owner" a peer wants to fetch from
                // before recomputing a migrated key.
                let (status, body, extra) = if draining && req.path != "/peek" {
                    (
                        503,
                        minjson::Json::obj(vec![("error", minjson::Json::str("draining"))])
                            .to_string_compact(),
                        // `Retry-After` marks this as a transient,
                        // retry-me-elsewhere condition; clients honor it
                        // like a 429 (see `retry`).
                        vec![("retry-after".into(), "1".into())],
                    )
                } else {
                    routes::handle(&req, shared)
                };
                shared.stats.count(status);
                let close = req.close || draining;
                match http::write_response(&mut writer, status, body.as_bytes(), &extra, close) {
                    Ok(()) if !close => {}
                    Ok(()) => break,
                    Err(e) => {
                        // A torn/failed write is survived by dropping the
                        // connection; the response was already counted.
                        if chaos::is_chaos_error(&e) {
                            chaos::recovered("http.torn_write");
                        }
                        break;
                    }
                }
            }
            Ok(None) => break, // peer closed between requests
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break; // idle keep-alive expiry
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                shared.stats.count(400);
                let body = minjson::Json::obj(vec![("error", minjson::Json::str(&e.to_string()))])
                    .to_string_compact();
                let _ = http::write_response(&mut writer, 400, body.as_bytes(), &[], true);
                break;
            }
            Err(e) => {
                // Connection-level failure (including injected read
                // errors and short reads): survived by closing cleanly.
                if chaos::is_chaos_error(&e) {
                    chaos::recovered(if e.kind() == io::ErrorKind::UnexpectedEof {
                        "http.short_read"
                    } else {
                        "http.read"
                    });
                }
                break;
            }
        }
    }
}
