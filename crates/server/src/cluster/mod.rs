//! Sharded cluster serving: a consistent-hash router over N daemons.
//!
//! The router accepts the same HTTP surface as a single daemon and
//! forwards each request to the *owner* of its canonical result-cache
//! key on a [`ring::HashRing`]. Because every duplicate of a key lands
//! on the same node, that node's single-flight coalescing collapses a
//! fleet-wide duplicate herd to exactly one compute — the cluster
//! inherits the single-node exactly-once property by construction.
//!
//! ```text
//!            ┌──────────┐   consistent hash    ┌────────────┐
//! clients ──▶│  router  │──── key → owner ────▶│ node (1/N) │
//!            └──────────┘                      └────────────┘
//!               │  ▲  probes /healthz; ejects after consecutive
//!               │  └─ failures, re-admits on recovery (and re-pushes
//!               │     the peer list to the returning node)
//!               └─ on owner failure: clockwise failover, same ring
//! ```
//!
//! Membership is *liveness-filtered*, not rebuilt: ejection flips a
//! flag and lookups walk past dead members ([`ring::HashRing::owner`]),
//! so re-admission restores the original key ownership — and minimal
//! movement means a node kill migrates only the dead node's keys.
//! Migrated keys are re-computed at most once thanks to the peer
//! warm-tier fetch (`POST /peek`) in the engine: the new owner asks the
//! old owners' disk tiers before computing.
//!
//! Router-local endpoints: `GET /healthz` (router liveness), `GET
//! /cluster` (membership + per-member routing counters, including node
//! pids when the router spawned them), `GET /metrics` (fleet-wide
//! `gem5prof_cluster_*` series), `POST /drain` (graceful fleet drain,
//! observed by the `gem5prof-cluster` binary). Everything else is
//! forwarded.

pub mod ring;

use crate::core::{self, CoreConfig, CoreHandle, Dispatch};
use crate::http::{self, ClientConn, Request};
use crate::minjson::Json;
use crate::routes;
use gem5prof_obs as obs;
use ring::{HashRing, DEFAULT_VNODES};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle keep-alive timeout for router-side connections.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);
/// Pooled keep-alive connections kept per member.
const POOL_CAP: usize = 8;
/// Distinguishes concurrent routers (e.g. under soak) in `/metrics`.
static NEXT_ROUTER_ID: AtomicU64 = AtomicU64::new(0);

/// One downstream daemon as configured: address plus, when the router
/// spawned the process itself, its pid (surfaced in `/cluster` so
/// operators and the verify smoke can target a hard kill).
#[derive(Debug, Clone)]
pub struct MemberSpec {
    pub addr: String,
    pub pid: Option<u32>,
}

impl MemberSpec {
    pub fn new(addr: impl Into<String>) -> MemberSpec {
        MemberSpec {
            addr: addr.into(),
            pid: None,
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Downstream daemons. Ring ownership is keyed by their addresses,
    /// so the member list order is irrelevant but the addresses must be
    /// stable across router restarts for warm tiers to stay aligned.
    pub members: Vec<MemberSpec>,
    /// Virtual nodes per member on the hash ring.
    pub vnodes: usize,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Consecutive probe/forward failures before a member is ejected.
    pub fail_threshold: u32,
    /// Connect timeout for forwards and probes (dead-node failover
    /// latency is bounded by this).
    pub connect_timeout: Duration,
    /// Read/write timeout for forwarded requests; must exceed the
    /// nodes' compute deadline or slow cold computes look like faults.
    pub io_timeout: Duration,
    /// Client-connection cap on the router's readiness core; accepts
    /// beyond it get a canned 503 + `Retry-After`.
    pub max_conns: usize,
    /// Blocking forward pool size: how many member forwards can be in
    /// flight at once (the poller thread itself never blocks).
    pub forward_threads: usize,
    /// Idle / slow-header client deadline (not extended by partial
    /// request bytes).
    pub read_timeout: Duration,
    /// Stalled-reader client deadline (extended only by write
    /// progress).
    pub write_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            addr: "127.0.0.1:0".into(),
            members: Vec::new(),
            vnodes: DEFAULT_VNODES,
            probe_interval: Duration::from_millis(250),
            fail_threshold: 2,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(35),
            max_conns: 4096,
            forward_threads: 32,
            read_timeout: IDLE_TIMEOUT,
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-member runtime state.
struct Member {
    addr: String,
    pid: Option<u32>,
    /// Routing eligibility; flipped by the prober (and by forward
    /// failures once they reach the threshold).
    alive: AtomicBool,
    /// Consecutive failures; any success resets it.
    failures: AtomicU32,
    /// Requests answered through this member.
    routed: AtomicU64,
    /// `node_id` the member last reported in `/healthz`.
    node_id: Mutex<String>,
    /// Keep-alive connection pool.
    pool: Mutex<Vec<ClientConn>>,
}

impl Member {
    fn new(spec: MemberSpec) -> Member {
        Member {
            addr: spec.addr,
            pid: spec.pid,
            alive: AtomicBool::new(true),
            failures: AtomicU32::new(0),
            routed: AtomicU64::new(0),
            node_id: Mutex::new(String::new()),
            pool: Mutex::new(Vec::new()),
        }
    }
}

/// Shared router state.
struct Cluster {
    id: u64,
    members: Vec<Member>,
    ring: HashRing,
    vnodes: usize,
    fail_threshold: u32,
    connect_timeout: Duration,
    io_timeout: Duration,
    draining: AtomicBool,
    /// Set by `POST /drain`; the `gem5prof-cluster` binary polls it to
    /// start a fleet-wide graceful shutdown.
    drain_requested: AtomicBool,
    stop: AtomicBool,
    started: Instant,
    /// Round-robin cursor for keyless routes (`/stats`, `/profile`).
    rr: AtomicU64,
    requests: AtomicU64,
    forward_errors: AtomicU64,
    unroutable: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

type Reply = (u16, String, Vec<(String, String)>);

fn error_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::str(msg))]).to_string_compact()
}

fn retry_after_header() -> Vec<(String, String)> {
    vec![("retry-after".into(), "1".into())]
}

impl Cluster {
    fn new(cfg: &ClusterConfig) -> Cluster {
        let addrs: Vec<&str> = cfg.members.iter().map(|m| m.addr.as_str()).collect();
        Cluster {
            id: NEXT_ROUTER_ID.fetch_add(1, Ordering::Relaxed),
            ring: HashRing::new(&addrs, cfg.vnodes),
            members: cfg.members.iter().cloned().map(Member::new).collect(),
            vnodes: cfg.vnodes.max(1),
            fail_threshold: cfg.fail_threshold.max(1),
            connect_timeout: cfg.connect_timeout,
            io_timeout: cfg.io_timeout,
            draining: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            rr: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            unroutable: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
        }
    }

    // -- membership ---------------------------------------------------

    fn note_success(&self, idx: usize, node_id: Option<&str>) {
        let m = &self.members[idx];
        m.failures.store(0, Ordering::Relaxed);
        if let Some(id) = node_id {
            let mut slot = m.node_id.lock().unwrap_or_else(|e| e.into_inner());
            if *slot != id {
                *slot = id.to_string();
            }
        }
        if !m.alive.swap(true, Ordering::SeqCst) {
            self.readmissions.fetch_add(1, Ordering::Relaxed);
            // A restarted process on the same address lost its peer
            // list (and may be a different process entirely): re-push
            // so its warm-tier probes resume.
            self.push_peers(idx);
        }
    }

    fn note_failure(&self, idx: usize) {
        let m = &self.members[idx];
        let failures = m.failures.fetch_add(1, Ordering::Relaxed) + 1;
        // Stale pooled connections to a faulted member would only turn
        // into more transport errors.
        m.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
        if failures >= self.fail_threshold && m.alive.swap(false, Ordering::SeqCst) {
            self.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pushes the peer list (every *other* member) to member `idx`, so
    /// its engine can probe the rest of the fleet's warm tiers before
    /// computing a cold key. Best-effort: a dead member gets the list
    /// again on re-admission.
    fn push_peers(&self, idx: usize) {
        let peers: Vec<&str> = self
            .members
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, m)| m.addr.as_str())
            .collect();
        let _ = http::one_shot(
            &self.members[idx].addr,
            "POST",
            "/peers",
            Some(&peers.join(",")),
            self.connect_timeout,
        );
    }

    /// One probe round: `GET /healthz` against every member. A healthy
    /// answer is a 200 with `draining:false` — a draining node is
    /// routed around exactly like a dead one (it rejects computes),
    /// though its warm tier stays reachable to peers via `/peek`.
    fn probe_all(&self) {
        for idx in 0..self.members.len() {
            // Probing dead members costs a connect timeout each; bail
            // mid-round so shutdown never waits out the whole fleet.
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let m = &self.members[idx];
            match http::one_shot(&m.addr, "GET", "/healthz", None, self.connect_timeout) {
                Ok((200, body)) => {
                    let doc = crate::minjson::parse(&body).ok();
                    let draining = doc
                        .as_ref()
                        .and_then(|d| d.get("draining"))
                        .and_then(Json::as_bool)
                        .unwrap_or(false);
                    if draining {
                        self.note_failure(idx);
                    } else {
                        let node_id = doc
                            .as_ref()
                            .and_then(|d| d.get("node_id"))
                            .and_then(Json::as_str);
                        self.note_success(idx, node_id);
                    }
                }
                _ => self.note_failure(idx),
            }
        }
    }

    // -- forwarding ---------------------------------------------------

    /// Forwards one request to the ring owner of its key, walking the
    /// failover order on transport errors and drain rejections. Keyless
    /// routes round-robin across live members.
    fn forward(&self, req: &Request) -> Reply {
        let body = match std::str::from_utf8(&req.body) {
            Ok(b) => (!b.is_empty()).then_some(b),
            Err(_) => return (400, error_body("body is not UTF-8"), Vec::new()),
        };
        let path = match &req.query {
            Some(q) => format!("{}?{}", req.path, q),
            None => req.path.clone(),
        };
        let order: Vec<usize> = match routes::route_key(req) {
            Some(key) => self.ring.successors(&key).collect(),
            None => {
                let n = self.members.len();
                let start = self.rr.fetch_add(1, Ordering::Relaxed) as usize;
                (0..n).map(|i| (start + i) % n).collect()
            }
        };
        // Live members first in ring order; ejected ones after, as a
        // last resort (the probe may simply not have re-admitted a
        // recovered node yet).
        let candidates = order
            .iter()
            .copied()
            .filter(|&i| self.members[i].alive.load(Ordering::Relaxed))
            .chain(
                order
                    .iter()
                    .copied()
                    .filter(|&i| !self.members[i].alive.load(Ordering::Relaxed)),
            );
        let mut drain_reply: Option<Reply> = None;
        for idx in candidates {
            match self.try_member(idx, &req.method, &path, body) {
                None => {
                    self.forward_errors.fetch_add(1, Ordering::Relaxed);
                }
                Some((status, headers, rbody)) => {
                    let retry_after = headers.iter().any(|(k, _)| k == "retry-after");
                    if status == 503 && retry_after {
                        // The member is draining: remember its answer
                        // (it is the honest reply if *everyone* is
                        // draining) but try the next candidate first.
                        drain_reply = Some((status, rbody, retry_after_header()));
                        continue;
                    }
                    self.members[idx].routed.fetch_add(1, Ordering::Relaxed);
                    // Pass through the headers that change client
                    // behavior; everything else is router-local.
                    let extra = headers
                        .into_iter()
                        .filter(|(k, _)| k == "retry-after" || k == "content-type")
                        .collect();
                    return (status, rbody, extra);
                }
            }
        }
        if let Some(reply) = drain_reply {
            return reply;
        }
        self.unroutable.fetch_add(1, Ordering::Relaxed);
        (
            503,
            error_body("no live cluster member"),
            retry_after_header(),
        )
    }

    /// One forward attempt against member `idx`: a pooled keep-alive
    /// connection if available (with one fresh-connection retry, since
    /// a pooled conn may have idled out), else a new connection.
    fn try_member(
        &self,
        idx: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Option<(u16, Vec<(String, String)>, String)> {
        let m = &self.members[idx];
        let pooled = m.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let had_pooled = pooled.is_some();
        let mut conn = match pooled {
            Some(c) => c,
            None => self.connect(idx)?,
        };
        let resp = match conn.request_with_headers(method, path, body) {
            Ok(resp) => resp,
            Err(_) if had_pooled => {
                // Stale pooled connection — not evidence the node is
                // down. Retry once on a fresh socket before blaming it.
                let mut conn = self.connect(idx)?;
                match conn.request_with_headers(method, path, body) {
                    Ok(resp) => {
                        self.stash(idx, conn, resp.0);
                        self.note_success(idx, None);
                        return Some(resp);
                    }
                    Err(_) => {
                        self.note_failure(idx);
                        return None;
                    }
                }
            }
            Err(_) => {
                self.note_failure(idx);
                return None;
            }
        };
        self.stash(idx, conn, resp.0);
        self.note_success(idx, None);
        Some(resp)
    }

    fn connect(&self, idx: usize) -> Option<ClientConn> {
        let m = &self.members[idx];
        match ClientConn::connect(m.addr.as_str(), self.connect_timeout) {
            Ok(conn) => {
                let _ = conn.set_io_timeout(self.io_timeout);
                Some(conn)
            }
            Err(_) => {
                self.note_failure(idx);
                None
            }
        }
    }

    /// Returns a connection to the member's pool unless the response
    /// closed it (drain 503s arrive with `Connection: close`).
    fn stash(&self, idx: usize, conn: ClientConn, status: u16) {
        if status == 503 {
            return;
        }
        let mut pool = self.members[idx]
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(conn);
        }
    }

    // -- introspection ------------------------------------------------

    fn alive_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.alive.load(Ordering::Relaxed))
            .count()
    }

    fn healthz_json(&self) -> String {
        Json::obj(vec![
            ("status", Json::str("ok")),
            ("role", Json::str("router")),
            (
                "draining",
                Json::Bool(self.draining.load(Ordering::Relaxed)),
            ),
            (
                "uptime_seconds",
                Json::Num(self.started.elapsed().as_secs_f64()),
            ),
            ("members_alive", Json::Num(self.alive_count() as f64)),
            ("members_total", Json::Num(self.members.len() as f64)),
        ])
        .to_string_compact()
    }

    fn status_json(&self) -> String {
        let members = self
            .members
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("addr", Json::str(&m.addr)),
                    (
                        "node_id",
                        Json::str(&*m.node_id.lock().unwrap_or_else(|e| e.into_inner())),
                    ),
                    ("alive", Json::Bool(m.alive.load(Ordering::Relaxed))),
                    ("routed", Json::Num(m.routed.load(Ordering::Relaxed) as f64)),
                    (
                        "consecutive_failures",
                        Json::Num(m.failures.load(Ordering::Relaxed) as f64),
                    ),
                ];
                if let Some(pid) = m.pid {
                    fields.push(("pid", Json::Num(pid as f64)));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("router_id", Json::Num(self.id as f64)),
            ("vnodes", Json::Num(self.vnodes as f64)),
            (
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "forward_errors",
                Json::Num(self.forward_errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "ejections",
                Json::Num(self.ejections.load(Ordering::Relaxed) as f64),
            ),
            (
                "readmissions",
                Json::Num(self.readmissions.load(Ordering::Relaxed) as f64),
            ),
            ("members", Json::Arr(members)),
        ])
        .to_string_compact()
    }

    /// Fleet-wide `gem5prof_cluster_*` series for `/metrics`. Labeled
    /// with the router id so concurrent routers (soak) don't collide.
    fn metric_samples(&self) -> Vec<obs::Sample> {
        let router = self.id.to_string();
        let mut samples = Vec::new();
        let mut push = |name: &str, help: &str, kind, labels: Vec<(String, String)>, value: f64| {
            let mut labels = labels;
            labels.push(("router".into(), router.clone()));
            samples.push(obs::Sample {
                name: name.into(),
                help: help.into(),
                kind,
                labels,
                value,
            });
        };
        for m in &self.members {
            push(
                "gem5prof_cluster_routed_total",
                "requests answered through each member",
                obs::MetricKind::Counter,
                vec![("member".into(), m.addr.clone())],
                m.routed.load(Ordering::Relaxed) as f64,
            );
        }
        for (state, v) in [
            ("alive", self.alive_count()),
            ("ejected", self.members.len() - self.alive_count()),
        ] {
            push(
                "gem5prof_cluster_members",
                "cluster members by liveness state",
                obs::MetricKind::Gauge,
                vec![("state".into(), state.into())],
                v as f64,
            );
        }
        for (name, help, v) in [
            (
                "gem5prof_cluster_ejections_total",
                "members ejected after consecutive health failures",
                &self.ejections,
            ),
            (
                "gem5prof_cluster_readmissions_total",
                "ejected members re-admitted after recovery",
                &self.readmissions,
            ),
            (
                "gem5prof_cluster_forward_errors_total",
                "forward attempts that failed at the transport layer",
                &self.forward_errors,
            ),
            (
                "gem5prof_cluster_unroutable_total",
                "requests 503ed because no member was reachable",
                &self.unroutable,
            ),
        ] {
            push(
                name,
                help,
                obs::MetricKind::Counter,
                Vec::new(),
                v.load(Ordering::Relaxed) as f64,
            );
        }
        samples
    }
}

/// Router-local routes: liveness, status, metrics, drain control and
/// their 405s. `None` means "not ours — forward to the owner".
fn local_reply(req: &Request, cluster: &Cluster) -> Option<Reply> {
    Some(match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, cluster.healthz_json(), Vec::new()),
        ("GET", "/cluster") => (200, cluster.status_json(), Vec::new()),
        ("GET", "/metrics") => (
            200,
            obs::global().render_prometheus(),
            vec![(
                "content-type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
        ),
        ("POST", "/drain") => {
            cluster.drain_requested.store(true, Ordering::SeqCst);
            (
                200,
                Json::obj(vec![("draining", Json::Bool(true))]).to_string_compact(),
                Vec::new(),
            )
        }
        (_, "/cluster" | "/drain") => (405, error_body("method not allowed"), Vec::new()),
        _ => return None,
    })
}

/// The router's half of the readiness core: local routes answered
/// inline on the poller thread; everything else offloaded to the
/// forward pool (a member forward is blocking I/O bounded by
/// `connect_timeout`/`io_timeout`, which must never stall the poller).
struct RouterService {
    cluster: Arc<Cluster>,
    /// Backstop for a wedged forward; the transport timeouts inside
    /// `forward` fire far earlier on every healthy path.
    forward_deadline: Duration,
}

impl core::Service for RouterService {
    fn dispatch(&self, req: Request) -> Dispatch {
        let draining = self.cluster.draining.load(Ordering::Relaxed);
        // `/healthz` and `/cluster` stay observable during a drain so
        // orchestration can watch it complete.
        if draining && req.path != "/healthz" && req.path != "/cluster" {
            return Dispatch::Reply((503, error_body("draining"), retry_after_header()));
        }
        match local_reply(&req, &self.cluster) {
            Some(reply) => Dispatch::Reply(reply),
            None => {
                let cluster = Arc::clone(&self.cluster);
                Dispatch::Offload(Box::new(move || cluster.forward(&req)))
            }
        }
    }

    fn count_request(&self) {
        self.cluster.requests.fetch_add(1, Ordering::Relaxed);
    }

    // The router has never kept response books (nodes count their own
    // outcomes); parse errors likewise go uncounted, matching the old
    // blocking loop which only counted parsed requests.
    fn count_response(&self, _status: u16) {}

    fn count_parse_error(&self) {}

    fn draining(&self) -> bool {
        self.cluster.draining.load(Ordering::Relaxed)
    }

    fn deadline(&self) -> Duration {
        self.forward_deadline
    }
}

/// A running cluster router. `shutdown` stops the acceptor and prober;
/// it does NOT touch the member daemons (the `gem5prof-cluster` binary
/// owns spawned processes).
pub struct ClusterHandle {
    addr: SocketAddr,
    cluster: Arc<Cluster>,
    core: Option<CoreHandle>,
    prober: Option<JoinHandle<()>>,
}

impl ClusterHandle {
    /// The actually-bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client asked for a fleet drain via `POST /drain`.
    pub fn drain_requested(&self) -> bool {
        self.cluster.drain_requested.load(Ordering::SeqCst)
    }

    /// Currently-live member count, per the last probe round.
    pub fn alive_members(&self) -> usize {
        self.cluster.alive_count()
    }

    /// Stops routing: reject new requests with 503, stop the prober,
    /// join both threads.
    pub fn shutdown(mut self) {
        self.cluster.draining.store(true, Ordering::SeqCst);
        self.cluster.stop.store(true, Ordering::SeqCst);
        if let Some(mut core) = self.core.take() {
            core.join();
        }
        if let Some(t) = self.prober.take() {
            let _ = t.join();
        }
    }
}

/// Binds the router, pushes initial peer lists to the members, starts
/// the health prober and acceptor. Returns once the socket listens.
pub fn serve_cluster(cfg: ClusterConfig) -> io::Result<ClusterHandle> {
    if cfg.members.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cluster needs at least one member",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let cluster = Arc::new(Cluster::new(&cfg));
    // Arm every node's peer warm-tier fetch before traffic arrives.
    for idx in 0..cluster.members.len() {
        cluster.push_peers(idx);
    }
    // One synchronous probe round so `/cluster` is accurate immediately
    // and obviously-dead members are ejected before the first request.
    cluster.probe_all();

    let c = Arc::clone(&cluster);
    obs::global().register_collector(Box::new(move || c.metric_samples()));

    let prober = {
        let cluster = Arc::clone(&cluster);
        let interval = cfg.probe_interval.max(Duration::from_millis(10));
        std::thread::Builder::new()
            .name("cluster-prober".into())
            .spawn(move || {
                while !cluster.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if cluster.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    cluster.probe_all();
                }
            })?
    };

    let service: Arc<dyn core::Service> = Arc::new(RouterService {
        cluster: Arc::clone(&cluster),
        // Generous: `forward` walks owner + successors, each attempt
        // bounded by connect/io timeouts; this only catches a wedge.
        forward_deadline: (cfg.connect_timeout + cfg.io_timeout) * 4,
    });
    let core = core::spawn(
        listener,
        service,
        CoreConfig {
            name: "cluster",
            max_conns: cfg.max_conns,
            read_timeout: cfg.read_timeout,
            write_timeout: cfg.write_timeout,
            sndbuf: None,
            offload_threads: cfg.forward_threads.max(1),
        },
    )?;

    Ok(ClusterHandle {
        addr,
        cluster,
        core: Some(core),
        prober: Some(prober),
    })
}
