//! Consistent-hash ring with virtual nodes.
//!
//! Canonical result-cache keys are hashed onto a 64-bit ring; each
//! member owns the arc preceding its virtual nodes. Two properties make
//! this the right router primitive:
//!
//! * **Balance** — with [`DEFAULT_VNODES`] virtual nodes per member the
//!   load spread across members concentrates near uniform (relative
//!   deviation shrinks like `1/sqrt(vnodes)`), so no node becomes the
//!   fleet's hot spot by construction.
//! * **Minimal movement** — adding a member steals keys only *for* the
//!   new member, and removing one reassigns only the keys it owned.
//!   Every other key keeps its owner, so membership churn invalidates
//!   the smallest possible slice of the fleet's warm caches.
//!
//! Lookups take the member set's *liveness* as a predicate:
//! `owner(key, alive)` walks clockwise past ejected members, which is
//! exactly the router's failover order, and means ejection needs no
//! ring rebuild (re-admission restores the original ownership for
//! free).

/// Virtual nodes per member: enough that the max/mean member load on
/// realistic key counts stays within ~±25% (see the property tests in
/// `tests/cluster_ring.rs`), cheap enough that rebuilds are trivial.
pub const DEFAULT_VNODES: usize = 160;

/// FNV-1a over bytes, finished through splitmix64. FNV alone clusters
/// on short ASCII inputs (member names, `figure:figNN` keys); the
/// splitmix finisher spreads those clusters over the full 64-bit ring.
fn hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over member indices `0..n`.
///
/// Members are identified to the ring by stable *names* (addresses);
/// the ring stores the caller's index for each name so lookups return
/// an index into the caller's member table.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, member index)`, sorted by position.
    points: Vec<(u64, usize)>,
    /// Member count this ring was built over.
    members: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual nodes per member. Virtual
    /// node positions depend only on the member's *name*, so the same
    /// member lands on the same arcs in every ring that contains it —
    /// the root of the minimal-movement property.
    pub fn new<S: AsRef<str>>(member_names: &[S], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(member_names.len() * vnodes);
        for (idx, name) in member_names.iter().enumerate() {
            let name = name.as_ref().as_bytes();
            for v in 0..vnodes {
                let mut tagged = Vec::with_capacity(name.len() + 9);
                tagged.extend_from_slice(name);
                tagged.push(b'#');
                tagged.extend_from_slice(&(v as u64).to_le_bytes());
                points.push((hash(&tagged), idx));
            }
        }
        // Position ties across members are broken by member index so
        // iteration order (and thus ownership) is deterministic.
        points.sort_unstable();
        HashRing {
            points,
            members: member_names.len(),
        }
    }

    /// Number of members the ring was built over.
    pub fn members(&self) -> usize {
        self.members
    }

    /// The ring position of a key.
    pub fn key_position(key: &str) -> u64 {
        hash(key.as_bytes())
    }

    /// The owner of `key` among members for which `alive` holds: the
    /// first live virtual node at or clockwise after the key's
    /// position. Returns `None` when no member is alive (or the ring is
    /// empty).
    pub fn owner(&self, key: &str, alive: impl Fn(usize) -> bool) -> Option<usize> {
        self.successors(key).find(|&idx| alive(idx))
    }

    /// All members in failover order for `key`: the owner first, then
    /// each *distinct* member by clockwise walk. This is the order the
    /// router tries members in when the owner is down, and the order a
    /// node probes peers in when hunting a migrated key's old owner.
    pub fn successors(&self, key: &str) -> impl Iterator<Item = usize> + '_ {
        let pos = Self::key_position(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        let n = self.points.len();
        let mut seen = vec![false; self.members];
        (0..n).filter_map(move |i| {
            let (_, idx) = self.points[(start + i) % n];
            if seen[idx] {
                None
            } else {
                seen[idx] = true;
                Some(idx)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect()
    }

    #[test]
    fn owner_is_deterministic_and_total() {
        let ring = HashRing::new(&names(4), 64);
        for k in 0..200 {
            let key = format!("exp:key{k}");
            let a = ring.owner(&key, |_| true).unwrap();
            let b = ring.owner(&key, |_| true).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn failover_skips_dead_members_and_preserves_others() {
        let ring = HashRing::new(&names(4), 64);
        for k in 0..200 {
            let key = format!("table:table{k}");
            let owner = ring.owner(&key, |_| true).unwrap();
            let failover = ring.owner(&key, |m| m != owner).unwrap();
            assert_ne!(failover, owner);
            // Keys not owned by the dead member keep their owner.
            let dead = (owner + 1) % 4;
            assert_eq!(ring.owner(&key, |m| m != dead), Some(owner));
        }
    }

    #[test]
    fn successors_enumerate_every_member_once() {
        let ring = HashRing::new(&names(5), 32);
        let order: Vec<usize> = ring.successors("some:key").collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "each member exactly once");
        assert_eq!(order[0], ring.owner("some:key", |_| true).unwrap());
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new::<&str>(&[], 64);
        assert_eq!(ring.owner("k", |_| true), None);
        assert_eq!(ring.successors("k").count(), 0);
    }
}
