//! The compute engine behind the daemon: a bounded admission queue in
//! front of a worker pool, with a tiered (sharded-memory + optional
//! disk) result cache and single-flight request coalescing.
//!
//! Request flow for a compute endpoint:
//!
//! ```text
//! connection thread ──► tiered cache (mem ► disk+promote) ──hit──► respond
//!        │ miss
//!        ▼
//! single-flight map ──key already in flight──► join waiter list,
//!        │ leader                              await the shared result
//!        ▼
//! bounded admission queue ──full──► 429 + Retry-After (backpressure)
//!        │
//!        ▼
//! worker pool (N threads) ──► compute (memoized profile pipeline)
//!        │                         │
//!        ▼                         ▼
//! reply channels (one per     warm mem tier, answer leader + every
//! leader/waiter, deadline)    waiter, then write-behind to disk
//! ```
//!
//! **Coalescing protocol.** The first requester to miss on a key
//! becomes its *leader*: it registers the key in the in-flight map and
//! enqueues exactly one job. Every concurrent requester for the same
//! key *joins* instead — its reply sender is appended to the key's
//! waiter list and no job is enqueued, so K identical cold requests
//! cost one compute and K responses. Each requester keeps its own
//! reply channel and its own deadline: a slow follower times out (504)
//! without affecting the others, and the abandoned result still lands
//! in both cache tiers. Completion order is load-bearing: the worker
//! warms the memory tier *before* clearing the in-flight entry, so a
//! requester that finds the map empty and re-checks the cache (under
//! the in-flight lock) can never miss a result that already finished.
//! If the leader's job dies without finishing — an injected panic, a
//! poisoned render — a drop guard clears the entry and drops every
//! waiter's sender, which each waiter observes as a prompt 500, never
//! a hang.
//!
//! Workers answer every waiter *before* the disk write-behind, so even
//! a request that times out against its deadline still warms both
//! tiers for the next identical spec (`finish` is the single exit path
//! for worker-side cache re-checks, fresh computes, and drain-expired
//! jobs alike). The queue is a `sync_channel`, whose `try_send` gives
//! the non-blocking full check the 429 path needs.

use crate::cluster::ring::{HashRing, DEFAULT_VNODES};
use crate::retry::{self, RetryPolicy};
use crate::routes;
use crate::tier::{DiskSnapshot, TieredCache};
use gem5prof::cache::CacheSnapshot;
use gem5prof::figures::Fidelity;
use gem5prof::spec::ExperimentSpec;
use gem5prof_chaos as chaos;
use gem5prof_obs as obs;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of compute: everything a worker needs to produce a response
/// body. Cheap to clone into the queue.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Work {
    /// A paper figure (1..=15) at a fidelity.
    Figure(usize, Fidelity),
    /// A configuration table (1 or 2).
    Table(usize),
    /// A parameterized experiment.
    Experiment(ExperimentSpec),
}

impl Work {
    /// The canonical result-cache key.
    pub(crate) fn key(&self) -> String {
        match self {
            Work::Figure(n, f) => format!(
                "figure:fig{n:02}:{}",
                match f {
                    Fidelity::Quick => "quick",
                    Fidelity::Paper => "paper",
                }
            ),
            Work::Table(n) => format!("table:table{n}"),
            Work::Experiment(spec) => spec.canonical_key(),
        }
    }

    /// Runs the computation and renders the JSON body.
    fn compute(&self) -> String {
        match self {
            Work::Figure(n, f) => routes::figure_json(*n, *f),
            Work::Table(n) => routes::table_json_by_index(*n),
            Work::Experiment(spec) => routes::experiment_json(spec),
        }
    }
}

/// The channel a requester waits on for its job's outcome.
type ReplyTx = Sender<Result<Arc<String>, String>>;

/// A queued job: the work plus the leader's reply channel. Coalesced
/// followers' channels live in the engine's in-flight map, keyed by
/// `key`, until the job finishes.
struct Job {
    work: Work,
    key: String,
    reply: ReplyTx,
    /// When the job entered the admission queue (queue-wait metric).
    enqueued: Instant,
}

/// Engine construction parameters (a subset of `ServeConfig`).
pub(crate) struct EngineConfig {
    /// Worker-thread count.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_cap: usize,
    /// Memory-tier capacity in entries.
    pub cache_cap: usize,
    /// Disk warm tier directory; `None` disables the tier.
    pub cache_dir: Option<PathBuf>,
    /// Single-flight coalescing of identical in-flight keys. On in
    /// production; `false` exists so benchmarks can measure the
    /// thundering-herd baseline.
    pub coalesce: bool,
    /// Peer nodes (addresses) whose warm tiers are consulted before a
    /// cold compute — cluster mode. Empty disables peer fetch.
    pub peers: Vec<String>,
    /// Test hook: artificial pause before each job. Zero in production.
    pub worker_delay: Duration,
}

impl EngineConfig {
    /// A small all-default config for unit tests.
    #[cfg(test)]
    fn test(workers: usize, queue_cap: usize, cache_cap: usize) -> EngineConfig {
        EngineConfig {
            workers,
            queue_cap,
            cache_cap,
            cache_dir: None,
            coalesce: true,
            peers: Vec::new(),
            worker_delay: Duration::ZERO,
        }
    }
}

/// Request-path instrumentation, registered in the process-wide metrics
/// registry. Names are interned there, so every engine in the process
/// shares the same series.
struct EngineMetrics {
    queue_wait: Arc<obs::Histogram>,
    compute: Arc<obs::Histogram>,
    lookup_hit: Arc<obs::Histogram>,
    lookup_miss: Arc<obs::Histogram>,
}

impl EngineMetrics {
    fn new() -> Self {
        let r = obs::global();
        let b = obs::metrics::duration_buckets();
        EngineMetrics {
            queue_wait: r.histogram(
                "served_queue_wait_seconds",
                "time a job spent in the admission queue before a worker picked it up",
                b,
            ),
            compute: r.histogram(
                "served_compute_seconds",
                "time a worker spent computing one job",
                b,
            ),
            lookup_hit: r.histogram_with(
                "served_cache_lookup_seconds",
                "result-cache lookup latency by outcome",
                b,
                &[("outcome", "hit")],
            ),
            lookup_miss: r.histogram_with(
                "served_cache_lookup_seconds",
                "result-cache lookup latency by outcome",
                b,
                &[("outcome", "miss")],
            ),
        }
    }
}

/// Outcome of a bounded enqueue attempt (the caller holds the reply
/// receiver, so this carries no channel).
enum Enqueue {
    Queued,
    Busy,
    Draining,
}

/// Outcome of submitting work to the engine.
pub(crate) enum Submission {
    /// Served from the result cache.
    Hit(Arc<String>),
    /// Enqueued (or coalesced onto an in-flight job); await the
    /// receiver (subject to the caller's deadline).
    Pending(Receiver<Result<Arc<String>, String>>),
    /// Admission queue full — answer 429.
    Busy,
    /// Engine is draining — answer 503.
    Draining,
}

/// Counters the `/stats` endpoint reports for the serving layer itself.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    /// Requests parsed (any route, any outcome).
    pub requests: AtomicU64,
    /// Responses by status: 200/400/404/405/429/500/503/504/other.
    pub st_200: AtomicU64,
    pub st_400: AtomicU64,
    pub st_404: AtomicU64,
    pub st_405: AtomicU64,
    pub st_429: AtomicU64,
    pub st_500: AtomicU64,
    pub st_503: AtomicU64,
    pub st_504: AtomicU64,
    pub st_other: AtomicU64,
}

impl ServerStats {
    /// `/metrics` samples, read from the same atomics `/stats` reports:
    /// `gem5prof_served_requests_total` plus one
    /// `gem5prof_served_responses_total{status=…}` series per bucket.
    pub fn metric_samples(&self) -> Vec<obs::Sample> {
        let mut v = vec![obs::Sample::plain(
            "gem5prof_served_requests_total",
            "HTTP requests parsed (any route, any outcome)",
            obs::MetricKind::Counter,
            self.requests.load(Ordering::Relaxed) as f64,
        )];
        for (code, counter) in [
            ("200", &self.st_200),
            ("400", &self.st_400),
            ("404", &self.st_404),
            ("405", &self.st_405),
            ("429", &self.st_429),
            ("500", &self.st_500),
            ("503", &self.st_503),
            ("504", &self.st_504),
            ("other", &self.st_other),
        ] {
            v.push(obs::Sample {
                name: "gem5prof_served_responses_total".into(),
                help: "HTTP responses by status code".into(),
                kind: obs::MetricKind::Counter,
                labels: vec![("status".into(), code.into())],
                value: counter.load(Ordering::Relaxed) as f64,
            });
        }
        v
    }

    /// Records one response with the given status.
    pub fn count(&self, status: u16) {
        let slot = match status {
            200 => &self.st_200,
            400 => &self.st_400,
            404 => &self.st_404,
            405 => &self.st_405,
            429 => &self.st_429,
            500 => &self.st_500,
            503 => &self.st_503,
            504 => &self.st_504,
            _ => &self.st_other,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }
}

/// Corrupts a rendered body the way a torn buffer would: half the bytes
/// (on a char boundary) plus a marker, guaranteed not to parse as JSON.
fn poisoned(body: &str) -> String {
    let mut cut = body.len() / 2;
    while cut > 0 && !body.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}<<chaos-poison>>", &body[..cut])
}

/// Monotone engine id, so per-engine metric series from multiple
/// engines in one process (tests, soak episodes) stay distinguishable.
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// How many ring-ordered peers a cold miss consults before computing.
/// The first candidate is the key's owner among the peers — i.e. the
/// node that owned the key before this one did, which is where a
/// migrated key's warm entry lives; the second covers one further
/// membership change.
const PEER_FETCH_CANDIDATES: usize = 2;

/// Per-attempt peer-fetch timeout. A warm-tier read is a cache lookup
/// plus one round trip; anything slower than this is cheaper to
/// recompute than to wait for.
const PEER_FETCH_TIMEOUT: Duration = Duration::from_secs(2);

/// The peer warm tiers a node may fetch from, with the ring that orders
/// them per key. Set at startup (`--peers`) or pushed by the cluster
/// router (`POST /peers`) once every node's address is known.
struct PeerSet {
    addrs: Vec<String>,
    ring: HashRing,
}

/// Peer-fetch outcome counters (`/stats` + `/metrics`).
#[derive(Debug, Default)]
struct PeerStats {
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
}

/// Point-in-time peer-fetch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PeerSnapshot {
    /// Cold misses answered by a peer's warm tier (each one is a
    /// compute avoided fleet-wide).
    pub hits: u64,
    /// Peer lookups that found no usable entry anywhere.
    pub misses: u64,
    /// Peer lookups that failed (transport error, draining peer,
    /// invalid body) — the node fell back to computing.
    pub errors: u64,
}

impl PeerSet {
    fn build(addrs: Vec<String>) -> Option<PeerSet> {
        if addrs.is_empty() {
            None
        } else {
            let ring = HashRing::new(&addrs, DEFAULT_VNODES);
            Some(PeerSet { addrs, ring })
        }
    }

    /// The first [`PEER_FETCH_CANDIDATES`] peers in ring order for `key`.
    fn candidates(&self, key: &str) -> Vec<String> {
        self.ring
            .successors(key)
            .take(PEER_FETCH_CANDIDATES)
            .map(|i| self.addrs[i].clone())
            .collect()
    }
}

/// The admission queue + worker pool + tiered result cache +
/// single-flight map.
pub(crate) struct Engine {
    /// Queue sender; taken (dropped) on drain so workers exit.
    tx: Mutex<Option<SyncSender<Job>>>,
    /// Rendered responses keyed by canonical spec: sharded memory tier
    /// over an optional disk warm tier.
    cache: TieredCache,
    /// Single-flight map: canonical key → reply senders of the
    /// coalesced followers (the leader's sender rides in its [`Job`]).
    /// An entry exists exactly while one job for the key is queued or
    /// running.
    inflight: Mutex<HashMap<String, Vec<ReplyTx>>>,
    /// Whether submissions coalesce onto in-flight keys.
    coalesce: bool,
    /// Peer warm tiers consulted before a cold compute (cluster mode);
    /// `None` when the node has no peers.
    peers: Mutex<Option<PeerSet>>,
    /// Peer-fetch outcome counters.
    peer_stats: PeerStats,
    /// Actual compute executions (cache re-check hits excluded).
    computes: AtomicU64,
    /// Requests that joined an in-flight key instead of enqueuing.
    coalesced: AtomicU64,
    /// Jobs waiting in the queue.
    depth: AtomicUsize,
    /// Jobs queued or running.
    in_flight: AtomicUsize,
    /// Queue capacity (for `/stats`).
    queue_cap: usize,
    /// Worker count (for `/stats`).
    workers: usize,
    /// This engine's id (labels its per-engine metric series).
    id: u64,
    /// Worker threads, joined on drain.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Request-path histograms (shared series in the global registry).
    metrics: EngineMetrics,
    /// Completion hook for the readiness core: called whenever a job
    /// finishes (any outcome) so the poller re-checks pending
    /// receivers instead of blocking in `recv_timeout`. `None` under
    /// the legacy thread-per-connection path.
    waker: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads behind a queue of
    /// `cfg.queue_cap`, over a tiered cache of `cfg.cache_cap` memory
    /// entries (plus the disk tier when `cfg.cache_dir` is set).
    pub fn start(cfg: EngineConfig) -> Arc<Engine> {
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let engine = Arc::new(Engine {
            tx: Mutex::new(Some(tx)),
            cache: TieredCache::new(cfg.cache_cap, cfg.cache_dir.as_deref()),
            inflight: Mutex::new(HashMap::new()),
            coalesce: cfg.coalesce,
            peers: Mutex::new(PeerSet::build(cfg.peers)),
            peer_stats: PeerStats::default(),
            computes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            queue_cap: cfg.queue_cap,
            workers: cfg.workers,
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            handles: Mutex::new(Vec::new()),
            metrics: EngineMetrics::new(),
            waker: Mutex::new(None),
        });
        // Surface the result cache's counters in `/metrics` from the
        // same counters the `/stats` endpoint reads. A `Weak` keeps the
        // forever-lived registry from pinning drained engines; the
        // `engine` label keeps series from concurrent engines apart.
        let weak: Weak<Engine> = Arc::downgrade(&engine);
        obs::global().register_collector(Box::new(move || {
            let Some(engine) = weak.upgrade() else {
                return Vec::new();
            };
            engine.metric_samples()
        }));
        let worker_delay = cfg.worker_delay;
        let mut handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let rx = Arc::clone(&rx);
            let engine_w = Arc::clone(&engine);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("served-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(job) => job,
                            Err(_) => break, // sender dropped: drain complete
                        };
                        // The whole job scope is panic-isolated: a panic
                        // anywhere inside still decrements `in_flight`
                        // (drop guard in `process`), clears the key's
                        // single-flight entry (leader guard), and drops
                        // the reply senders — which the leader and every
                        // coalesced follower observe as a 500 — and the
                        // worker thread survives to take the next job,
                        // so the pool never shrinks permanently.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine_w.process(job, worker_delay)
                            }));
                        if let Err(payload) = outcome {
                            if chaos::is_chaos_panic(payload.as_ref()) {
                                // Two injection points unwind to here;
                                // credit the one that actually fired.
                                let leader = payload
                                    .downcast_ref::<&str>()
                                    .is_some_and(|m| m.contains("coalesced-leader"));
                                chaos::recovered(if leader {
                                    "engine.leader_panic"
                                } else {
                                    "engine.worker_panic"
                                });
                            }
                            // `finish` never ran (the panic unwound past
                            // it); the dropped reply senders are the
                            // outcome. Wake the core so pending
                            // connections observe the disconnect now.
                            engine_w.wake();
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        *engine.handles.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        engine
    }

    /// Per-engine metric samples: memory-tier counters, single-flight
    /// counters, and (when armed) disk-tier counters, all labeled with
    /// this engine's id.
    fn metric_samples(&self) -> Vec<obs::Sample> {
        let id = self.id.to_string();
        let snap = self.cache.mem_snapshot();
        let mut samples = snap.metric_samples("gem5prof_result_cache");
        let gauge = |name: &str, help: &str, v: f64| obs::Sample {
            name: name.into(),
            help: help.into(),
            kind: obs::MetricKind::Gauge,
            labels: Vec::new(),
            value: v,
        };
        let counter = |name: &str, help: &str, v: f64| obs::Sample {
            name: name.into(),
            help: help.into(),
            kind: obs::MetricKind::Counter,
            labels: Vec::new(),
            value: v,
        };
        samples.push(gauge(
            "gem5prof_result_cache_entries",
            "rendered responses currently resident in the memory tier",
            self.cache.len() as f64,
        ));
        samples.push(gauge(
            "gem5prof_result_cache_capacity",
            "memory-tier capacity in entries",
            self.cache.capacity() as f64,
        ));
        samples.push(gauge(
            "gem5prof_result_cache_shards",
            "memory-tier shard count",
            self.cache.shard_count() as f64,
        ));
        samples.push(counter(
            "gem5prof_result_cache_computes_total",
            "jobs that actually computed (cache re-check hits excluded)",
            self.computes.load(Ordering::Relaxed) as f64,
        ));
        samples.push(counter(
            "gem5prof_result_cache_coalesced_total",
            "requests coalesced onto an already-in-flight identical key",
            self.coalesced.load(Ordering::Relaxed) as f64,
        ));
        let peer = self.peer_view();
        for (outcome, v) in [
            ("hit", peer.hits),
            ("miss", peer.misses),
            ("error", peer.errors),
        ] {
            samples.push(obs::Sample {
                name: "gem5prof_cluster_peer_fetch_total".into(),
                help: "peer warm-tier fetches before a cold compute, by outcome".into(),
                kind: obs::MetricKind::Counter,
                labels: vec![("outcome".into(), outcome.into())],
                value: v as f64,
            });
        }
        if let Some((disk, entries)) = self.cache.disk_view() {
            for (name, help, v) in [
                (
                    "gem5prof_disk_cache_hits_total",
                    "disk-tier lookups that served (and promoted) an entry",
                    disk.hits,
                ),
                (
                    "gem5prof_disk_cache_misses_total",
                    "disk-tier lookups that found no usable entry",
                    disk.misses,
                ),
                (
                    "gem5prof_disk_cache_writes_total",
                    "entries persisted by write-behind",
                    disk.writes,
                ),
                (
                    "gem5prof_disk_cache_write_errors_total",
                    "failed write-behinds (entry stays memory-only)",
                    disk.write_errors,
                ),
                (
                    "gem5prof_disk_cache_corrupt_total",
                    "disk entries ignored for failing validation",
                    disk.corrupt,
                ),
                (
                    "gem5prof_disk_cache_stale_total",
                    "disk entries ignored for an older schema version",
                    disk.stale,
                ),
            ] {
                samples.push(counter(name, help, v as f64));
            }
            samples.push(gauge(
                "gem5prof_disk_cache_entries",
                "entry files resident in the cache directory",
                entries as f64,
            ));
        }
        for s in &mut samples {
            s.labels.push(("engine".into(), id.clone()));
        }
        samples
    }

    /// Handles one dequeued job on a worker thread. Runs inside the
    /// worker's `catch_unwind`; the drop guards keep `in_flight` and
    /// the single-flight map honest even if this panics mid-job.
    fn process(&self, job: Job, worker_delay: Duration) {
        struct InFlightGuard<'a>(&'a AtomicUsize);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let _in_flight = InFlightGuard(&self.in_flight);
        // Leader guard: if this job unwinds before `finish` runs, the
        // key's in-flight entry is cleared and every follower's sender
        // dropped — each follower observes a prompt disconnect (500),
        // never a wait on a job nobody owns. Defused on the `finish`
        // path, which clears the entry itself.
        struct LeaderGuard<'a> {
            engine: &'a Engine,
            key: &'a str,
            armed: bool,
        }
        impl Drop for LeaderGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    drop(self.engine.take_waiters(self.key));
                }
            }
        }
        let mut leader = LeaderGuard {
            engine: self,
            key: &job.key,
            armed: true,
        };
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.metrics
            .queue_wait
            .observe_duration(job.enqueued.elapsed());
        // Worker-side re-check against the full tiered cache. With
        // coalescing on this fires only on races (an entry that landed
        // between the submit-time lookup and the inflight registration,
        // or a disk entry written by another process); the hit flows
        // through the same `finish` path as a fresh compute, so both
        // tiers are (re)warmed and every waiter is answered. With
        // coalescing off the whole duplicate-suppression machinery is
        // off — every dequeued job recomputes — so `--no-coalesce`
        // measures the naive pre-coalescing engine in benchmarks.
        if self.coalesce {
            if let Some(body) = self.cache.get(&job.key) {
                leader.armed = false;
                self.finish(&job.key, &job.reply, Ok(body));
                return;
            }
        }
        // Peer warm-tier fetch (cluster mode): before paying for a cold
        // compute, ask the peers that owned this key before we did. A
        // hit flows through the same `finish` path as a compute, so it
        // answers every coalesced waiter and warms *both* local tiers
        // (promotion) — the fleet recomputes a migrated key zero times.
        if let Some(body) = self.peer_fetch(&job.key) {
            leader.armed = false;
            self.finish(&job.key, &job.reply, Ok(body));
            return;
        }
        if chaos::inject("engine.worker_panic") {
            // Deliberately outside the compute `catch_unwind`: proves the
            // worker loop survives panics on its own paths too.
            panic!("chaos: injected worker panic");
        }
        if let Some(d) = chaos::delay("engine.job_delay") {
            std::thread::sleep(d);
            chaos::recovered("engine.job_delay");
        }
        if !worker_delay.is_zero() {
            std::thread::sleep(worker_delay);
        }
        if chaos::inject("engine.leader_panic") {
            // The coalesced-leader failure mode: the job dies owning the
            // key, *after* the delay window in which followers piled
            // onto it. The leader guard must fail every one of them
            // fast.
            panic!("chaos: injected coalesced-leader panic");
        }
        self.computes.fetch_add(1, Ordering::Relaxed);
        let compute_started = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = obs::span("serve_compute");
            if chaos::inject("engine.job_panic") {
                panic!("chaos: injected job panic");
            }
            let body = job.work.compute();
            if chaos::inject("engine.job_poison") {
                poisoned(&body)
            } else {
                body
            }
        }));
        self.metrics
            .compute
            .observe_duration(compute_started.elapsed());
        let reply = match result {
            Ok(body) => {
                // Validate before caching: every compute endpoint renders
                // JSON, so a body that does not parse is a torn/poisoned
                // result and must never become a cache entry other
                // requests would then be served. The parse only runs with
                // chaos armed — production pays nothing.
                if chaos::enabled() && crate::minjson::parse(&body).is_err() {
                    chaos::recovered("engine.job_poison");
                    Err(format!(
                        "poisoned result for `{}` detected and discarded",
                        job.key
                    ))
                } else {
                    Ok(Arc::new(body))
                }
            }
            Err(payload) => {
                if chaos::is_chaos_panic(payload.as_ref()) {
                    chaos::recovered("engine.job_panic");
                }
                Err(format!("computation for `{}` panicked", job.key))
            }
        };
        leader.armed = false;
        self.finish(&job.key, &job.reply, reply);
    }

    /// The single completion path for every job outcome: warm the
    /// memory tier, clear the single-flight entry, answer the leader
    /// and every coalesced waiter, then write-behind to the disk tier.
    ///
    /// Ordering is the coalescing protocol's backbone:
    /// 1. memory-tier insert *before* clearing the in-flight entry —
    ///    a requester that misses the map re-checks the cache under the
    ///    in-flight lock, so it either joins the entry or hits the tier;
    /// 2. replies *before* the disk write — the filesystem is never on
    ///    a requester's critical path (requesters may already be gone:
    ///    a 504'd deadline still warms both tiers for the next spec).
    fn finish(&self, key: &str, leader_reply: &ReplyTx, outcome: Result<Arc<String>, String>) {
        if let Ok(body) = &outcome {
            self.cache.insert_mem(key, body);
        }
        let waiters = self.take_waiters(key);
        let _ = leader_reply.send(outcome.clone()); // requester may have timed out
        for w in &waiters {
            let _ = w.send(outcome.clone());
        }
        if let Ok(body) = &outcome {
            self.cache.write_behind(key, body);
        }
        self.wake();
    }

    /// Serves `key` from the local tiers only — never computes, never
    /// enqueues, never asks peers. This is the `POST /peek` handler: the
    /// read side of the peer warm-tier protocol. Because it cannot
    /// recurse into another peer fetch, two nodes missing the same key
    /// can never chase each other.
    pub fn peek(&self, key: &str) -> Option<Arc<String>> {
        self.cache.get(&key.to_string())
    }

    /// Installs the readiness core's completion hook. Every job
    /// outcome — reply sent, panic, poison — ends with one call, so a
    /// pending connection is re-polled promptly instead of waiting
    /// for the poller's idle tick.
    pub fn set_waker(&self, f: Box<dyn Fn() + Send + Sync>) {
        *self.waker.lock().unwrap_or_else(|e| e.into_inner()) = Some(f);
    }

    fn wake(&self) {
        if let Some(f) = &*self.waker.lock().unwrap_or_else(|e| e.into_inner()) {
            f();
        }
    }

    /// Replaces the peer set (pushed by the cluster router once every
    /// node's ephemeral address is known, and on membership changes).
    pub fn set_peers(&self, addrs: Vec<String>) {
        *self.peers.lock().unwrap_or_else(|e| e.into_inner()) = PeerSet::build(addrs);
    }

    /// Peer-fetch counters.
    pub fn peer_view(&self) -> PeerSnapshot {
        PeerSnapshot {
            hits: self.peer_stats.hits.load(Ordering::Relaxed),
            misses: self.peer_stats.misses.load(Ordering::Relaxed),
            errors: self.peer_stats.errors.load(Ordering::Relaxed),
        }
    }

    /// Asks up to [`PEER_FETCH_CANDIDATES`] ring-ordered peers for
    /// `key`'s rendered body via `POST /peek`. Returns the first valid
    /// answer; any transport error, draining peer, or malformed body
    /// falls through to the next candidate and ultimately to a local
    /// compute. Bodies are validated (well-formed JSON, no poison
    /// marker) so a faulty peer can cost a recompute, never propagate a
    /// bad entry across the fleet.
    fn peer_fetch(&self, key: &str) -> Option<Arc<String>> {
        let candidates = self
            .peers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|p| p.candidates(key))?;
        if chaos::inject("cluster.peer_fetch") {
            // Injected partition: the whole peer tier is unreachable for
            // this miss. Surviving it means computing locally.
            self.peer_stats.errors.fetch_add(1, Ordering::Relaxed);
            chaos::recovered("cluster.peer_fetch");
            return None;
        }
        let policy = RetryPolicy {
            max_retries: 1,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            seed: self.id,
            timeout: PEER_FETCH_TIMEOUT,
        };
        let _span = obs::span("peer_fetch");
        for (i, addr) in candidates.iter().enumerate() {
            let mut conn = None;
            let out = retry::request_with_retry(
                &mut conn,
                addr,
                "POST",
                "/peek",
                Some(key),
                &policy,
                HashRing::key_position(key) ^ i as u64,
            );
            match out.result {
                Ok((200, body)) => {
                    if crate::minjson::parse(&body).is_ok() && !body.contains("<<chaos-poison>>") {
                        self.peer_stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(Arc::new(body));
                    }
                    self.peer_stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                Ok((404, _)) => {
                    self.peer_stats.misses.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) | Err(_) => {
                    self.peer_stats.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        None
    }

    /// Removes and returns `key`'s coalesced waiter list (empty when
    /// the key was never registered — non-coalescing mode).
    fn take_waiters(&self, key: &str) -> Vec<ReplyTx> {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key)
            .unwrap_or_default()
    }

    /// Submits work: tiered cache lookup, then single-flight join or
    /// bounded enqueue.
    pub fn submit(&self, work: Work) -> Submission {
        let key = work.key();
        let lookup_started = Instant::now();
        let hit = self.cache.get(&key);
        match &hit {
            Some(_) => &self.metrics.lookup_hit,
            None => &self.metrics.lookup_miss,
        }
        .observe_duration(lookup_started.elapsed());
        if let Some(body) = hit {
            return Submission::Hit(body);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.coalesce {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(waiters) = inflight.get_mut(&key) {
                // Join: one compute is already queued or running for
                // this key; await its result on our own channel (and
                // our own deadline).
                waiters.push(reply_tx);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return Submission::Pending(reply_rx);
            }
            // Not in flight. Re-check the memory tier while holding the
            // in-flight lock: completion warms the tier *before*
            // clearing the map entry, so a finish between our lookup
            // above and this lock cannot slip past both checks.
            if let Some(body) = self.cache.get_mem(&key) {
                return Submission::Hit(body);
            }
            // Become the leader: enqueue exactly one job, and register
            // the key (still under the in-flight lock, so no follower
            // can observe a half-registered leader, and a Busy queue
            // never leaves a stale entry behind).
            match self.enqueue(work, &key, reply_tx) {
                Enqueue::Queued => {
                    inflight.insert(key, Vec::new());
                    Submission::Pending(reply_rx)
                }
                Enqueue::Busy => Submission::Busy,
                Enqueue::Draining => Submission::Draining,
            }
        } else {
            match self.enqueue(work, &key, reply_tx) {
                Enqueue::Queued => Submission::Pending(reply_rx),
                Enqueue::Busy => Submission::Busy,
                Enqueue::Draining => Submission::Draining,
            }
        }
    }

    /// Bounded enqueue of one job (the 429 backpressure point).
    fn enqueue(&self, work: Work, key: &str, reply: ReplyTx) -> Enqueue {
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            return Enqueue::Draining;
        };
        // Count before the send so `depth`/`in_flight` never under-read.
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Job {
            work,
            key: key.to_string(),
            reply,
            enqueued: Instant::now(),
        }) {
            Ok(()) => Enqueue::Queued,
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                Enqueue::Busy
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                Enqueue::Draining
            }
        }
    }

    /// Drains the engine: stops admitting, lets queued and running jobs
    /// complete, joins the workers.
    pub fn drain(&self) {
        drop(self.tx.lock().unwrap_or_else(|e| e.into_inner()).take());
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Jobs queued or running right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// This engine's metric-label id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Jobs that actually computed.
    pub fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    /// Requests coalesced onto in-flight keys.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Memory-tier shard count.
    pub fn shards(&self) -> usize {
        self.cache.shard_count()
    }

    /// Snapshot + length + capacity of the memory tier.
    pub fn cache_view(&self) -> (CacheSnapshot, usize, usize) {
        (
            self.cache.mem_snapshot(),
            self.cache.len(),
            self.cache.capacity(),
        )
    }

    /// Disk-tier counters + resident entry files, when armed.
    pub fn disk_view(&self) -> Option<(DiskSnapshot, u64)> {
        self.cache.disk_view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn await_body(sub: Submission) -> Arc<String> {
        match sub {
            Submission::Hit(body) => body,
            Submission::Pending(rx) => rx
                .recv_timeout(Duration::from_secs(30))
                .expect("worker reply")
                .expect("compute ok"),
            Submission::Busy => panic!("unexpected 429"),
            Submission::Draining => panic!("unexpected 503"),
        }
    }

    #[test]
    fn second_submission_hits_the_cache() {
        let engine = Engine::start(EngineConfig::test(2, 4, 16));
        let first = await_body(engine.submit(Work::Table(1)));
        assert!(first.contains("Table"), "body: {first}");
        match engine.submit(Work::Table(1)) {
            Submission::Hit(body) => assert_eq!(body, first),
            _ => panic!("expected a cache hit on the second submission"),
        }
        assert_eq!(engine.computes(), 1);
        engine.drain();
    }

    #[test]
    fn identical_concurrent_submissions_coalesce_to_one_compute() {
        let mut cfg = EngineConfig::test(1, 8, 16);
        cfg.worker_delay = Duration::from_millis(150);
        let engine = Engine::start(cfg);
        let leader = engine.submit(Work::Table(2));
        assert!(matches!(leader, Submission::Pending(_)));
        // While the single worker sleeps in the delay, identical
        // submissions must join the in-flight key, not enqueue.
        let followers: Vec<_> = (0..3).map(|_| engine.submit(Work::Table(2))).collect();
        assert_eq!(engine.coalesced(), 3);
        let body = await_body(leader);
        for f in followers {
            assert_eq!(await_body(f), body);
        }
        assert_eq!(engine.computes(), 1, "one compute for four submissions");
        engine.drain();
    }

    #[test]
    fn full_queue_reports_busy() {
        let mut cfg = EngineConfig::test(1, 1, 16);
        cfg.worker_delay = Duration::from_millis(300);
        let engine = Engine::start(cfg);
        // Distinct keys so coalescing cannot absorb the burst: one job
        // occupies the worker, one fills the queue, the next bounces.
        let a = engine.submit(Work::Table(1));
        std::thread::sleep(Duration::from_millis(50)); // let the worker dequeue
        let b = engine.submit(Work::Table(2));
        let c = engine.submit(Work::Figure(1, Fidelity::Quick));
        assert!(matches!(a, Submission::Pending(_)));
        assert!(matches!(b, Submission::Pending(_)));
        assert!(
            matches!(c, Submission::Busy),
            "third submission must bounce"
        );
        drop((a, b));
        engine.drain();
    }
}
